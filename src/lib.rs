//! # e2e-cost-estimator
//!
//! A from-scratch Rust reproduction of **"An End-to-End Learning-based Cost
//! Estimator"** (Ji Sun and Guoliang Li, VLDB 2019): a tree-structured deep
//! learning model that estimates both the cost and the cardinality of
//! physical query plans, together with every substrate it needs — a synthetic
//! IMDB-schema database, a planner/executor producing ground truth, a
//! PostgreSQL-style traditional estimator, the MSCN learned baseline, the
//! string-embedding pipeline (pattern rules, skip-gram, tries), and benchmark
//! harnesses reproducing every table and figure of the paper's evaluation.
//!
//! This crate re-exports the individual workspace crates under stable names;
//! see the `examples/` directory for end-to-end usage and `DESIGN.md` /
//! `EXPERIMENTS.md` for the system inventory and the per-experiment index.
//!
//! ## Quick start
//!
//! ```no_run
//! use e2e_cost_estimator::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A synthetic IMDB-like database.
//! let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: 2_000, ..Default::default() }));
//! // 2. A training workload: queries generated from the join graph, executed
//! //    for true cost/cardinality.
//! let samples = generate_workload(&db, WorkloadConfig { num_queries: 200, ..Default::default() });
//! // 3. The learned estimator.
//! let enc = EncodingConfig::from_database(&db, 16, 128);
//! let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(16)));
//! let mut estimator = CostEstimator::new(extractor, ModelConfig::default(), TrainConfig::default());
//! let plans: Vec<_> = samples.iter().map(|s| s.plan.clone()).collect();
//! estimator.fit(&plans);
//! let (cost, cardinality) = estimator.estimate(&plans[0]);
//! println!("estimated cost {cost:.1}, cardinality {cardinality:.1}");
//! ```

pub use engine;
pub use estimator_core;
pub use featurize;
pub use imdb;
pub use metrics;
pub use mscn;
pub use nn;
pub use pgest;
pub use query;
pub use serving;
pub use strembed;
pub use workloads;

/// Commonly used types, re-exported for examples and downstream users.
pub mod prelude {
    pub use engine::{execute_plan, plan_query, CostModel, PlannerConfig};
    pub use estimator_core::{
        CheckpointError, CostEstimator, Estimator, EstimatorCapabilities, ModelConfig, PlanEstimate,
        PredicateModelKind, RepresentationCellKind, TaskMode, TrainConfig, TrainableEstimator,
    };
    pub use featurize::{EncodedPlan, EncodingConfig, FeatureExtractor};
    pub use imdb::{generate_imdb, Database, GeneratorConfig};
    pub use metrics::{q_error, EpochStats, ErrorSummary, QErrorWindow, ReportTable};
    pub use mscn::{MscnConfig, MscnEstimator, MscnFeaturizer, MscnModel, MscnTrainer};
    pub use pgest::TraditionalEstimator;
    pub use query::{CompareOp, JoinPredicate, LogicalQuery, Operand, PhysicalOp, PlanNode, Predicate};
    pub use serving::{
        BatchAggregator, FeedbackConfig, FeedbackLog, ModelCatalog, PlanRegistry, RefreshConfig, RefreshController,
        RefreshOutcome, ServedTier, Session, TenantBackend, TenantFeedback,
    };
    pub use strembed::{build_string_encoder, EmbedderConfig, HashBitmapEncoder, StringEncoding};
    pub use workloads::{
        generate_drift_workload, generate_workload, workload_strings, DriftConfig, DriftGenerator, DriftPhase,
        QuerySample, SuiteConfig, WorkloadConfig, WorkloadKind, WorkloadSuite,
    };
}
