//! Backward compatibility of the checkpoint format.
//!
//! `tests/fixtures/golden_*_v1.ckpt` and `golden_tree_v2.ckpt` are
//! **committed binary fixtures** written by the format-v1 / format-v2 code
//! (the last commits before the respective version bumps) from a
//! deterministic tiny database and a fixed training run; the expected
//! estimate bit patterns below were printed by the same runs.  The current
//! reader must load them forever — and a fabricated future version must
//! keep failing with `UnsupportedVersion` — so backward compatibility can
//! never silently break.  (Regenerating the v1/v2 fixtures is by
//! construction impossible with current code: the writer only emits the
//! current version.  Do not replace these files.)
//!
//! `golden_tree_v3.ckpt` was written by the current (v3) writer via the
//! `#[ignore]`d `generate_v3_golden_fixture` test below; it additionally
//! carries the per-channel int8 quant section, pinning both the f32 tier
//! and the quantized tier bit-for-bit.

use e2e_cost_estimator::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Assert a pinned f32-tier estimate.  The golden bit patterns were
/// recorded by the scalar kernels, whose arithmetic is frozen — on the
/// scalar dispatch path (the `E2E_FORCE_SCALAR=1` CI lane) the pin stays
/// exact to the bit.  On the AVX2 path the FMA GEMM and gate-sweep kernels
/// legitimately round differently (the f32 tier's tolerance contract,
/// docs/perf.md), so the same fixtures are pinned to a relative tolerance
/// there instead.
fn assert_estimate_pinned(got: f64, want_bits: u64, what: &str) {
    use e2e_cost_estimator::nn::simd::{active_path, DispatchPath};
    let want = f64::from_bits(want_bits);
    match active_path() {
        DispatchPath::Scalar => {
            assert_eq!(got.to_bits(), want_bits, "{what} (scalar path pins exact bits): {got} vs {want}")
        }
        _ => assert!(
            (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
            "{what} (AVX2 path allows FMA rounding drift): {got} vs {want}"
        ),
    }
}

/// The deterministic context the fixtures were generated under.
fn golden_db() -> Arc<Database> {
    Arc::new(generate_imdb(GeneratorConfig { n_titles: 200, sample_size: 32, seed: 7 }))
}

fn golden_plans(db: &Arc<Database>, n: usize) -> Vec<PlanNode> {
    let cost = CostModel::default();
    (0..n)
        .map(|i| {
            let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom(
                    "title",
                    "production_year",
                    CompareOp::Gt,
                    Operand::Num((1945 + i * 2) as f64),
                )),
            });
            let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
            let mut join = PlanNode::inner(
                PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
                vec![scan_t, scan_mc],
            );
            execute_plan(db, &mut join, &cost);
            join
        })
        .collect()
}

fn golden_tree_estimator(db: &Arc<Database>) -> CostEstimator {
    let enc = EncodingConfig::from_database(db, 8, 32);
    let fx = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(8)));
    CostEstimator::new(
        fx,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        TrainConfig { epochs: 2, batch_size: 8, ..Default::default() },
    )
}

/// Estimate bit patterns recorded at fixture-generation time (v1 writer).
const GOLDEN_TREE_BITS: [(u64, u64); 3] = [
    (0x403b166b62c7e0ae, 0x407321c03a3e01fb),
    (0x403b166b64ab836e, 0x407321c0502189ab),
    (0x403b166b6872c8ef, 0x407321c066051178),
];

const GOLDEN_MSCN_BITS: [u64; 3] = [0x40743dd5d073c6b2, 0x40743f3a411a45ee, 0x4074409e754fbce0];

/// Estimate bit patterns recorded at v2-fixture-generation time (v2 writer,
/// trained with resumable state, no quant section).
const GOLDEN_TREE_V2_BITS: [(u64, u64); 3] = [
    (0x403c008c023e9e3a, 0x4076e0c5d180b423),
    (0x403c008c0274609f, 0x4076e0c5d3c0cae7),
    (0x403c008c02aa2304, 0x4076e0c5d600e1ac),
];

/// Full-precision estimate bits recorded when `golden_tree_v3.ckpt` was
/// generated (v3 writer, quant section present).
const GOLDEN_TREE_V3_BITS: [(u64, u64); 3] = [
    (0x403a542420265eb4, 0x406d5111af0b20c6),
    (0x403a542426cda167, 0x406d511270262719),
    (0x403a542430c88576, 0x406d51134cd758f9),
];

/// Quantized-tier estimate bits recorded from the same v3 fixture.  The
/// three probe plans differ only in low f32 mantissa bits, so the int8
/// tier legitimately collapses them to one value; the pin is about format
/// stability, not tier resolution.
const GOLDEN_TREE_V3_QUANT_BITS: [(u64, u64); 3] = [
    (0x403a542c8387090b, 0x406d519dc6ce563a),
    (0x403a542c8387090b, 0x406d519dc6ce563a),
    (0x403a542c8387090b, 0x406d519dc6ce563a),
];

#[test]
fn v2_reader_loads_v1_tree_golden_checkpoint_bit_identically() {
    let db = golden_db();
    let plans = golden_plans(&db, 3);
    let mut est = golden_tree_estimator(&db);
    est.load_checkpoint(fixture("golden_tree_v1.ckpt")).expect("v1 golden checkpoint must load forever");
    assert!(est.is_fitted());
    for (plan, &(cost_bits, card_bits)) in plans.iter().zip(GOLDEN_TREE_BITS.iter()) {
        let (cost, card) = est.estimate(plan);
        assert_estimate_pinned(cost, cost_bits, "v1 checkpoint no longer serves its recorded cost");
        assert_estimate_pinned(card, card_bits, "v1 checkpoint no longer serves its recorded cardinality");
    }
}

#[test]
fn v1_checkpoints_load_but_refuse_to_resume() {
    let db = golden_db();
    let mut est = golden_tree_estimator(&db);
    // v1 carries no training state: a plain load works but is not
    // resumable, and an explicit resume is a typed refusal.
    assert!(matches!(est.resume_from_checkpoint(fixture("golden_tree_v1.ckpt")), Err(CheckpointError::Unsupported(_))));
    est.load_checkpoint(fixture("golden_tree_v1.ckpt")).expect("load");
    assert!(!est.is_resumable());

    // Re-saving the v1-loaded model produces a current-version file
    // *without* training state; resuming from that is the other typed
    // refusal path.
    let resaved = std::env::temp_dir().join(format!("golden-resaved-{}.ckpt", std::process::id()));
    est.save_checkpoint(&resaved).expect("re-save as current version");
    let mut fresh = golden_tree_estimator(&db);
    assert!(matches!(fresh.resume_from_checkpoint(&resaved), Err(CheckpointError::Unsupported(_))));
    fresh.load_checkpoint(&resaved).expect("stateless current-version file still loads fine");
    let _ = std::fs::remove_file(&resaved);
}

#[test]
fn v3_reader_loads_v2_tree_golden_checkpoint_bit_identically() {
    let db = golden_db();
    let plans = golden_plans(&db, 3);
    let mut est = golden_tree_estimator(&db);
    est.load_checkpoint(fixture("golden_tree_v2.ckpt")).expect("v2 golden checkpoint must load forever");
    assert!(est.is_fitted());
    // v2 has no quant section: the int8 tier is absent until derived.
    assert!(!est.has_quantized_weights(), "a v2 file must not conjure quantized weights");
    for (plan, &(cost_bits, card_bits)) in plans.iter().zip(GOLDEN_TREE_V2_BITS.iter()) {
        let (cost, card) = est.estimate(plan);
        assert_estimate_pinned(cost, cost_bits, "v2 checkpoint no longer serves its recorded cost");
        assert_estimate_pinned(card, card_bits, "v2 checkpoint no longer serves its recorded cardinality");
    }
}

#[test]
fn v3_golden_checkpoint_restores_both_precision_tiers_bit_identically() {
    let db = golden_db();
    let plans = golden_plans(&db, 3);
    let mut est = golden_tree_estimator(&db);
    est.load_checkpoint(fixture("golden_tree_v3.ckpt")).expect("v3 golden checkpoint must load forever");
    assert!(est.is_fitted());
    assert!(est.has_quantized_weights(), "the v3 fixture carries a quant section");
    for (plan, &(cost_bits, card_bits)) in plans.iter().zip(GOLDEN_TREE_V3_BITS.iter()) {
        let (cost, card) = est.estimate(plan);
        assert_estimate_pinned(cost, cost_bits, "v3 checkpoint no longer serves its recorded f32 cost");
        assert_estimate_pinned(card, card_bits, "v3 checkpoint no longer serves its recorded f32 cardinality");
    }
    let encoded: Vec<_> = plans.iter().map(|p| est.encode(p)).collect();
    let refs: Vec<_> = encoded.iter().collect();
    let quant = est.serving().estimate_encoded_batch_quant(&refs);
    for ((cost, card), &(cost_bits, card_bits)) in quant.iter().zip(GOLDEN_TREE_V3_QUANT_BITS.iter()) {
        assert_eq!(cost.to_bits(), cost_bits, "v3 checkpoint no longer serves its recorded int8-tier cost");
        assert_eq!(card.to_bits(), card_bits, "v3 checkpoint no longer serves its recorded int8-tier cardinality");
    }
}

#[test]
fn v3_file_without_quant_section_loads_full_precision() {
    let db = golden_db();
    let plans = golden_plans(&db, 3);
    let mut est = golden_tree_estimator(&db);
    est.load_checkpoint(fixture("golden_tree_v3.ckpt")).expect("load v3 fixture");
    let path = std::env::temp_dir().join(format!("golden-v3-noquant-{}.ckpt", std::process::id()));
    est.save_checkpoint_full_precision(&path).expect("save without quant section");
    let mut fresh = golden_tree_estimator(&db);
    fresh.load_checkpoint(&path).expect("a v3 file with an empty quant section must load");
    assert!(!fresh.has_quantized_weights(), "full-precision save must not restore an int8 tier");
    for (plan, &(cost_bits, card_bits)) in plans.iter().zip(GOLDEN_TREE_V3_BITS.iter()) {
        let (cost, card) = fresh.estimate(plan);
        assert_estimate_pinned(cost, cost_bits, "dropping the quant section must not perturb f32 estimates");
        assert_estimate_pinned(card, card_bits, "dropping the quant section must not perturb f32 estimates");
    }
    let _ = std::fs::remove_file(&path);
}

/// Regenerates `golden_tree_v3.ckpt` and prints the bit patterns to pin.
/// Run manually (`cargo test --test checkpoint_compat -- --ignored
/// generate_v3`) only when the fixture must be re-cut — i.e. never after
/// the v4 bump.
#[test]
#[ignore]
fn generate_v3_golden_fixture() {
    let db = golden_db();
    let train = golden_plans(&db, 24);
    let probe = golden_plans(&db, 3);
    let mut est = golden_tree_estimator(&db);
    est.fit(&train);
    assert!(est.ensure_quantized(), "fixture must quantize at least one matrix");
    est.save_checkpoint(fixture("golden_tree_v3.ckpt")).expect("write fixture");
    let mut loaded = golden_tree_estimator(&db);
    loaded.load_checkpoint(fixture("golden_tree_v3.ckpt")).expect("reload");
    for plan in &probe {
        let (cost, card) = loaded.estimate(plan);
        println!("f32   (0x{:016x}, 0x{:016x})", cost.to_bits(), card.to_bits());
    }
    let encoded: Vec<_> = probe.iter().map(|p| loaded.encode(p)).collect();
    let refs: Vec<_> = encoded.iter().collect();
    for (cost, card) in loaded.serving().estimate_encoded_batch_quant(&refs) {
        println!("quant (0x{:016x}, 0x{:016x})", cost.to_bits(), card.to_bits());
    }
}

/// Review regression: resuming training on a model-only load must refuse
/// with a typed error — a silent fresh-optimizer restart from epoch 0 would
/// masquerade as a continuation of the interrupted run, and a panic would
/// abort a serving process that could have fallen back to a full `fit`.
#[test]
fn fit_resumed_after_model_only_v1_load_returns_unsupported() {
    let db = golden_db();
    let plans = golden_plans(&db, 3);
    let mut est = golden_tree_estimator(&db);
    est.load_checkpoint(fixture("golden_tree_v1.ckpt")).expect("load");
    assert!(!est.is_resumable());
    match est.fit_resumed(&plans) {
        Err(CheckpointError::Unsupported(msg)) => {
            assert!(msg.contains("no resumable training state"), "unexpected message: {msg}")
        }
        Err(other) => panic!("expected Unsupported, got {other:?}"),
        Ok(_) => panic!("fit_resumed must refuse a model-only load"),
    }
    // A never-fitted estimator refuses the same way (the second expect()
    // path of the original bug).
    let mut fresh = golden_tree_estimator(&db);
    assert!(matches!(fresh.fit_resumed(&plans), Err(CheckpointError::Unsupported(_))));
    // The typed error leaves the estimator usable: fall back to a full fit,
    // exactly what the serving refresh controller does.
    fresh.fit(&plans);
    assert!(fresh.is_fitted());
}

#[test]
fn fabricated_future_version_fails_with_unsupported_version() {
    let db = golden_db();
    for (name, patch_offset) in [("golden_tree_v1.ckpt", 8usize), ("golden_mscn_v1.ckpt", 8usize)] {
        let mut bytes = std::fs::read(fixture(name)).expect("read fixture");
        bytes[patch_offset..patch_offset + 4].copy_from_slice(&4u32.to_le_bytes());
        let path = std::env::temp_dir().join(format!("golden-v4-{}-{name}", std::process::id()));
        std::fs::write(&path, &bytes).expect("write fabricated v4");
        if name.contains("tree") {
            let mut est = golden_tree_estimator(&db);
            assert!(
                matches!(est.load_checkpoint(&path), Err(CheckpointError::UnsupportedVersion { found: 4, .. })),
                "a v4 tree file must be rejected, not guessed at"
            );
        } else {
            let enc = EncodingConfig::from_database(&db, 8, 32);
            let mut est = MscnEstimator::new(db.clone(), enc, MscnConfig::default());
            assert!(
                matches!(est.load_checkpoint_from(&path), Err(CheckpointError::UnsupportedVersion { found: 4, .. })),
                "a v4 MSCN file must be rejected, not guessed at"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn v2_reader_loads_v1_mscn_golden_checkpoint_bit_identically() {
    let db = golden_db();
    let plans = golden_plans(&db, 3);
    let enc = EncodingConfig::from_database(&db, 8, 32);
    let mut est = MscnEstimator::new(db.clone(), enc, MscnConfig { epochs: 2, hidden_dim: 16, ..Default::default() });
    est.load_checkpoint_from(&fixture("golden_mscn_v1.ckpt")).expect("v1 MSCN golden checkpoint must load forever");
    for (estimate, &want) in est.estimate_many(&plans).iter().zip(GOLDEN_MSCN_BITS.iter()) {
        assert_estimate_pinned(
            estimate.cardinality.expect("cardinality slot"),
            want,
            "v1 MSCN checkpoint no longer serves its recorded estimate",
        );
    }
}
