//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation, through planning/execution and feature extraction, to training
//! and estimation — plus comparisons against the traditional baseline.

use e2e_cost_estimator::prelude::*;
use std::sync::Arc;

fn small_db() -> Arc<Database> {
    Arc::new(generate_imdb(GeneratorConfig { n_titles: 1_000, sample_size: 64, seed: 42 }))
}

#[test]
fn full_pipeline_trains_and_estimates() {
    let db = small_db();
    let samples =
        generate_workload(&db, WorkloadConfig { num_queries: 60, max_joins: 2, seed: 5, ..Default::default() });
    assert_eq!(samples.len(), 60);

    let enc = EncodingConfig::from_database(&db, 8, 64);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(8)));
    let mut estimator = CostEstimator::new(
        extractor,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, ..Default::default() },
        TrainConfig { epochs: 3, batch_size: 8, ..Default::default() },
    );
    let plans: Vec<PlanNode> = samples.iter().map(|s| s.plan.clone()).collect();
    let stats = estimator.fit(&plans);
    assert_eq!(stats.len(), 3);
    for s in samples.iter().take(10) {
        let (cost, card) = estimator.estimate(&s.plan);
        assert!(cost.is_finite() && cost >= 1.0);
        assert!(card.is_finite() && card >= 1.0);
    }
}

#[test]
fn learned_estimator_beats_traditional_on_training_distribution() {
    // The headline claim of the paper, in miniature: after training, the
    // learned model's mean cardinality q-error on queries drawn from the same
    // distribution is smaller than the traditional estimator's.
    let db = small_db();
    let train =
        generate_workload(&db, WorkloadConfig { num_queries: 120, max_joins: 2, seed: 5, ..Default::default() });
    let test =
        generate_workload(&db, WorkloadConfig { num_queries: 30, max_joins: 2, seed: 777, ..Default::default() });

    let enc = EncodingConfig::from_database(&db, 8, 64);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(8)));
    let mut estimator = CostEstimator::new(
        extractor,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 24, estimation_hidden_dim: 12, ..Default::default() },
        TrainConfig { epochs: 6, batch_size: 16, learning_rate: 0.003, ..Default::default() },
    );
    let plans: Vec<PlanNode> = train.iter().map(|s| s.plan.clone()).collect();
    estimator.fit(&plans);

    let traditional = TraditionalEstimator::analyze(&db);
    let mut learned_errors = Vec::new();
    let mut pg_errors = Vec::new();
    for s in &test {
        let truth = s.true_cardinality().max(1.0);
        let (_, learned_card) = estimator.estimate(&s.plan);
        learned_errors.push(q_error(learned_card, truth));
        let mut plan = s.plan.clone();
        let (pg_card, _) = traditional.estimate_plan(&mut plan);
        pg_errors.push(q_error(pg_card, truth));
    }
    let learned = ErrorSummary::from_errors(&learned_errors);
    let pg = ErrorSummary::from_errors(&pg_errors);
    assert!(
        learned.mean < pg.mean * 1.5,
        "learned mean q-error {:.2} should not be far worse than traditional {:.2}",
        learned.mean,
        pg.mean
    );
}

#[test]
fn traditional_estimator_annotations_and_executor_agree_on_structure() {
    let db = small_db();
    let samples =
        generate_workload(&db, WorkloadConfig { num_queries: 15, max_joins: 3, seed: 9, ..Default::default() });
    let traditional = TraditionalEstimator::analyze(&db);
    for s in &samples {
        let mut plan = s.plan.clone();
        traditional.estimate_plan(&mut plan);
        plan.visit_preorder(&mut |n, _| {
            assert!(n.annotations.true_cardinality.is_some(), "executor annotation missing");
            assert!(n.annotations.estimated_cardinality.is_some(), "estimator annotation missing");
        });
    }
}

#[test]
fn string_embedding_pipeline_integrates_with_the_estimator() {
    let db = small_db();
    let train = generate_workload(
        &db,
        WorkloadConfig {
            num_queries: 50,
            max_joins: 1,
            use_string_predicates: true,
            max_predicates_per_table: 3,
            seed: 21,
            ..Default::default()
        },
    );
    let strings = workload_strings(&train);
    assert!(!strings.is_empty());
    let encoder = build_string_encoder(
        &db,
        &strings,
        StringEncoding::EmbedRule,
        EmbedderConfig { dim: 8, max_rows_per_table: 100, epochs: 1, ..Default::default() },
    );
    let enc = EncodingConfig::from_database(&db, 8, 64);
    let extractor = FeatureExtractor::new(db.clone(), enc, encoder);
    let mut estimator = CostEstimator::new(
        extractor,
        ModelConfig {
            predicate: PredicateModelKind::MinMaxPool,
            feature_embed_dim: 8,
            hidden_dim: 16,
            estimation_hidden_dim: 8,
            ..Default::default()
        },
        TrainConfig { epochs: 2, batch_size: 8, ..Default::default() },
    );
    let plans: Vec<PlanNode> = train.iter().map(|s| s.plan.clone()).collect();
    let stats = estimator.fit(&plans);
    assert!(stats.iter().all(|s| s.train_loss.is_finite()));
}

#[test]
fn batched_and_single_estimation_agree_across_the_public_api() {
    let db = small_db();
    let train =
        generate_workload(&db, WorkloadConfig { num_queries: 40, max_joins: 2, seed: 31, ..Default::default() });
    let enc = EncodingConfig::from_database(&db, 8, 64);
    let extractor = FeatureExtractor::new(db.clone(), enc, Arc::new(HashBitmapEncoder::new(8)));
    let mut estimator = CostEstimator::new(
        extractor,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, ..Default::default() },
        TrainConfig { epochs: 2, batch_size: 8, ..Default::default() },
    );
    let plans: Vec<PlanNode> = train.iter().map(|s| s.plan.clone()).collect();
    estimator.fit(&plans);
    let encoded: Vec<_> = plans.iter().take(8).map(|p| estimator.encode(p)).collect();
    let batched = estimator.estimate_encoded_batch(&encoded);
    for (e, (bc, bk)) in encoded.iter().zip(batched.iter()) {
        let (c, k) = estimator.estimate_encoded(e);
        assert!((c.ln() - bc.ln()).abs() < 1e-3);
        assert!((k.ln() - bk.ln()).abs() < 1e-3);
    }
}
