//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`read()` / `write()` / `lock()` return guards directly).  A poisoned
//! std lock (a panic while held) propagates the inner value anyway, matching
//! parking_lot's behavior of not poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_writes_are_serialized() {
        let lock = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(*lock.read(), 8000);
    }
}
