//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro, `prop_assert*`, numeric range strategies,
//! simple regex string strategies (`"[a-z]{1,8}"`-style character classes),
//! `collection::{vec, btree_set}`, `sample::select` and `Strategy::prop_map`.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the case number and the seeded RNG makes the failure reproducible
//! (set `PROPTEST_CASES` to change the per-test case count, default 128).

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::Rng;

    /// RNG driving test-case generation.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    /// One `<charset>{min,max}` piece of a simple regex pattern.
    struct Piece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parse the regex subset `[class]{m,n}`, `.{m,n}`, literals.  Character
    /// classes support `a-z` ranges; a trailing `-` is a literal.
    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
                    let inner = &chars[i + 1..close];
                    i = close + 1;
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < inner.len() {
                        if j + 2 < inner.len() && inner[j + 1] == '-' {
                            for c in inner[j]..=inner[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(inner[j]);
                            j += 1;
                        }
                    }
                    set
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {n} / {m,n} repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().unwrap_or_else(|_| panic!("bad repetition {body:?}")),
                        hi.parse().unwrap_or_else(|_| panic!("bad repetition {body:?}")),
                    ),
                    None => {
                        let n = body.parse().unwrap_or_else(|_| panic!("bad repetition {body:?}"));
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { chars: set, min, max });
        }
        pieces
    }

    /// `&str` patterns are string strategies (regex subset).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let n = rng.gen_range(piece.min..=piece.max);
                for _ in 0..n {
                    let k = rng.gen_range(0..piece.chars.len());
                    out.push(piece.chars[k]);
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size bounds for generated collections.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates are retried a bounded
    /// number of times, so the set can come out smaller than `size.min` only
    /// when the element domain is nearly exhausted.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.min..=self.size.max);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value lists.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly select one of `items` per generated case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty list");
        Select { items }
    }

    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.gen_range(0..self.items.len());
            self.items[k].clone()
        }
    }
}

pub mod test_runner {
    //! The per-test case loop behind the `proptest!` macro.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Number of cases per property (override with `PROPTEST_CASES`).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(128)
    }

    /// Deterministic per-test seed derived from the test name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Run `f` for `case_count()` seeded cases, panicking on the first `Err`.
    pub fn run(name: &str, mut f: impl FnMut(&mut TestRng) -> Result<(), String>) {
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        let cases = case_count();
        for case in 0..cases {
            if let Err(msg) = f(&mut rng) {
                panic!("property {name} failed at case {case}/{cases}: {msg}");
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// [`test_runner::case_count`] seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    outcome
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body (fails the case, not the
/// whole process, so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {l:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

pub mod prelude {
    //! The proptest prelude: everything the test modules import.

    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access used as `prop::sample::select(...)`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn string_pattern_shape(s in "[a-z]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "bad length {}", s.len());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![1, 5, 9])) {
            prop_assert!([1, 5, 9].contains(&x));
        }

        #[test]
        fn prop_map_applies(n in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 10);
        }
    }

    #[test]
    fn btree_set_respects_target() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let mut rng = TestRng::seed_from_u64(1);
        let s = prop::collection::btree_set("[a-z]{1,8}", 1..20);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 20);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
