//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset this workspace uses —
//! `into_par_iter().map(f).collect()`, `par_iter()`, `par_chunks(n)` and
//! `join` — with real parallelism over `std::thread::scope` worker threads
//! pulling work items from a shared queue.  Results are returned in input
//! order.  Unlike rayon there is no work-stealing pool reuse; threads are
//! spawned per call, which is fine for the coarse-grained plan-group and
//! query-execution parallelism in this repo.

use std::sync::Mutex;

/// Number of worker threads for a workload of `n` items.
fn worker_count(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    hw.min(n).max(1)
}

/// Parallel ordered map: apply `f` to every item, preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // LIFO queue of (original index, item); each worker pops until empty.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop();
                match next {
                    Some((idx, item)) => {
                        let out = f(item);
                        done.lock().expect("result lock").push((idx, out));
                    }
                    None => break,
                }
            });
        }
    });
    let mut pairs = done.into_inner().expect("result lock");
    pairs.sort_unstable_by_key(|(idx, _)| *idx);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        rb = Some(handle.join().expect("join closure panicked"));
        ra
    });
    (ra, rb.expect("join result"))
}

/// An owned sequence ready for a parallel map.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel map pipeline awaiting `collect()`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Attach the per-item function.
    pub fn map<R, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Execute the map in parallel and collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

pub mod prelude {
    //! The rayon prelude: traits putting `par_*` methods on collections.

    pub use super::join;
    use super::ParIter;

    /// `into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// `par_iter()` / `par_chunks()` on slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over references.
        fn par_iter(&self) -> ParIter<&T>;
        /// Parallel iterator over contiguous chunks of at most `size` items.
        fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<&T> {
            ParIter { items: self.iter().collect() }
        }

        fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
            assert!(size > 0, "chunk size must be non-zero");
            ParIter { items: self.chunks(size).collect() }
        }
    }

    /// Parallel iteration over mutable references.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over `&mut` elements (map/collect preserves
        /// input order, like `par_iter`).
        fn par_iter_mut(&mut self) -> ParIter<&mut T>;

        /// Apply `f` to every element in place, in parallel.
        fn par_apply<F: Fn(&mut T) + Sync>(&mut self, f: F) {
            let _: Vec<()> = self.par_iter_mut().map(&f).collect();
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<&mut T> {
            ParIter { items: self.iter_mut().collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_everything() {
        let v: Vec<usize> = (0..103).collect();
        let sums: Vec<usize> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), (0..103).sum());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_apply_mutates_in_place() {
        let mut v: Vec<usize> = (0..100).collect();
        v.par_apply(|x| *x += 1);
        assert_eq!(v, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = vec![7];
        let out: Vec<usize> = one.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, vec![21]);
    }
}
