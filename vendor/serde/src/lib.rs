//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives so the
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace
//! compile without network access.  The marker traits below exist so code
//! may also write `T: Serialize` bounds; no actual (de)serialization is
//! provided — replace these vendor crates with the real serde when a
//! registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
