//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides exactly the surface this workspace uses — `Rng::gen_range` over
//! integer and float ranges, `Rng::gen_bool`, `SeedableRng::seed_from_u64`
//! and `seq::SliceRandom::{shuffle, choose}` — backed by whatever `RngCore`
//! implementation is plugged in (see the vendored `rand_chacha`).  The
//! generators are deterministic for a given seed, which is all the tests and
//! the reproducible training pipeline require.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits (upper half of `next_u64` by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // [0, 1): 53 high bits scaled down.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                // [0, 1]: divide by the largest 53-bit value.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (the subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod seq {
    //! Sequence-related random operations (`shuffle`, `choose`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // Weak mixing is fine for these unit tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Counter(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
