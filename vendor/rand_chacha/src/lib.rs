//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a type named [`ChaCha8Rng`] with the same construction API the
//! workspace uses (`SeedableRng::seed_from_u64`).  The generator underneath
//! is xoshiro256** seeded through SplitMix64 — not the ChaCha stream cipher,
//! but a high-quality deterministic PRNG, which is what the reproducible
//! training/test pipeline actually depends on.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        ChaCha8Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ: {same} collisions");
    }

    #[test]
    fn roughly_uniform_unit_draws() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
