//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! derive (and its syn/quote dependency tree) is unavailable.  Nothing in
//! this workspace serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent — so the derives expand to
//! nothing.  Swapping in the real serde later requires no source changes:
//! delete the `vendor/serde*` crates and point the manifests at crates.io.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
