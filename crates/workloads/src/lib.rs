//! Workload generation: the training-data generator of Section 4.3 and the
//! evaluation workloads of Section 6.1 (synthetic, scale, JOB-light and the
//! string-predicate JOB workload), rebuilt in shape over the synthetic IMDB
//! database.

pub mod drift;
pub mod enumeration;
pub mod generator;
pub mod suite;

pub use drift::{generate_drift_workload, DriftConfig, DriftGenerator, DriftPhase, FACT_TABLES};
pub use enumeration::{generate_enumeration_workload, EnumerationConfig, EnumerationSample};
pub use generator::{
    execute_workload, generate_workload, workload_strings, QueryGenerator, QuerySample, WorkloadConfig,
};
pub use suite::{workload_config, SuiteConfig, WorkloadKind, WorkloadSuite};
