//! The evaluation workloads of Section 6.1, reproduced in shape.
//!
//! * **Synthetic** — numeric-only predicates, at most 2 joins (paper: 5000
//!   queries; size is configurable).
//! * **Scale** — numeric-only predicates, 0–4 joins (paper: 500 queries).
//! * **JOB-light** — numeric-only predicates, 1–4 joins over the fact tables
//!   (paper: 70 queries).
//! * **JOB (strings)** — multi-join queries with complex string + numeric
//!   predicates (paper: the 113 hand-written JOB queries); used for
//!   Tables 10 and 11 and Figures 8–10.

use crate::generator::{generate_workload, QuerySample, WorkloadConfig};
use imdb::Database;

/// Which evaluation workload to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    Synthetic,
    Scale,
    JobLight,
    JobStrings,
    /// Single-table workload with string predicates (Figure 8).
    SingleTableStrings,
}

/// Scale factor applied to the paper's workload sizes so the reproduction
/// runs on a laptop; 1.0 keeps the reduced defaults below.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Number of training queries for the learned models.
    pub train_queries: usize,
    /// Number of evaluation queries.
    pub test_queries: usize,
    /// Seed offset so train and test sets differ.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { train_queries: 400, test_queries: 60, seed: 1000 }
    }
}

/// The base generator configuration of one workload kind.
pub fn workload_config(kind: WorkloadKind, num_queries: usize, seed: u64) -> WorkloadConfig {
    match kind {
        WorkloadKind::Synthetic => WorkloadConfig {
            num_queries,
            min_joins: 0,
            max_joins: 2,
            max_predicates_per_table: 2,
            use_string_predicates: false,
            or_probability: 0.2,
            seed,
        },
        WorkloadKind::Scale => WorkloadConfig {
            num_queries,
            min_joins: 0,
            max_joins: 4,
            max_predicates_per_table: 2,
            use_string_predicates: false,
            or_probability: 0.2,
            seed,
        },
        WorkloadKind::JobLight => WorkloadConfig {
            num_queries,
            min_joins: 1,
            max_joins: 4,
            max_predicates_per_table: 2,
            use_string_predicates: false,
            or_probability: 0.15,
            seed,
        },
        WorkloadKind::JobStrings => WorkloadConfig {
            num_queries,
            min_joins: 1,
            max_joins: 4,
            max_predicates_per_table: 3,
            use_string_predicates: true,
            or_probability: 0.3,
            seed,
        },
        WorkloadKind::SingleTableStrings => WorkloadConfig {
            num_queries,
            min_joins: 0,
            max_joins: 0,
            max_predicates_per_table: 4,
            use_string_predicates: true,
            or_probability: 0.35,
            seed,
        },
    }
}

/// A train/test split of annotated plans for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadSuite {
    pub kind: WorkloadKind,
    pub train: Vec<QuerySample>,
    pub test: Vec<QuerySample>,
}

impl WorkloadSuite {
    /// Generate the train and test sets (different seeds) for a workload kind.
    pub fn build(db: &Database, kind: WorkloadKind, config: SuiteConfig) -> Self {
        let train = generate_workload(db, workload_config(kind, config.train_queries, config.seed));
        let test = generate_workload(db, workload_config(kind, config.test_queries, config.seed + 7919));
        WorkloadSuite { kind, train, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};

    #[test]
    fn workload_configs_match_paper_shapes() {
        let synth = workload_config(WorkloadKind::Synthetic, 10, 1);
        assert_eq!(synth.max_joins, 2);
        assert!(!synth.use_string_predicates);
        let scale = workload_config(WorkloadKind::Scale, 10, 1);
        assert_eq!(scale.max_joins, 4);
        let job_light = workload_config(WorkloadKind::JobLight, 10, 1);
        assert_eq!(job_light.min_joins, 1);
        assert!(!job_light.use_string_predicates);
        let job = workload_config(WorkloadKind::JobStrings, 10, 1);
        assert!(job.use_string_predicates);
        let single = workload_config(WorkloadKind::SingleTableStrings, 10, 1);
        assert_eq!(single.max_joins, 0);
    }

    #[test]
    fn suite_builds_disjoint_train_test() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let suite = WorkloadSuite::build(
            &db,
            WorkloadKind::Synthetic,
            SuiteConfig { train_queries: 12, test_queries: 5, seed: 3 },
        );
        assert_eq!(suite.train.len(), 12);
        assert_eq!(suite.test.len(), 5);
        // Different seeds should give (almost surely) different first queries.
        assert_ne!(suite.train[0].query.to_sql(), suite.test[0].query.to_sql());
    }

    #[test]
    fn job_light_queries_always_have_joins() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let suite = WorkloadSuite::build(
            &db,
            WorkloadKind::JobLight,
            SuiteConfig { train_queries: 8, test_queries: 4, seed: 5 },
        );
        for s in suite.train.iter().chain(suite.test.iter()) {
            assert!(s.query.num_joins() >= 1);
        }
    }
}
