//! Drifting workloads: zipf hot-key migration across phases.
//!
//! The online-learning bench needs traffic whose *distribution moves*: a
//! model trained on phase 0 must get measurably worse by phase k, and a
//! fine-tuned model must be able to recover.  This generator produces that
//! shape from two rotating zipf choices per query:
//!
//! * the **hot fact table** — each query joins `title` with one fact table
//!   drawn zipf-skewed over a `table_hotset`-sized window of
//!   [`FACT_TABLES`]; the window rotates by one position per phase, so the
//!   table that received ~74% of phase-0 traffic (hot set 2 at skew 1.5)
//!   leaves the window entirely after two rotations and a model that only
//!   ever saw `title ⋈ movie_companies` suddenly serves
//!   `title ⋈ movie_info_idx` — traffic that is out-of-distribution, not
//!   just re-weighted;
//! * the **predicate pivot** — the `title.production_year` constant is
//!   drawn zipf-skewed over a `year_hotset`-sized window of the years
//!   present in the database, shifted by `year_stride` positions per phase,
//!   so selectivities drift even within a surviving table mix.
//!
//! Both rotations reuse [`imdb::ZipfSampler`] — the exact truncated-zeta
//! inverse-CDF sampler PR 2 fixed — so phase marginals are analytically
//! known and the distribution tests below can assert actual hot-key
//! migration instead of eyeballing histograms.

use crate::generator::{execute_workload, QuerySample};
use imdb::{Database, ZipfSampler};
use query::{Aggregate, CompareOp, JoinPredicate, LogicalQuery, Operand, Predicate, Projection};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fact tables eligible to be a phase's hot join partner; every entry joins
/// `title` on `movie_id = title.id`.
pub const FACT_TABLES: &[&str] = &["movie_companies", "movie_info", "movie_info_idx", "cast_info", "movie_keyword"];

/// Configuration of the phase-migration generator.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Number of workload phases (hot-set rotations).
    pub phases: usize,
    /// Queries generated per phase.
    pub queries_per_phase: usize,
    /// Zipf exponent of both hot-set draws.  Higher = more skew = sharper
    /// drift; 0 degenerates to uniform over the hot set.
    pub skew: f64,
    /// Size of a phase's fact-table hot set.  The zipf draw is truncated to
    /// this many ranks, so tables outside the window get **zero** traffic in
    /// that phase — after enough rotations the hot set is disjoint from
    /// phase 0's and the drifted traffic is genuinely out-of-distribution,
    /// not just re-weighted.
    pub table_hotset: usize,
    /// Size of a phase's year hot set (same truncation for the pivot draw).
    pub year_hotset: usize,
    /// How many positions the year hot-set shifts per phase.
    pub year_stride: usize,
    /// RNG seed; phase `p` uses `seed + p` so phases are independently
    /// reproducible.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            phases: 3,
            queries_per_phase: 64,
            skew: 1.5,
            table_hotset: 2,
            year_hotset: 8,
            year_stride: 11,
            seed: 17,
        }
    }
}

/// One phase of a drifting workload: executed, annotated samples.
#[derive(Debug, Clone)]
pub struct DriftPhase {
    /// Phase index in `0..config.phases`.
    pub phase: usize,
    /// The phase's executed samples (training triples).
    pub samples: Vec<QuerySample>,
}

/// The generator: owns the database handle, the zipf marginals and the
/// rotation schedule.
pub struct DriftGenerator<'a> {
    db: &'a Database,
    config: DriftConfig,
    table_zipf: ZipfSampler,
    year_zipf: ZipfSampler,
    years: Vec<f64>,
}

impl<'a> DriftGenerator<'a> {
    /// Build a generator over `db`.
    ///
    /// # Panics
    /// Panics if the database has no `title.production_year` values to
    /// pivot on (an empty database).
    pub fn new(db: &'a Database, config: DriftConfig) -> Self {
        let title = db.table("title").expect("database has no title table");
        let mut years: Vec<f64> = (0..title.n_rows())
            .filter_map(|row| title.value("production_year", row))
            .filter_map(|v| v.as_int())
            .map(|y| y as f64)
            .collect();
        years.sort_by(|a, b| a.partial_cmp(b).expect("years are finite"));
        years.dedup();
        assert!(!years.is_empty(), "no production_year values to pivot on");
        let table_hotset = config.table_hotset.clamp(1, FACT_TABLES.len());
        let year_hotset = config.year_hotset.clamp(1, years.len());
        DriftGenerator {
            db,
            config,
            table_zipf: ZipfSampler::new(table_hotset, config.skew),
            year_zipf: ZipfSampler::new(year_hotset, config.skew),
            years,
        }
    }

    /// The fact table at zipf rank `rank` (`< table_hotset`) in phase
    /// `phase` — rank 0 is the phase's hot table.  Pure rotation: each phase
    /// shifts the hot window by one position.
    pub fn table_for_rank(&self, phase: usize, rank: usize) -> &'static str {
        FACT_TABLES[(rank + phase) % FACT_TABLES.len()]
    }

    /// The year pivot at zipf rank `rank` in phase `phase`.
    pub fn year_for_rank(&self, phase: usize, rank: usize) -> f64 {
        self.years[(rank + phase * self.config.year_stride) % self.years.len()]
    }

    /// Generate (without executing) the logical queries of one phase.
    pub fn phase_queries(&self, phase: usize) -> Vec<LogicalQuery> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed.wrapping_add(phase as u64));
        (0..self.config.queries_per_phase)
            .map(|_| {
                let fact = self.table_for_rank(phase, self.table_zipf.sample(&mut rng));
                let year = self.year_for_rank(phase, self.year_zipf.sample(&mut rng));
                let op = if rng.gen_bool(0.5) { CompareOp::Gt } else { CompareOp::Lt };
                let filter = Predicate::atom("title", "production_year", op, Operand::Num(year));
                // `Aggregate::None` keeps the join as the plan root, so
                // root-level q-error measures the join cardinality the drift
                // actually moves (a COUNT root always has cardinality 1).
                LogicalQuery {
                    projections: vec![Projection {
                        table: "title".into(),
                        column: "id".into(),
                        aggregate: Aggregate::None,
                    }],
                    tables: vec!["title".into(), fact.into()],
                    joins: vec![JoinPredicate::new(fact, "movie_id", "title", "id")],
                    filters: [("title".to_string(), filter)].into_iter().collect(),
                }
            })
            .collect()
    }

    /// Generate and execute one phase.
    pub fn phase(&self, phase: usize) -> DriftPhase {
        DriftPhase { phase, samples: execute_workload(self.db, self.phase_queries(phase)) }
    }

    /// Generate and execute every phase.
    pub fn phases(&self) -> Vec<DriftPhase> {
        (0..self.config.phases).map(|p| self.phase(p)).collect()
    }
}

/// Generate a full drifting workload in one call.
pub fn generate_drift_workload(db: &Database, config: DriftConfig) -> Vec<DriftPhase> {
    DriftGenerator::new(db, config).phases()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use std::collections::HashMap;

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    fn table_histogram(queries: &[LogicalQuery]) -> HashMap<String, usize> {
        let mut hist = HashMap::new();
        for q in queries {
            let fact = q.tables.iter().find(|t| *t != "title").expect("join partner");
            *hist.entry(fact.clone()).or_insert(0) += 1;
        }
        hist
    }

    fn hottest(hist: &HashMap<String, usize>) -> (&str, usize) {
        hist.iter().map(|(t, &n)| (t.as_str(), n)).max_by_key(|&(t, n)| (n, t.to_owned())).expect("non-empty")
    }

    #[test]
    fn consecutive_phases_shift_the_hot_table() {
        let db = db();
        let config = DriftConfig { phases: 4, queries_per_phase: 200, ..Default::default() };
        let generator = DriftGenerator::new(&db, config);
        let mut previous: Option<(String, usize)> = None;
        for phase in 0..config.phases {
            let hist = table_histogram(&generator.phase_queries(phase));
            let (hot, count) = hottest(&hist);
            // At skew 1.5 rank 0 carries ~70% of the zipf mass over 5
            // tables; even with sampling noise the hot table must dominate.
            assert!(
                count * 2 > config.queries_per_phase,
                "phase {phase}: hot table {hot} only got {count}/{} queries",
                config.queries_per_phase
            );
            // And it must be the rotation's designated rank-0 table.
            assert_eq!(hot, generator.table_for_rank(phase, 0));
            if let Some((prev_hot, _)) = &previous {
                assert_ne!(hot, prev_hot.as_str(), "phase {phase} kept phase {}'s hot table", phase - 1);
            }
            previous = Some((hot.to_string(), count));
        }
    }

    #[test]
    fn consecutive_phases_shift_the_hot_years() {
        let db = db();
        let config = DriftConfig { phases: 3, queries_per_phase: 300, ..Default::default() };
        let generator = DriftGenerator::new(&db, config);
        let hot_years = |phase: usize| -> Vec<u64> {
            let mut hist: HashMap<u64, usize> = HashMap::new();
            for q in generator.phase_queries(phase) {
                let atom = &q.filters["title"].atoms()[0];
                let Operand::Num(year) = atom.operand else { panic!("numeric pivot") };
                *hist.entry(year.to_bits()).or_insert(0) += 1;
            }
            let mut by_count: Vec<(u64, usize)> = hist.into_iter().collect();
            by_count.sort_by_key(|&(y, n)| (std::cmp::Reverse(n), y));
            by_count.into_iter().take(3).map(|(y, _)| y).collect()
        };
        for phase in 1..config.phases {
            let previous = hot_years(phase - 1);
            let current = hot_years(phase);
            let overlap = current.iter().filter(|y| previous.contains(y)).count();
            assert!(
                overlap <= 1,
                "phase {phase} shares {overlap}/3 hot years with phase {} — year hot set did not migrate",
                phase - 1
            );
        }
    }

    #[test]
    fn phase_marginals_match_the_exact_zipf_pmf() {
        let db = db();
        let config = DriftConfig { phases: 2, queries_per_phase: 2_000, table_hotset: 3, ..Default::default() };
        let generator = DriftGenerator::new(&db, config);
        let zipf = ZipfSampler::new(config.table_hotset, config.skew);
        for phase in 0..config.phases {
            let hist = table_histogram(&generator.phase_queries(phase));
            for rank in 0..config.table_hotset {
                let table = generator.table_for_rank(phase, rank);
                let observed = *hist.get(table).unwrap_or(&0) as f64 / config.queries_per_phase as f64;
                let expected = zipf.pmf(rank);
                assert!(
                    (observed - expected).abs() < 0.05,
                    "phase {phase} rank {rank} ({table}): observed {observed:.3}, zipf pmf {expected:.3}"
                );
            }
            // The truncation is real: tables outside the hot window get no
            // traffic at all in this phase.
            for rank in config.table_hotset..FACT_TABLES.len() {
                let table = generator.table_for_rank(phase, rank);
                assert!(!hist.contains_key(table), "phase {phase}: cold table {table} received traffic");
            }
        }
    }

    #[test]
    fn executed_phases_carry_ground_truth_labels() {
        let db = db();
        let config = DriftConfig { phases: 2, queries_per_phase: 8, ..Default::default() };
        let phases = generate_drift_workload(&db, config);
        assert_eq!(phases.len(), 2);
        for p in &phases {
            assert_eq!(p.samples.len(), 8);
            for s in &p.samples {
                assert!(s.true_cost() > 0.0, "phase {} sample not executed", p.phase);
                assert!(s.plan.annotations.true_cardinality.is_some());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = db();
        let config = DriftConfig::default();
        let a = DriftGenerator::new(&db, config);
        let b = DriftGenerator::new(&db, config);
        for phase in 0..config.phases {
            let sql_a: Vec<String> = a.phase_queries(phase).iter().map(|q| q.to_sql()).collect();
            let sql_b: Vec<String> = b.phase_queries(phase).iter().map(|q| q.to_sql()).collect();
            assert_eq!(sql_a, sql_b);
        }
    }
}
