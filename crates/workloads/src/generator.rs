//! Training-data generation (Section 4.3).
//!
//! Queries are generated from the schema's join graph: pick a number of
//! tables, walk connected join edges, attach numeric and string predicates
//! sampled from the data, aggregate them with AND/OR, and add an aggregate
//! projection.  Each query is then planned and executed to produce the
//! annotated physical plan — the `<plan, real cost, real cardinality>`
//! training triple.

use engine::{plan_query, CostModel, PlannerConfig};
use imdb::{Database, Value};
use query::{Aggregate, CompareOp, JoinPredicate, LogicalQuery, Operand, PlanNode, Predicate, Projection};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::HashMap;

/// Configuration of the query generator.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Minimum / maximum number of joins per query.
    pub min_joins: usize,
    pub max_joins: usize,
    /// Maximum predicate atoms per table.
    pub max_predicates_per_table: usize,
    /// Whether string predicates (=, LIKE, NOT LIKE, IN) are generated.
    pub use_string_predicates: bool,
    /// Probability that two predicate atoms are combined with OR instead of AND.
    pub or_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 200,
            min_joins: 0,
            max_joins: 2,
            max_predicates_per_table: 2,
            use_string_predicates: false,
            or_probability: 0.25,
            seed: 11,
        }
    }
}

/// A generated training/evaluation sample: the logical query plus its
/// executed (annotated) physical plan.
#[derive(Debug, Clone)]
pub struct QuerySample {
    pub query: LogicalQuery,
    pub plan: PlanNode,
}

impl QuerySample {
    /// True cardinality of the plan root.
    pub fn true_cardinality(&self) -> f64 {
        self.plan.annotations.true_cardinality.unwrap_or(0.0)
    }

    /// True cost of the plan root.
    pub fn true_cost(&self) -> f64 {
        self.plan.annotations.true_cost.unwrap_or(0.0)
    }
}

/// Numeric columns eligible for range/equality predicates.
const NUMERIC_PREDICATE_COLUMNS: &[(&str, &str)] = &[
    ("title", "production_year"),
    ("title", "kind_id"),
    ("title", "season_nr"),
    ("title", "episode_nr"),
    ("movie_companies", "company_type_id"),
    ("movie_info_idx", "info_type_id"),
    ("movie_info", "info_type_id"),
    ("cast_info", "role_id"),
    ("movie_keyword", "keyword_id"),
];

/// String columns eligible for string predicates, with LIKE patterns drawn
/// from the JOB-style workload.
const STRING_PREDICATE_COLUMNS: &[(&str, &str)] = &[
    ("movie_companies", "note"),
    ("company_type", "kind"),
    ("info_type", "info"),
    ("movie_info_idx", "info"),
    ("movie_info", "info"),
    ("cast_info", "note"),
    ("keyword", "keyword"),
    ("company_name", "name"),
];

/// LIKE patterns used by string predicates (the motifs of the JOB workload).
pub const LIKE_PATTERNS: &[&str] = &[
    "%(co-production)%",
    "%(presents)%",
    "%(as Metro-Goldwyn-Mayer Pictures)%",
    "%(TV)%",
    "%(USA)%",
    "%(worldwide)%",
    "%(voice)%",
    "%(uncredited)%",
    "%Pictures%",
    "%-06-%",
    "%-12-%",
    "top %",
    "%rank%",
];

/// The generator: owns the database handle and RNG.
pub struct QueryGenerator<'a> {
    db: &'a Database,
    config: WorkloadConfig,
    rng: ChaCha8Rng,
    join_edges: Vec<JoinPredicate>,
}

impl<'a> QueryGenerator<'a> {
    /// Create a generator.
    pub fn new(db: &'a Database, config: WorkloadConfig) -> Self {
        let join_edges = db
            .schema()
            .join_edges()
            .into_iter()
            .map(|e| JoinPredicate::new(&e.fk_table, &e.fk_column, &e.pk_table, &e.pk_column))
            .collect();
        QueryGenerator { db, config, rng: ChaCha8Rng::seed_from_u64(config.seed), join_edges }
    }

    /// Pick a random value from a column (for realistic constants).
    fn sample_value(&mut self, table: &str, column: &str) -> Option<Value> {
        let t = self.db.table(table)?;
        if t.n_rows() == 0 {
            return None;
        }
        let row = self.rng.gen_range(0..t.n_rows());
        t.value(column, row)
    }

    /// Generate one numeric atom over a table in the query.
    fn numeric_atom(&mut self, tables: &[String]) -> Option<Predicate> {
        let candidates: Vec<&(&str, &str)> =
            NUMERIC_PREDICATE_COLUMNS.iter().filter(|(t, _)| tables.iter().any(|x| x == t)).collect();
        let (table, column) = **candidates.choose(&mut self.rng)?;
        let value = self.sample_value(table, column)?.as_int()? as f64;
        let op =
            *[CompareOp::Gt, CompareOp::Lt, CompareOp::Eq, CompareOp::Ne].choose(&mut self.rng).expect("non-empty");
        Some(Predicate::atom(table, column, op, Operand::Num(value)))
    }

    /// Generate one string atom over a table in the query.
    fn string_atom(&mut self, tables: &[String]) -> Option<Predicate> {
        let candidates: Vec<&(&str, &str)> =
            STRING_PREDICATE_COLUMNS.iter().filter(|(t, _)| tables.iter().any(|x| x == t)).collect();
        let (table, column) = **candidates.choose(&mut self.rng)?;
        let op = *[CompareOp::Eq, CompareOp::Ne, CompareOp::Like, CompareOp::NotLike, CompareOp::In]
            .choose(&mut self.rng)
            .expect("non-empty");
        let operand = match op {
            CompareOp::Like | CompareOp::NotLike => {
                Operand::Str((*LIKE_PATTERNS.choose(&mut self.rng).expect("non-empty")).to_string())
            }
            CompareOp::In => {
                let mut items = Vec::new();
                for _ in 0..self.rng.gen_range(2..=3) {
                    if let Some(Value::Str(s)) = self.sample_value(table, column) {
                        items.push(s);
                    }
                }
                if items.is_empty() {
                    return None;
                }
                Operand::StrList(items)
            }
            _ => match self.sample_value(table, column)? {
                Value::Str(s) => Operand::Str(s),
                Value::Int(_) => return None,
            },
        };
        Some(Predicate::atom(table, column, op, operand))
    }

    /// Combine atoms for one table into a compound predicate with AND/OR.
    fn combine(&mut self, atoms: Vec<Predicate>) -> Option<Predicate> {
        let mut iter = atoms.into_iter();
        let mut acc = iter.next()?;
        for a in iter {
            acc = if self.rng.gen_bool(self.config.or_probability) { acc.or(a) } else { acc.and(a) };
        }
        Some(acc)
    }

    /// Generate one logical query from the join graph.
    pub fn generate_query(&mut self) -> LogicalQuery {
        let n_joins = self.rng.gen_range(self.config.min_joins..=self.config.max_joins);
        // Random walk over the join graph starting from a random edge (or a
        // random fact table for 0-join queries).
        let mut tables: Vec<String> = Vec::new();
        let mut joins: Vec<JoinPredicate> = Vec::new();
        if n_joins == 0 {
            let start = ["title", "movie_companies", "movie_info_idx", "movie_info", "cast_info"]
                .choose(&mut self.rng)
                .expect("non-empty");
            tables.push((*start).to_string());
        } else {
            let mut edges = self.join_edges.clone();
            edges.shuffle(&mut self.rng);
            let first = edges[0].clone();
            tables.push(first.left_table.clone());
            tables.push(first.right_table.clone());
            joins.push(first);
            while joins.len() < n_joins {
                let next = edges.iter().find(|e| {
                    let l_in = tables.contains(&e.left_table);
                    let r_in = tables.contains(&e.right_table);
                    l_in != r_in
                });
                match next {
                    Some(e) => {
                        let e = e.clone();
                        if !tables.contains(&e.left_table) {
                            tables.push(e.left_table.clone());
                        }
                        if !tables.contains(&e.right_table) {
                            tables.push(e.right_table.clone());
                        }
                        joins.push(e);
                    }
                    None => break,
                }
            }
        }

        // Predicates per table.
        let mut filters: HashMap<String, Predicate> = HashMap::new();
        for table in tables.clone() {
            let n_atoms = self.rng.gen_range(0..=self.config.max_predicates_per_table);
            let mut atoms = Vec::new();
            for _ in 0..n_atoms {
                let use_string = self.config.use_string_predicates && self.rng.gen_bool(0.5);
                let atom = if use_string {
                    self.string_atom(std::slice::from_ref(&table))
                } else {
                    self.numeric_atom(std::slice::from_ref(&table))
                };
                if let Some(a) = atom {
                    atoms.push(a);
                }
            }
            if let Some(p) = self.combine(atoms) {
                filters.insert(table.clone(), p);
            }
        }

        let agg = *[Aggregate::Count, Aggregate::Min, Aggregate::Max].choose(&mut self.rng).expect("non-empty");
        LogicalQuery {
            projections: vec![Projection { table: tables[0].clone(), column: "id".into(), aggregate: agg }],
            tables,
            joins,
            filters,
        }
    }

    /// Generate `num_queries` logical queries.
    pub fn generate_queries(&mut self) -> Vec<LogicalQuery> {
        (0..self.config.num_queries).map(|_| self.generate_query()).collect()
    }
}

/// Plan and execute a batch of logical queries in parallel, producing
/// annotated training samples: planning fans out per query, then the whole
/// plan batch goes through [`engine::execute_plans`] — the counting executor,
/// so ground-truth labels never materialize join tuples and full-scale star
/// joins stay cheap.
pub fn execute_workload(db: &Database, queries: Vec<LogicalQuery>) -> Vec<QuerySample> {
    let planner_cfg = PlannerConfig::default();
    let cost_model = CostModel::default();
    let mut plans: Vec<PlanNode> = queries.par_iter().map(|q| plan_query(db, q, &planner_cfg)).collect();
    engine::execute_plans(db, &mut plans, &cost_model);
    queries.into_iter().zip(plans).map(|(query, plan)| QuerySample { query, plan }).collect()
}

/// Generate and execute a workload in one call.
pub fn generate_workload(db: &Database, config: WorkloadConfig) -> Vec<QuerySample> {
    let mut generator = QueryGenerator::new(db, config);
    let queries = generator.generate_queries();
    execute_workload(db, queries)
}

/// All string operands appearing in a workload (for string-embedding training).
pub fn workload_strings(samples: &[QuerySample]) -> Vec<String> {
    let mut out = Vec::new();
    for s in samples {
        for pred in s.query.filters.values() {
            for atom in pred.atoms() {
                match &atom.operand {
                    Operand::Str(v) => out.push(v.clone()),
                    Operand::StrList(items) => out.extend(items.iter().cloned()),
                    Operand::Num(_) => {}
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    #[test]
    fn generated_queries_are_connected_and_within_join_bounds() {
        let db = db();
        let cfg = WorkloadConfig { num_queries: 30, min_joins: 0, max_joins: 3, ..Default::default() };
        let mut generator = QueryGenerator::new(&db, cfg);
        for q in generator.generate_queries() {
            assert!(q.is_connected(), "disconnected query: {}", q.to_sql());
            assert!(q.num_joins() <= 3);
            assert!(!q.tables.is_empty());
        }
    }

    #[test]
    fn string_workload_contains_string_predicates() {
        let db = db();
        let cfg = WorkloadConfig {
            num_queries: 40,
            use_string_predicates: true,
            max_predicates_per_table: 3,
            ..Default::default()
        };
        let mut generator = QueryGenerator::new(&db, cfg);
        let queries = generator.generate_queries();
        let has_string = queries.iter().any(|q| {
            q.filters
                .values()
                .any(|p| p.atoms().iter().any(|a| matches!(a.operand, Operand::Str(_) | Operand::StrList(_))))
        });
        assert!(has_string, "no string predicates generated");
    }

    #[test]
    fn executed_workload_has_annotations() {
        let db = db();
        let samples = generate_workload(&db, WorkloadConfig { num_queries: 10, ..Default::default() });
        assert_eq!(samples.len(), 10);
        for s in &samples {
            assert!(s.true_cost() > 0.0);
            assert!(s.plan.annotations.true_cardinality.is_some());
            // Every node is annotated for sub-plan training.
            s.plan.visit_preorder(&mut |n, _| assert!(n.annotations.true_cost.is_some()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = db();
        let cfg = WorkloadConfig { num_queries: 5, seed: 99, ..Default::default() };
        let a: Vec<String> = QueryGenerator::new(&db, cfg).generate_queries().iter().map(|q| q.to_sql()).collect();
        let b: Vec<String> = QueryGenerator::new(&db, cfg).generate_queries().iter().map(|q| q.to_sql()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ground_truth_labels_match_the_materializing_oracle() {
        // Workload labeling rides the counting executor; on generated
        // JOB-style plans (joins + string predicates + index scans) every
        // node's label must equal the tuple-materializing oracle's.
        use engine::{execute_plan_mode, CostModel, ExecMode};
        let db = db();
        let cfg = WorkloadConfig {
            num_queries: 25,
            min_joins: 0,
            max_joins: 4,
            use_string_predicates: true,
            max_predicates_per_table: 3,
            seed: 123,
            ..Default::default()
        };
        let samples = generate_workload(&db, cfg);
        let model = CostModel::default();
        for s in &samples {
            let mut oracle = s.plan.clone();
            oracle.visit_postorder_mut(&mut |n| n.annotations = Default::default());
            execute_plan_mode(&db, &mut oracle, &model, ExecMode::Materialize);
            let counted = s.plan.nodes_preorder();
            let materialized = oracle.nodes_preorder();
            assert_eq!(counted.len(), materialized.len());
            for (c, m) in counted.iter().zip(materialized.iter()) {
                assert_eq!(
                    c.annotations.true_cardinality,
                    m.annotations.true_cardinality,
                    "counting label diverged from oracle on {}",
                    s.query.to_sql()
                );
            }
        }
    }

    #[test]
    fn workload_strings_extracts_operands() {
        let db = db();
        let cfg = WorkloadConfig {
            num_queries: 40,
            use_string_predicates: true,
            max_predicates_per_table: 3,
            ..Default::default()
        };
        let samples = generate_workload(&db, cfg);
        let strings = workload_strings(&samples);
        assert!(!strings.is_empty());
        let mut dedup = strings.clone();
        dedup.dedup();
        assert_eq!(strings.len(), dedup.len());
    }
}
