//! The DP-enumeration serving workload.
//!
//! The paper's estimator sits inside a DP plan enumerator: for each incoming
//! query the optimizer scores *many* candidate join orders that share almost
//! all of their subtrees.  This module generates that workload — logical
//! queries drawn from the join graph, each expanded into its connected
//! left-deep candidate orders via [`engine::enumerate_join_orders`] — for
//! the `serving_throughput` bench and the memoization tests.  Candidates are
//! *not* executed: serving only scores them, and ground truth for training
//! comes from the ordinary workload generator.

use crate::generator::{QueryGenerator, WorkloadConfig};
use engine::PlannerConfig;
use imdb::Database;
use query::{LogicalQuery, PlanNode};

/// Configuration of the enumeration workload.
#[derive(Debug, Clone, Copy)]
pub struct EnumerationConfig {
    /// Number of distinct queries to enumerate candidates for.
    pub num_queries: usize,
    /// Minimum / maximum joins per query (tables = joins + 1).
    pub min_joins: usize,
    pub max_joins: usize,
    /// Cap on candidate join orders emitted per query.
    pub max_candidates_per_query: usize,
    /// RNG seed for query generation.
    pub seed: u64,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig { num_queries: 12, min_joins: 3, max_joins: 4, max_candidates_per_query: 120, seed: 31 }
    }
}

/// One serving request: a query plus the candidate plans a DP enumerator
/// would ask the estimator to score.
#[derive(Debug, Clone)]
pub struct EnumerationSample {
    pub query: LogicalQuery,
    pub candidates: Vec<PlanNode>,
}

impl EnumerationSample {
    /// Total plan nodes over all candidates (the work a memoization-free
    /// estimator embeds).
    pub fn total_nodes(&self) -> usize {
        self.candidates.iter().map(|c| c.size()).sum()
    }

    /// Number of distinct sub-plan signatures over all candidates (the work
    /// a subtree-memoizing estimator embeds).
    pub fn distinct_subtrees(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for c in &self.candidates {
            for n in c.nodes_preorder() {
                seen.insert(n.signature_hash());
            }
        }
        seen.len()
    }
}

/// Generate the enumeration workload: `num_queries` connected multi-join
/// queries, each with up to `max_candidates_per_query` candidate join
/// orders.  Queries whose enumeration yields fewer than two candidates
/// (nothing to share) are skipped and a replacement is drawn, so every
/// sample exercises subtree overlap.
///
/// # Panics
/// Panics if the generator cannot produce `num_queries` enumerable queries
/// within a generous draw budget (only possible on a join graph where
/// almost every walk yields a single-candidate query — a configuration
/// error, not a condition to paper over with a silently short workload).
pub fn generate_enumeration_workload(db: &Database, config: EnumerationConfig) -> Vec<EnumerationSample> {
    let generator_cfg = WorkloadConfig {
        num_queries: config.num_queries,
        min_joins: config.min_joins.max(1),
        max_joins: config.max_joins.max(config.min_joins.max(1)),
        max_predicates_per_table: 2,
        use_string_predicates: false,
        or_probability: 0.2,
        seed: config.seed,
    };
    let mut generator = QueryGenerator::new(db, generator_cfg);
    let planner_cfg = PlannerConfig::default();
    let mut out = Vec::with_capacity(config.num_queries);
    let max_draws = config.num_queries * 20 + 100;
    for draw in 0.. {
        if out.len() >= config.num_queries {
            break;
        }
        assert!(
            draw < max_draws,
            "only {} of {} queries were enumerable after {max_draws} draws",
            out.len(),
            config.num_queries
        );
        let query = generator.generate_query();
        let candidates = engine::enumerate_join_orders(db, &query, &planner_cfg, config.max_candidates_per_query);
        if candidates.len() < 2 {
            continue;
        }
        out.push(EnumerationSample { query, candidates });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    #[test]
    fn workload_has_requested_shape() {
        let db = db();
        let cfg = EnumerationConfig { num_queries: 6, max_candidates_per_query: 40, ..Default::default() };
        let samples = generate_enumeration_workload(&db, cfg);
        assert_eq!(samples.len(), 6);
        for s in &samples {
            assert!(s.candidates.len() >= 2);
            assert!(s.candidates.len() <= 40);
            assert!(s.query.num_joins() >= 3);
            for c in &s.candidates {
                assert_eq!(c.tables().len(), s.query.tables.len(), "candidate covers all tables");
            }
        }
    }

    #[test]
    fn candidates_overlap_heavily() {
        let db = db();
        let samples = generate_enumeration_workload(&db, EnumerationConfig::default());
        let total: usize = samples.iter().map(|s| s.total_nodes()).sum();
        let distinct: usize = samples.iter().map(|s| s.distinct_subtrees()).sum();
        assert!(
            (distinct as f64) < 0.6 * total as f64,
            "DP-enumeration workload lost its subtree overlap: {distinct} distinct of {total} nodes"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let db = db();
        let cfg = EnumerationConfig { num_queries: 4, ..Default::default() };
        let a = generate_enumeration_workload(&db, cfg);
        let b = generate_enumeration_workload(&db, cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.query.to_sql(), y.query.to_sql());
            let xs: Vec<u64> = x.candidates.iter().map(|c| c.signature_hash()).collect();
            let ys: Vec<u64> = y.candidates.iter().map(|c| c.signature_hash()).collect();
            assert_eq!(xs, ys);
        }
    }
}
