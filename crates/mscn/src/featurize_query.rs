//! Set-based query featurization for MSCN.
//!
//! A plan (or query) is flattened into three sets:
//! * table set — per scanned table: table one-hot ⧺ sample bitmap of the
//!   table's filter,
//! * join set — per join condition: one-hot over the schema's join edges,
//! * predicate set — per atomic filter predicate: column one-hot ⧺ operator
//!   one-hot ⧺ normalized operand value.

use featurize::EncodingConfig;
use imdb::Database;
use query::{Operand, PhysicalOp, PlanNode};
use std::collections::HashMap;
use std::sync::Arc;

/// The three feature sets MSCN consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySets {
    pub tables: Vec<Vec<f32>>,
    pub joins: Vec<Vec<f32>>,
    pub predicates: Vec<Vec<f32>>,
    /// Training targets taken from the plan root.
    pub true_cardinality: f64,
    pub true_cost: f64,
}

/// Featurizer turning annotated plans into [`QuerySets`].
pub struct MscnFeaturizer {
    db: Arc<Database>,
    config: EncodingConfig,
    join_pos: HashMap<(String, String, String, String), usize>,
    /// When false, sample bitmaps are zeroed (the `MSCNNS*` variants).
    pub use_sample_bitmap: bool,
}

impl MscnFeaturizer {
    /// Create a featurizer from the database and shared encoding config.
    pub fn new(db: Arc<Database>, config: EncodingConfig) -> Self {
        let mut join_pos = HashMap::new();
        for e in db.schema().join_edges() {
            let k = (e.fk_table.clone(), e.fk_column.clone(), e.pk_table.clone(), e.pk_column.clone());
            let next = join_pos.len();
            join_pos.entry(k).or_insert(next);
        }
        MscnFeaturizer { db, config, join_pos, use_sample_bitmap: true }
    }

    /// The shared encoding configuration the feature positions come from.
    pub fn config(&self) -> &EncodingConfig {
        &self.config
    }

    /// Width of one table-set element.
    pub fn table_dim(&self) -> usize {
        self.config.table_pos.len() + self.config.sample_dim()
    }

    /// Width of one join-set element.
    pub fn join_dim(&self) -> usize {
        self.join_pos.len().max(1)
    }

    /// Width of one predicate-set element.
    pub fn predicate_dim(&self) -> usize {
        self.config.column_pos.len() + query::CompareOp::ALL.len() + 1
    }

    /// Flatten an annotated plan into the three sets.
    pub fn featurize(&self, plan: &PlanNode) -> QuerySets {
        let mut tables = Vec::new();
        let mut joins = Vec::new();
        let mut predicates = Vec::new();

        plan.visit_preorder(&mut |node, _| match &node.op {
            PhysicalOp::SeqScan { table, predicate } | PhysicalOp::IndexScan { table, predicate, .. } => {
                let mut t = vec![0.0f32; self.table_dim()];
                if let Some(&p) = self.config.table_pos.get(table) {
                    t[p] = 1.0;
                }
                if self.use_sample_bitmap {
                    if let (Some(pred), Some(sample), Some(tab)) =
                        (predicate.as_ref(), self.db.sample(table), self.db.table(table))
                    {
                        let bits = sample.bitmap(|row| pred.matches_row(tab, row));
                        for (i, b) in bits.iter().take(self.config.sample_dim()).enumerate() {
                            t[self.config.table_pos.len() + i] = *b;
                        }
                    } else if predicate.is_none() {
                        // No filter: all sampled rows qualify.
                        for i in 0..self.config.sample_dim() {
                            t[self.config.table_pos.len() + i] = 1.0;
                        }
                    }
                }
                tables.push(t);

                if let Some(pred) = predicate {
                    for atom in pred.atoms() {
                        let mut v = vec![0.0f32; self.predicate_dim()];
                        if let Some(&p) = self.config.column_pos.get(&(atom.table.clone(), atom.column.clone())) {
                            v[p] = 1.0;
                        }
                        v[self.config.column_pos.len() + atom.op.index()] = 1.0;
                        let val_slot = self.config.column_pos.len() + query::CompareOp::ALL.len();
                        v[val_slot] = match &atom.operand {
                            Operand::Num(x) => self.config.normalize_numeric(&atom.table, &atom.column, *x) as f32,
                            // MSCN has no string model: a fixed mid-range value
                            // (this is exactly the limitation the paper notes).
                            Operand::Str(_) | Operand::StrList(_) => 0.5,
                        };
                        predicates.push(v);
                    }
                }
            }
            PhysicalOp::HashJoin { condition }
            | PhysicalOp::MergeJoin { condition }
            | PhysicalOp::NestedLoopJoin { condition } => {
                let mut j = vec![0.0f32; self.join_dim()];
                let keys = [
                    (
                        condition.left_table.clone(),
                        condition.left_column.clone(),
                        condition.right_table.clone(),
                        condition.right_column.clone(),
                    ),
                    (
                        condition.right_table.clone(),
                        condition.right_column.clone(),
                        condition.left_table.clone(),
                        condition.left_column.clone(),
                    ),
                ];
                for k in keys {
                    if let Some(&p) = self.join_pos.get(&k) {
                        j[p] = 1.0;
                    }
                }
                joins.push(j);
            }
            _ => {}
        });

        if tables.is_empty() {
            tables.push(vec![0.0; self.table_dim()]);
        }
        if joins.is_empty() {
            joins.push(vec![0.0; self.join_dim()]);
        }
        if predicates.is_empty() {
            predicates.push(vec![0.0; self.predicate_dim()]);
        }

        QuerySets {
            tables,
            joins,
            predicates,
            true_cardinality: plan.annotations.true_cardinality.unwrap_or(0.0),
            true_cost: plan.annotations.true_cost.unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Predicate};

    fn featurizer() -> (MscnFeaturizer, Arc<Database>) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        (MscnFeaturizer::new(db.clone(), cfg), db)
    }

    fn one_join_plan(db: &Database) -> PlanNode {
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0))),
        });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        execute_plan(db, &mut join, &CostModel::default());
        join
    }

    #[test]
    fn sets_have_consistent_dimensions() {
        let (fx, db) = featurizer();
        let sets = fx.featurize(&one_join_plan(&db));
        assert_eq!(sets.tables.len(), 2);
        assert_eq!(sets.joins.len(), 1);
        assert_eq!(sets.predicates.len(), 1);
        assert!(sets.tables.iter().all(|t| t.len() == fx.table_dim()));
        assert!(sets.joins.iter().all(|j| j.len() == fx.join_dim()));
        assert!(sets.predicates.iter().all(|p| p.len() == fx.predicate_dim()));
        assert!(sets.true_cardinality > 0.0);
        assert!(sets.true_cost > 0.0);
    }

    #[test]
    fn join_one_hot_set_exactly_once() {
        let (fx, db) = featurizer();
        let sets = fx.featurize(&one_join_plan(&db));
        assert_eq!(sets.joins[0].iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn sample_bitmap_toggles() {
        let (mut fx, db) = featurizer();
        fx.use_sample_bitmap = false;
        let sets = fx.featurize(&one_join_plan(&db));
        let table_onehot_width = fx.config.table_pos.len();
        for t in &sets.tables {
            assert!(t[table_onehot_width..].iter().all(|&b| b == 0.0));
        }
    }

    #[test]
    fn plan_without_joins_gets_padding_elements() {
        let (fx, db) = featurizer();
        let mut scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "keyword".into(), predicate: None });
        execute_plan(&db, &mut scan, &CostModel::default());
        let sets = fx.featurize(&scan);
        assert_eq!(sets.joins.len(), 1);
        assert_eq!(sets.joins[0].iter().sum::<f32>(), 0.0);
        assert_eq!(sets.predicates.len(), 1);
    }
}
