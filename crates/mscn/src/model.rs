//! The MSCN model: per-set MLPs, average pooling, final MLP.

use crate::featurize_query::QuerySets;
use metrics::{q_error, EpochStats};
use nn::checkpoint as ckpt;
use nn::checkpoint::CheckpointError;
use nn::layers::Mlp2;
use nn::loss::NormalizationStats;
use nn::{Adam, EarlyStop, Graph, Matrix, MiniBatchSchedule, NodeId, Optimizer, ParamStore};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;

/// MSCN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct MscnConfig {
    pub hidden_dim: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// Train the cost head (true) or the cardinality head (false) — MSCN is a
    /// single-task model in the paper; both are provided for Tables 7 and 8.
    pub predict_cost: bool,
    /// Fraction of the samples held out for validation.
    pub validation_fraction: f64,
    /// Stop after this many epochs without validation improvement
    /// (`None` disables early stopping).
    pub early_stop_patience: Option<usize>,
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        MscnConfig {
            hidden_dim: 32,
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.001,
            predict_cost: false,
            validation_fraction: 0.1,
            early_stop_patience: None,
            seed: 3,
        }
    }
}

/// The MSCN network parameters.
pub struct MscnModel {
    pub config: MscnConfig,
    pub params: ParamStore,
    table_mlp: Mlp2,
    join_mlp: Mlp2,
    pred_mlp: Mlp2,
    out_mlp: Mlp2,
}

impl MscnModel {
    /// Build a model for the given set-element widths.
    pub fn new(table_dim: usize, join_dim: usize, pred_dim: usize, config: MscnConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let h = config.hidden_dim;
        let table_mlp = Mlp2::new(&mut params, "mscn.table", table_dim, h, h, &mut rng);
        let join_mlp = Mlp2::new(&mut params, "mscn.join", join_dim, h, h, &mut rng);
        let pred_mlp = Mlp2::new(&mut params, "mscn.pred", pred_dim, h, h, &mut rng);
        let out_mlp = Mlp2::new(&mut params, "mscn.out", 3 * h, h, 1, &mut rng);
        MscnModel { config, params, table_mlp, join_mlp, pred_mlp, out_mlp }
    }

    /// Width of one table-set element (as constructed).
    pub fn table_dim(&self) -> usize {
        self.table_mlp.l1.in_dim()
    }

    /// Width of one join-set element (as constructed).
    pub fn join_dim(&self) -> usize {
        self.join_mlp.l1.in_dim()
    }

    /// Width of one predicate-set element (as constructed).
    pub fn predicate_dim(&self) -> usize {
        self.pred_mlp.l1.in_dim()
    }

    /// Average-pool the per-element MLP outputs of one set.
    fn pool_set(&self, g: &mut Graph, store: &ParamStore, mlp: &Mlp2, set: &[Vec<f32>]) -> NodeId {
        let outs: Vec<NodeId> = set
            .iter()
            .map(|v| {
                let x = g.input(Matrix::column(v));
                let h = mlp.forward(g, store, x);
                g.relu(h)
            })
            .collect();
        let mut acc = outs[0];
        for &o in &outs[1..] {
            acc = g.add(acc, o);
        }
        g.scale(acc, 1.0 / set.len() as f32)
    }

    /// Forward pass: the normalized prediction (sigmoid output).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, sets: &QuerySets) -> NodeId {
        let t = self.pool_set(g, store, &self.table_mlp, &sets.tables);
        let j = self.pool_set(g, store, &self.join_mlp, &sets.joins);
        let p = self.pool_set(g, store, &self.pred_mlp, &sets.predicates);
        let concat = g.concat_rows(&[t, j, p]);
        self.out_mlp.forward_sigmoid(g, store, concat)
    }

    /// One set kind across a whole batch of queries: every element of every
    /// query's set is column-stacked into a single `dim x total` input so
    /// the set MLP runs as **one** blocked matmul per layer (instead of one
    /// tiny matmul per element per query), then the per-query averages fall
    /// out of one matmul with a sparse pooling matrix whose column `q` holds
    /// `1/|set_q|` on the rows of query `q`'s elements.
    ///
    /// The pooling matmul is dense (`hidden x total x queries` MACs, of
    /// which only the block diagonal is non-zero), so it scales a factor of
    /// `queries` worse than a segment-sum; at estimation batch sizes (tens
    /// to hundreds of queries) it stays far below the set-MLP cost it
    /// amortizes, but a many-thousand-query batch would want a dedicated
    /// segment-mean kernel instead.
    fn pool_sets_batch(&self, g: &mut Graph, store: &ParamStore, mlp: &Mlp2, sets: &[&[Vec<f32>]]) -> NodeId {
        let dim = mlp.l1.in_dim();
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let mut x = Matrix::zeros(dim, total);
        let mut col = 0;
        for set in sets {
            for v in *set {
                for (r, &val) in v.iter().enumerate() {
                    x.set(r, col, val);
                }
                col += 1;
            }
        }
        let x = g.input(x);
        let h = mlp.forward(g, store, x);
        let h = g.relu(h);
        let mut pool = Matrix::zeros(total, sets.len());
        let mut row = 0;
        for (q, set) in sets.iter().enumerate() {
            let w = 1.0 / set.len() as f32;
            for _ in 0..set.len() {
                pool.set(row, q, w);
                row += 1;
            }
        }
        let pool = g.input(pool);
        g.matmul(h, pool)
    }

    /// Batched forward pass over many queries: the normalized predictions as
    /// a `1 x queries.len()` node, in input order.  Matches
    /// [`MscnModel::forward`] per query up to f32 summation order (the
    /// per-query path pools with an add chain, this one with a dot product).
    ///
    /// # Panics
    /// Panics if `queries` is empty.
    pub fn forward_batch(&self, g: &mut Graph, store: &ParamStore, queries: &[&QuerySets]) -> NodeId {
        assert!(!queries.is_empty(), "forward_batch needs at least one query");
        let tables: Vec<&[Vec<f32>]> = queries.iter().map(|s| s.tables.as_slice()).collect();
        let joins: Vec<&[Vec<f32>]> = queries.iter().map(|s| s.joins.as_slice()).collect();
        let preds: Vec<&[Vec<f32>]> = queries.iter().map(|s| s.predicates.as_slice()).collect();
        let t = self.pool_sets_batch(g, store, &self.table_mlp, &tables);
        let j = self.pool_sets_batch(g, store, &self.join_mlp, &joins);
        let p = self.pool_sets_batch(g, store, &self.pred_mlp, &preds);
        let concat = g.concat_rows(&[t, j, p]);
        self.out_mlp.forward_sigmoid(g, store, concat)
    }
}

/// The training state an interrupted MSCN run needs to continue
/// bit-identically: schedule position, optimizer step counter (the moments
/// live in the param store) and early-stop position.  Mirrors
/// `estimator_core`'s `TrainProgress`.
#[derive(Debug, Clone)]
struct MscnProgress {
    epochs_done: usize,
    optimizer: Adam,
    early_stop: EarlyStop,
    stopped_early: bool,
}

impl MscnProgress {
    fn fresh(cfg: &MscnConfig) -> Self {
        MscnProgress {
            epochs_done: 0,
            optimizer: Adam::new(cfg.learning_rate),
            early_stop: EarlyStop::new(cfg.early_stop_patience),
            stopped_early: false,
        }
    }
}

/// Trainer for MSCN (single-task, MSE-style loss on normalized log targets).
pub struct MscnTrainer {
    pub model: MscnModel,
    pub normalization: NormalizationStats,
    progress: Option<MscnProgress>,
}

impl MscnTrainer {
    /// Fit target normalization and wrap the model.
    pub fn new(model: MscnModel, samples: &[QuerySets]) -> Self {
        let targets: Vec<f64> =
            samples.iter().map(|s| if model.config.predict_cost { s.true_cost } else { s.true_cardinality }).collect();
        MscnTrainer { model, normalization: NormalizationStats::fit(&targets), progress: None }
    }

    fn target(&self, s: &QuerySets) -> f64 {
        if self.model.config.predict_cost {
            s.true_cost
        } else {
            s.true_cardinality
        }
    }

    /// Train on `samples`, returning the shared per-epoch statistics
    /// (training loss, validation q-error of the trained target, wall time).
    ///
    /// The validation split, per-epoch mini-batch shuffling and the
    /// early-stop policy all come from the shared
    /// [`nn::MiniBatchSchedule`] / [`nn::EarlyStop`] helpers — the same
    /// scaffolding the tree-model trainer runs on.  The q-error slot of the
    /// target MSCN does not train is `f64::NAN`.
    /// A fresh trainer runs epochs `0..config.epochs`; one carrying restored
    /// progress (via [`MscnTrainer::resume_from_checkpoint`]) continues at
    /// `epochs_done`, replaying the schedule's RNG through the completed
    /// epochs so the resumed run is bit-identical to an uninterrupted one.
    pub fn train(&mut self, samples: &[QuerySets]) -> Vec<EpochStats> {
        let cfg = self.model.config;
        let mut schedule = MiniBatchSchedule::new(samples.len(), cfg.validation_fraction, cfg.batch_size, cfg.seed);
        let mut progress = self.progress.take().unwrap_or_else(|| MscnProgress::fresh(&cfg));
        for _ in 0..progress.epochs_done {
            let _ = schedule.epoch_batches();
        }
        let mut stats = Vec::with_capacity(cfg.epochs.saturating_sub(progress.epochs_done));
        let val_refs: Vec<&QuerySets> = schedule.validation().iter().map(|&i| &samples[i]).collect();
        while !progress.stopped_early && progress.epochs_done < cfg.epochs {
            let epoch = progress.epochs_done;
            let started = std::time::Instant::now();
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for batch in schedule.epoch_batches() {
                self.model.params.zero_grad();
                for &si in batch {
                    let s = &samples[si];
                    let target = self.normalization.normalize(self.target(s));
                    let mut g = Graph::new();
                    let out = self.model.forward(&mut g, &self.model.params, s);
                    let val = g.value(out).data()[0];
                    let (loss, grad) = self.normalization.loss_and_grad(val, target);
                    epoch_loss += loss;
                    g.backward(out, Matrix::from_vec(1, 1, vec![grad]), &mut self.model.params);
                }
                seen += batch.len();
                progress.optimizer.step(&mut self.model.params);
            }
            let val_q = if val_refs.is_empty() {
                f64::NAN
            } else {
                let estimates = self.estimate_refs(&val_refs);
                val_refs.iter().zip(estimates.iter()).map(|(s, &e)| q_error(e, self.target(s))).sum::<f64>()
                    / val_refs.len() as f64
            };
            let (card_q, cost_q) = if cfg.predict_cost { (f64::NAN, val_q) } else { (val_q, f64::NAN) };
            progress.epochs_done = epoch + 1;
            stats.push(EpochStats {
                epoch,
                train_loss: if seen > 0 { epoch_loss / seen as f64 } else { 0.0 },
                validation_card_qerror_mean: card_q,
                validation_cost_qerror_mean: cost_q,
                wall_time_secs: started.elapsed().as_secs_f64(),
            });
            if progress.early_stop.observe(val_q) {
                progress.stopped_early = true;
            }
        }
        self.progress = Some(progress);
        stats
    }

    /// Predict the denormalized target for one query.
    pub fn estimate(&self, sets: &QuerySets) -> f64 {
        let mut g = Graph::new();
        let out = self.model.forward(&mut g, &self.model.params, sets);
        self.normalization.denormalize(g.value(out).data()[0])
    }

    /// Predict the denormalized target for a whole batch of queries at once
    /// on an inference-mode tape, packing every set through one blocked
    /// matmul per layer ([`MscnModel::forward_batch`]) — the MSCN analogue
    /// of the tree models' level-batched inference.
    pub fn estimate_batch(&self, samples: &[QuerySets]) -> Vec<f64> {
        let refs: Vec<&QuerySets> = samples.iter().collect();
        self.estimate_refs(&refs)
    }

    /// Batched estimation over borrowed queries (the validation loop's path).
    pub fn estimate_refs(&self, refs: &[&QuerySets]) -> Vec<f64> {
        if refs.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::inference();
        let out = self.model.forward_batch(&mut g, &self.model.params, refs);
        let vals = g.value(out);
        (0..refs.len()).map(|i| self.normalization.denormalize(vals.get(0, i))).collect()
    }

    /// Serialize the fitted MSCN model (config + set-element widths +
    /// target normalization + parameters) into `w` — the MSCN equivalent of
    /// `CostEstimator::save_checkpoint`, and just as bit-identical on
    /// reload.  Callers may append further sections (e.g. a vocab snapshot)
    /// to the same stream.
    pub fn save_checkpoint_to(&self, w: &mut impl std::io::Write) -> Result<(), CheckpointError> {
        let cfg = self.model.config;
        ckpt::write_header(w, ckpt::KIND_MSCN)?;
        ckpt::write_u64(w, cfg.hidden_dim as u64)?;
        ckpt::write_u64(w, cfg.epochs as u64)?;
        ckpt::write_u64(w, cfg.batch_size as u64)?;
        ckpt::write_f64(w, cfg.learning_rate as f64)?;
        ckpt::write_u8(w, cfg.predict_cost as u8)?;
        ckpt::write_f64(w, cfg.validation_fraction)?;
        ckpt::write_u8(w, cfg.early_stop_patience.is_some() as u8)?;
        ckpt::write_u64(w, cfg.early_stop_patience.unwrap_or(0) as u64)?;
        ckpt::write_u64(w, cfg.seed)?;
        ckpt::write_u64(w, self.model.table_dim() as u64)?;
        ckpt::write_u64(w, self.model.join_dim() as u64)?;
        ckpt::write_u64(w, self.model.predicate_dim() as u64)?;
        ckpt::write_f64(w, self.normalization.log_min)?;
        ckpt::write_f64(w, self.normalization.log_max)?;
        self.model.params.save_to(w)?;
        // v2 training-state block: presence flag, then the resumable state.
        match &self.progress {
            None => ckpt::write_u8(w, 0),
            Some(p) => {
                ckpt::write_u8(w, 1)?;
                ckpt::write_u64(w, p.epochs_done as u64)?;
                ckpt::write_u64(w, p.optimizer.step_count())?;
                let (best, since_best) = p.early_stop.state();
                ckpt::write_f64(w, best)?;
                ckpt::write_u64(w, since_best as u64)?;
                ckpt::write_u8(w, p.stopped_early as u8)?;
                self.model.params.save_moments_to(w)
            }
        }
    }

    /// [`MscnTrainer::save_checkpoint_to`] into a file.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save_checkpoint_to(&mut w)?;
        Ok(w.flush()?)
    }

    /// Restore a trainer saved by [`MscnTrainer::save_checkpoint_to`]; the
    /// returned trainer serves bit-identical estimates with zero
    /// retraining.  The reader is left positioned after the parameter
    /// payload, so callers can read any sections they appended.
    pub fn load_checkpoint_from(r: &mut impl std::io::Read) -> Result<MscnTrainer, CheckpointError> {
        let version = ckpt::read_header(r, ckpt::KIND_MSCN)?;
        let hidden_dim = ckpt::read_u64(r, "hidden dim")? as usize;
        let epochs = ckpt::read_u64(r, "epochs")? as usize;
        let batch_size = ckpt::read_u64(r, "batch size")? as usize;
        let learning_rate = ckpt::read_f64(r, "learning rate")? as f32;
        let predict_cost = ckpt::read_u8(r, "predict_cost flag")? != 0;
        let validation_fraction = ckpt::read_f64(r, "validation fraction")?;
        let has_patience = ckpt::read_u8(r, "early-stop flag")? != 0;
        let patience = ckpt::read_u64(r, "early-stop patience")? as usize;
        let seed = ckpt::read_u64(r, "seed")?;
        let config = MscnConfig {
            hidden_dim,
            epochs,
            batch_size,
            learning_rate,
            predict_cost,
            validation_fraction,
            early_stop_patience: has_patience.then_some(patience),
            seed,
        };
        let table_dim = ckpt::read_u64(r, "table dim")? as usize;
        let join_dim = ckpt::read_u64(r, "join dim")? as usize;
        let pred_dim = ckpt::read_u64(r, "predicate dim")? as usize;
        let normalization = NormalizationStats {
            log_min: ckpt::read_f64(r, "target log_min")?,
            log_max: ckpt::read_f64(r, "target log_max")?,
        };
        let mut model = MscnModel::new(table_dim, join_dim, pred_dim, config);
        model.params.load_values_from(r)?;
        // The v2 training-state block sits between the parameters and any
        // caller-appended sections, so it must be consumed even by a
        // model-only load; v1 files simply do not have it.
        let progress = if version >= 2 && ckpt::read_u8(r, "training-state flag")? != 0 {
            let epochs_done = ckpt::read_u64(r, "epochs done")? as usize;
            let step_count = ckpt::read_u64(r, "optimizer step count")?;
            let best = ckpt::read_f64(r, "early-stop best metric")?;
            let since_best = ckpt::read_u64(r, "early-stop epochs since best")? as usize;
            let stopped_early = ckpt::read_u8(r, "early-stop stopped flag")? != 0;
            model.params.load_moments_from(r)?;
            let mut optimizer = Adam::new(config.learning_rate);
            optimizer.set_step_count(step_count);
            Some(MscnProgress {
                epochs_done,
                optimizer,
                early_stop: EarlyStop::from_state(config.early_stop_patience, best, since_best),
                stopped_early,
            })
        } else {
            None
        };
        Ok(MscnTrainer { model, normalization, progress })
    }

    /// [`MscnTrainer::load_checkpoint_from`] out of a file.
    pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<MscnTrainer, CheckpointError> {
        Self::load_checkpoint_from(&mut std::io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Restore a trainer **with its training state** so a following
    /// [`MscnTrainer::train`] call continues the interrupted run —
    /// bit-identically, given the same samples and hyper-parameters (bump
    /// `model.config.epochs` to the full target first).  Fails with
    /// [`CheckpointError::Unsupported`] on a v1 or model-only checkpoint.
    pub fn resume_from_checkpoint(path: impl AsRef<Path>) -> Result<MscnTrainer, CheckpointError> {
        let trainer = Self::load_checkpoint(path)?;
        if trainer.progress.is_none() {
            return Err(CheckpointError::Unsupported("checkpoint carries no MSCN training state to resume from"));
        }
        Ok(trainer)
    }

    /// True when the trainer carries resumable training state.
    pub fn is_resumable(&self) -> bool {
        self.progress.is_some()
    }

    /// Mean q-error over a workload.
    pub fn mean_qerror(&self, samples: &[QuerySets]) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        samples.iter().map(|s| q_error(self.estimate(s), self.target(s))).sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize_query::MscnFeaturizer;
    use engine::{execute_plan, CostModel};
    use featurize::EncodingConfig;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use std::sync::Arc;

    fn dataset(n: usize) -> (Vec<QuerySets>, MscnFeaturizer) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = MscnFeaturizer::new(db.clone(), cfg);
        let cost = CostModel::default();
        let mut out = Vec::new();
        for i in 0..n {
            let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom(
                    "title",
                    "production_year",
                    CompareOp::Gt,
                    Operand::Num((1935 + i * 2) as f64),
                )),
            });
            let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
            let mut join = PlanNode::inner(
                PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
                vec![scan_t, scan_mc],
            );
            execute_plan(&db, &mut join, &cost);
            out.push(fx.featurize(&join));
        }
        (out, fx)
    }

    #[test]
    fn forward_produces_unit_interval_output() {
        let (samples, fx) = dataset(4);
        let model = MscnModel::new(fx.table_dim(), fx.join_dim(), fx.predicate_dim(), MscnConfig::default());
        let mut g = Graph::new();
        let out = model.forward(&mut g, &model.params, &samples[0]);
        let v = g.value(out).data()[0];
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn training_improves_cardinality_qerror() {
        let (samples, fx) = dataset(40);
        let config = MscnConfig { epochs: 15, hidden_dim: 16, learning_rate: 0.005, ..Default::default() };
        let model = MscnModel::new(fx.table_dim(), fx.join_dim(), fx.predicate_dim(), config);
        let mut trainer = MscnTrainer::new(model, &samples);
        let before = trainer.mean_qerror(&samples);
        let losses = trainer.train(&samples);
        let after = trainer.mean_qerror(&samples);
        assert_eq!(losses.len(), 15);
        assert!(after < before, "MSCN training did not improve q-error: {before:.2} -> {after:.2}");
    }

    #[test]
    fn batched_estimates_match_per_query() {
        let (samples, fx) = dataset(24);
        let config = MscnConfig { epochs: 3, hidden_dim: 16, ..Default::default() };
        let model = MscnModel::new(fx.table_dim(), fx.join_dim(), fx.predicate_dim(), config);
        let mut trainer = MscnTrainer::new(model, &samples);
        trainer.train(&samples);
        let batched = trainer.estimate_batch(&samples);
        assert_eq!(batched.len(), samples.len());
        for (s, b) in samples.iter().zip(batched.iter()) {
            let one = trainer.estimate(s);
            assert!((one.ln() - b.ln()).abs() < 1e-3, "batched MSCN diverged: {one} vs {b}");
        }
        assert!(trainer.estimate_batch(&[]).is_empty());
        // A single-query batch matches too (degenerate pooling matrix).
        let single = trainer.estimate_batch(std::slice::from_ref(&samples[0]));
        assert!((single[0].ln() - trainer.estimate(&samples[0]).ln()).abs() < 1e-3);
    }

    #[test]
    fn batched_estimates_handle_mixed_set_sizes() {
        // Zero-join single-table plans pad their join set; mix them with
        // joined plans so the pooling segments have different widths.
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = MscnFeaturizer::new(db.clone(), cfg);
        let cost = CostModel::default();
        let mut samples = Vec::new();
        for i in 0..6 {
            let mut scan = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom(
                    "title",
                    "production_year",
                    CompareOp::Gt,
                    Operand::Num((1950 + i * 5) as f64),
                )),
            });
            execute_plan(&db, &mut scan, &cost);
            samples.push(fx.featurize(&scan));
        }
        let (joined, _) = dataset(6);
        samples.extend(joined);
        let model = MscnModel::new(fx.table_dim(), fx.join_dim(), fx.predicate_dim(), MscnConfig::default());
        let trainer = MscnTrainer::new(model, &samples);
        let batched = trainer.estimate_batch(&samples);
        for (s, b) in samples.iter().zip(batched.iter()) {
            let one = trainer.estimate(s);
            assert!((one.ln() - b.ln()).abs() < 1e-3, "mixed-size batch diverged: {one} vs {b}");
        }
    }

    #[test]
    fn cost_mode_trains() {
        let (samples, fx) = dataset(10);
        let config = MscnConfig { epochs: 2, hidden_dim: 8, predict_cost: true, ..Default::default() };
        let model = MscnModel::new(fx.table_dim(), fx.join_dim(), fx.predicate_dim(), config);
        let mut trainer = MscnTrainer::new(model, &samples);
        trainer.train(&samples);
        let est = trainer.estimate(&samples[0]);
        assert!(est.is_finite() && est >= 1.0);
    }
}
