//! MSCN behind the pluggable-backend contract.
//!
//! [`MscnEstimator`] packages the featurizer, the model configuration and a
//! (possibly absent) fitted trainer into one object implementing
//! [`estimator_core::Estimator`] / [`estimator_core::TrainableEstimator`],
//! so the registry-driven bench loop and the serving layer treat MSCN
//! exactly like the tree model — fit from annotated plans, batched
//! estimation, versioned checkpointing.  MSCN is single-task: the
//! capability flags advertise only the target selected by
//! [`MscnConfig::predict_cost`], and the other estimate slot stays `None`.

use crate::featurize_query::{MscnFeaturizer, QuerySets};
use crate::model::{MscnConfig, MscnModel, MscnTrainer};
use estimator_core::checkpoint as vocab_ckpt;
use estimator_core::{Estimator, EstimatorCapabilities, PlanEstimate, TrainableEstimator};
use featurize::EncodingConfig;
use imdb::Database;
use metrics::EpochStats;
use nn::checkpoint::CheckpointError;
use query::PlanNode;
use std::path::Path;
use std::sync::Arc;

/// The MSCN baseline as a pluggable estimator backend.
pub struct MscnEstimator {
    featurizer: MscnFeaturizer,
    config: MscnConfig,
    trainer: Option<MscnTrainer>,
}

impl MscnEstimator {
    /// Build an unfitted backend over the shared encoding configuration.
    pub fn new(db: Arc<Database>, enc: EncodingConfig, config: MscnConfig) -> Self {
        Self::with_featurizer(MscnFeaturizer::new(db, enc), config)
    }

    /// Build from an already-configured featurizer (e.g. with the sample
    /// bitmap disabled for the `MSCNNS*` variants).
    pub fn with_featurizer(featurizer: MscnFeaturizer, config: MscnConfig) -> Self {
        MscnEstimator { featurizer, config, trainer: None }
    }

    /// The featurizer (mutable, to toggle `use_sample_bitmap` before fit).
    pub fn featurizer_mut(&mut self) -> &mut MscnFeaturizer {
        &mut self.featurizer
    }

    /// The fitted trainer, if any.
    pub fn trainer(&self) -> Option<&MscnTrainer> {
        self.trainer.as_ref()
    }

    /// Fit on annotated plans (featurize + train), replacing any prior fit.
    pub fn fit(&mut self, plans: &[PlanNode]) -> Vec<EpochStats> {
        let sets: Vec<QuerySets> = plans.iter().map(|p| self.featurizer.featurize(p)).collect();
        let model = MscnModel::new(
            self.featurizer.table_dim(),
            self.featurizer.join_dim(),
            self.featurizer.predicate_dim(),
            self.config,
        );
        let mut trainer = MscnTrainer::new(model, &sets);
        let stats = trainer.train(&sets);
        self.trainer = Some(trainer);
        stats
    }

    /// Restore a checkpoint including its training state, so
    /// [`MscnEstimator::fit_resumed`] can continue the interrupted run.
    /// Verifies the vocabulary exactly like
    /// [`Estimator::load_checkpoint_from`]; fails with
    /// [`CheckpointError::Unsupported`] on a v1 or model-only file.  On any
    /// error the estimator is left untouched.
    pub fn resume_from_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        self.load_impl(path, true)
    }

    fn load_impl(&mut self, path: &Path, require_state: bool) -> Result<(), CheckpointError> {
        // One pass over the stream: the trainer body, then the vocab section
        // the save appended.  Everything is verified before `self` changes.
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        let trainer = MscnTrainer::load_checkpoint_from(&mut r)?;
        if require_state && !trainer.is_resumable() {
            return Err(CheckpointError::Unsupported("checkpoint carries no MSCN training state to resume from"));
        }
        let vocab = vocab_ckpt::read_vocab(&mut r)?;
        vocab.verify(self.featurizer.config(), self.featurizer.use_sample_bitmap)?;
        if trainer.model.table_dim() != self.featurizer.table_dim()
            || trainer.model.join_dim() != self.featurizer.join_dim()
            || trainer.model.predicate_dim() != self.featurizer.predicate_dim()
        {
            return Err(CheckpointError::VocabMismatch("MSCN set-element widths differ".into()));
        }
        // Adopt only what describes the loaded weights: the served target
        // (capabilities must match the checkpoint) and the architecture
        // width a re-fit would rebuild.  Training hyper-parameters (epochs,
        // learning rate, splits, patience, seed) stay the caller's — same
        // policy as `CostEstimator::load_checkpoint`, which keeps its
        // `TrainConfig` and restores only the model configuration.
        self.config.predict_cost = trainer.model.config.predict_cost;
        self.config.hidden_dim = trainer.model.config.hidden_dim;
        self.trainer = Some(trainer);
        Ok(())
    }

    /// Continue an interrupted training run (after
    /// [`MscnEstimator::resume_from_checkpoint`]) until `config.epochs`
    /// total epochs are done — bit-identical to an uninterrupted fit given
    /// the same plans and hyper-parameters.  Unlike [`MscnEstimator::fit`],
    /// nothing is re-initialized.
    ///
    /// # Panics
    /// Panics if there is nothing to resume: no trainer, or a trainer
    /// without resumable training state (a model-only v1 load) — restarting
    /// from epoch 0 would masquerade as a continuation.
    pub fn fit_resumed(&mut self, plans: &[PlanNode]) -> Vec<EpochStats> {
        let sets: Vec<QuerySets> = plans.iter().map(|p| self.featurizer.featurize(p)).collect();
        let trainer = self.trainer.as_mut().expect("MscnEstimator::fit_resumed called with nothing to resume");
        assert!(
            trainer.is_resumable(),
            "MscnEstimator::fit_resumed called with nothing to resume: \
             the checkpoint carried no resumable training state"
        );
        // The caller's epoch budget is the resumed target; every other
        // hyper-parameter comes from the checkpoint and must match the
        // interrupted run for bit-identical continuation.
        trainer.model.config.epochs = self.config.epochs;
        trainer.train(&sets)
    }

    fn fitted(&self) -> &MscnTrainer {
        self.trainer.as_ref().expect("MscnEstimator used before fit")
    }

    fn wrap(&self, value: f64) -> PlanEstimate {
        if self.config.predict_cost {
            PlanEstimate { cost: Some(value), cardinality: None }
        } else {
            PlanEstimate { cost: None, cardinality: Some(value) }
        }
    }
}

impl Estimator for MscnEstimator {
    fn backend_name(&self) -> &str {
        "mscn"
    }

    fn capabilities(&self) -> EstimatorCapabilities {
        EstimatorCapabilities {
            cost: self.config.predict_cost,
            cardinality: !self.config.predict_cost,
            checkpointable: true,
        }
    }

    fn estimate_one(&self, plan: &PlanNode) -> PlanEstimate {
        self.wrap(self.fitted().estimate(&self.featurizer.featurize(plan)))
    }

    fn estimate_many(&self, plans: &[PlanNode]) -> Vec<PlanEstimate> {
        let sets: Vec<QuerySets> = plans.iter().map(|p| self.featurizer.featurize(p)).collect();
        self.fitted().estimate_batch(&sets).into_iter().map(|v| self.wrap(v)).collect()
    }

    fn save_checkpoint_to(&self, path: &Path) -> Result<(), CheckpointError> {
        use std::io::Write as _;
        let trainer = self.trainer.as_ref().ok_or(CheckpointError::Unsupported("save_checkpoint called before fit"))?;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        trainer.save_checkpoint_to(&mut w)?;
        // Trailing section: the featurizer's vocabulary, so a load can
        // verify feature positions exactly like the tree estimator does.
        vocab_ckpt::write_vocab(&mut w, self.featurizer.config(), self.featurizer.use_sample_bitmap)?;
        Ok(w.flush()?)
    }

    fn load_checkpoint_from(&mut self, path: &Path) -> Result<(), CheckpointError> {
        self.load_impl(path, false)
    }
}

impl TrainableEstimator for MscnEstimator {
    fn fit_plans(&mut self, plans: &[PlanNode]) -> Vec<EpochStats> {
        self.fit(plans)
    }

    fn is_fitted(&self) -> bool {
        self.trainer.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use imdb::{generate_imdb, GeneratorConfig};
    use nn::checkpoint as ckpt;
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, Predicate};

    fn setup(predict_cost: bool) -> (MscnEstimator, Vec<PlanNode>) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let enc = EncodingConfig::from_database(&db, 8, 32);
        let config = MscnConfig { epochs: 3, hidden_dim: 16, predict_cost, ..Default::default() };
        let est = MscnEstimator::new(db.clone(), enc, config);
        let cost = CostModel::default();
        let plans: Vec<PlanNode> = (0..24)
            .map(|i| {
                let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom(
                        "title",
                        "production_year",
                        CompareOp::Gt,
                        Operand::Num((1935 + i * 2) as f64),
                    )),
                });
                let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let mut join = PlanNode::inner(
                    PhysicalOp::HashJoin {
                        condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                    },
                    vec![scan_t, scan_mc],
                );
                execute_plan(&db, &mut join, &cost);
                join
            })
            .collect();
        (est, plans)
    }

    #[test]
    fn trait_driven_fit_and_estimate_respects_capabilities() {
        let (mut est, plans) = setup(false);
        assert!(!TrainableEstimator::is_fitted(&est));
        let stats = est.fit_plans(&plans);
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.train_loss.is_finite()));
        assert!(stats.iter().all(|s| s.validation_card_qerror_mean.is_finite()));
        assert!(stats.iter().all(|s| s.validation_cost_qerror_mean.is_nan()));
        assert!(stats.iter().all(|s| s.wall_time_secs > 0.0));

        let caps = est.capabilities();
        assert!(caps.cardinality && !caps.cost && caps.checkpointable);
        let one = est.estimate_one(&plans[0]);
        assert!(one.cost.is_none());
        assert!(one.cardinality.expect("card slot").is_finite());
        let many = est.estimate_many(&plans);
        assert_eq!(many.len(), plans.len());
    }

    mod resume_property {
        //! Satellite guard (MSCN half): `fit` for N epochs bit-identical to
        //! `fit` for k → checkpoint → `resume_from_checkpoint` →
        //! `fit_resumed` for N−k.  Distinct (N, k) combos verified once.

        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;
        use std::sync::{Mutex, OnceLock};

        fn verified() -> &'static Mutex<HashSet<(usize, usize)>> {
            static MEMO: OnceLock<Mutex<HashSet<(usize, usize)>>> = OnceLock::new();
            MEMO.get_or_init(|| Mutex::new(HashSet::new()))
        }

        fn setup_with_epochs(epochs: usize) -> (MscnEstimator, Vec<PlanNode>) {
            let (mut est, plans) = setup(false);
            est.config.epochs = epochs;
            (est, plans)
        }

        fn verify_combo(n: usize, k: usize) {
            let (mut uninterrupted, plans) = setup_with_epochs(n);
            let full_stats = uninterrupted.fit_plans(&plans);
            let bits = |est: &MscnEstimator| -> Vec<u64> {
                est.estimate_many(&plans).iter().map(|e| e.cardinality.expect("card").to_bits()).collect()
            };
            let want = bits(&uninterrupted);

            let (mut interrupted, _) = setup_with_epochs(k);
            interrupted.fit_plans(&plans);
            let path = std::env::temp_dir().join(format!("e2e-mscn-resume-{}-{n}-{k}.ckpt", std::process::id()));
            Estimator::save_checkpoint_to(&interrupted, &path).expect("save mid-training checkpoint");
            drop(interrupted);

            let (mut resumed, _) = setup_with_epochs(n);
            resumed.resume_from_checkpoint(&path).expect("resume");
            let _ = std::fs::remove_file(&path);
            let tail_stats = resumed.fit_resumed(&plans);
            assert_eq!(tail_stats.len(), full_stats.len() - k);
            for (tail, full) in tail_stats.iter().zip(&full_stats[k..]) {
                assert_eq!(tail.epoch, full.epoch);
                assert_eq!(
                    tail.train_loss.to_bits(),
                    full.train_loss.to_bits(),
                    "MSCN epoch {} loss diverged after resume (N={n}, k={k})",
                    full.epoch
                );
            }
            assert_eq!(bits(&resumed), want, "resumed MSCN training must be bit-identical (N={n}, k={k})");
        }

        proptest! {
            #[test]
            fn resumed_mscn_training_is_bit_identical(n in 2usize..5, k_sel in 0usize..8) {
                let k = 1 + k_sel % (n - 1);
                if verified().lock().expect("memo").insert((n, k)) {
                    verify_combo(n, k);
                }
            }
        }
    }

    #[test]
    fn model_only_and_stateless_checkpoints_refuse_to_resume() {
        let (mut est, plans) = setup(false);
        est.fit_plans(&plans);
        let path = std::env::temp_dir().join(format!("e2e-mscn-noresume-{}.ckpt", std::process::id()));
        Estimator::save_checkpoint_to(&est, &path).expect("save");
        // A loaded checkpoint keeps its training state, so resume works...
        let (mut resumable, _) = setup(false);
        resumable.resume_from_checkpoint(&path).expect("v2 with state resumes");
        // ...but the estimates of a failed resume target stay untouched.
        let (mut other, _) = setup(false);
        other.fit_plans(&plans);
        let before: Vec<_> = other.estimate_many(&plans);
        assert!(matches!(other.resume_from_checkpoint(&path.with_extension("missing")), Err(CheckpointError::Io(_))));
        assert_eq!(other.estimate_many(&plans), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_roundtrip_bit_identical_and_vocab_checked() {
        let (mut est, plans) = setup(true);
        est.fit_plans(&plans);
        let before: Vec<u64> = est.estimate_many(&plans).iter().map(|e| e.cost.expect("cost slot").to_bits()).collect();
        let path = std::env::temp_dir().join(format!("e2e-mscn-test-{}.ckpt", std::process::id()));
        est.save_checkpoint_to(&path).expect("save");

        // Fresh-context reload.
        let (mut warm, _) = setup(true);
        assert!(!TrainableEstimator::is_fitted(&warm));
        warm.load_checkpoint_from(&path).expect("load");
        let after: Vec<u64> = warm.estimate_many(&plans).iter().map(|e| e.cost.expect("cost slot").to_bits()).collect();
        assert_eq!(before, after, "reloaded MSCN checkpoint must serve bit-identical estimates");

        // A featurizer with a different sample width must refuse the file.
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let enc16 = EncodingConfig::from_database(&db, 8, 16);
        let mut other = MscnEstimator::new(db, enc16, MscnConfig { predict_cost: true, ..Default::default() });
        assert!(matches!(other.load_checkpoint_from(&path), Err(CheckpointError::VocabMismatch(_))));
        // Feeding an MSCN checkpoint to the tree loader is a typed error in
        // the other direction too: wrong kind byte.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[12] = ckpt::KIND_TREE_ESTIMATOR;
        std::fs::write(&path, &bytes).expect("write");
        let (mut wrong, _) = setup(true);
        assert!(matches!(wrong.load_checkpoint_from(&path), Err(CheckpointError::WrongKind { .. })));
        let _ = std::fs::remove_file(&path);
    }
}
