//! MSCN baseline (Kipf et al., "Learned cardinalities", CIDR 2019) — the
//! learned baseline the paper compares against (`MSCNCard` / `MSCNCost`).
//!
//! MSCN is a *multi-set convolutional network*: a query is represented as
//! three sets — table samples, joins and predicates — each element is run
//! through a small MLP, each set is average-pooled, the pooled vectors are
//! concatenated and a final MLP predicts the (normalized) cardinality or
//! cost.  Unlike the tree model it sees the query, not the plan tree, which
//! is exactly the structural limitation the paper's model removes.

pub mod estimator;
pub mod featurize_query;
pub mod model;

pub use estimator::MscnEstimator;
pub use featurize_query::{MscnFeaturizer, QuerySets};
pub use model::{MscnConfig, MscnModel, MscnTrainer};
