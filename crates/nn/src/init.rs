//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: samples from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (rows as f32 + cols as f32)).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Small uniform initialization in `[-scale, scale]` (used for embedding tables).
pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|x| x.abs() <= bound + 1e-6));
        assert_eq!(m.rows(), 10);
        assert_eq!(m.cols(), 20);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = uniform(5, 5, 0.1, &mut rng);
        assert!(m.data().iter().all(|x| x.abs() <= 0.1 + 1e-6));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(xavier_uniform(4, 4, &mut a), xavier_uniform(4, 4, &mut b));
    }
}
