//! First-order optimizers over a [`ParamStore`].

use crate::params::ParamStore;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update step using the gradients currently accumulated in the
    /// store.  Does not zero the gradients.
    fn step(&mut self, store: &mut ParamStore);
}

/// Plain stochastic gradient descent with an optional gradient clip.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub learning_rate: f32,
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// Create an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd { learning_rate, clip_norm: None }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if let Some(max) = self.clip_norm {
            let norm = store.grad_norm();
            if norm > max && norm > 0.0 {
                store.scale_grads(max / norm);
            }
        }
        let lr = self.learning_rate;
        for p in store.params_mut() {
            for (v, g) in p.value.data_mut().iter_mut().zip(p.grad.data().iter()) {
                *v -= lr * g;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba), the optimizer used by the paper's training
/// setup (learning rate 0.001).
#[derive(Debug, Clone)]
pub struct Adam {
    pub learning_rate: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub clip_norm: Option<f32>,
    t: u64,
}

impl Adam {
    /// Create an Adam optimizer with default betas (0.9, 0.999).
    pub fn new(learning_rate: f32) -> Self {
        Adam { learning_rate, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: Some(5.0), t: 0 }
    }

    /// Number of update steps taken so far (the bias-correction counter).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Restore the bias-correction counter of a checkpointed optimizer; the
    /// per-parameter moment estimates live in the `ParamStore` and are
    /// restored by [`crate::ParamStore::load_moments_from`].
    pub fn set_step_count(&mut self, t: u64) {
        self.t = t;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if let Some(max) = self.clip_norm {
            let norm = store.grad_norm();
            if norm > max && norm > 0.0 {
                store.scale_grads(max / norm);
            }
        }
        self.t += 1;
        let t = self.t as f32;
        let lr = self.learning_rate * (1.0 - self.beta2.powf(t)).sqrt() / (1.0 - self.beta1.powf(t));
        for p in store.params_mut() {
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            let grad = p.grad.data();
            for ((val, (mi, vi)), &g) in
                p.value.data_mut().iter_mut().zip(m.iter_mut().zip(v.iter_mut())).zip(grad.iter())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                *val -= lr * *mi / (vi.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::matrix::Matrix;

    /// Minimize f(w) = (w - 3)^2 with both optimizers.
    fn minimize(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..iters {
            store.zero_grad();
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let val = g.value(wp).data()[0];
            g.backward(wp, Matrix::from_vec(1, 1, vec![2.0 * (val - 3.0)]), &mut store);
            opt.step(&mut store);
        }
        store.value(w).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = minimize(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = minimize(&mut opt, 500);
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }

    #[test]
    fn gradient_clipping_limits_step() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        store.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![1000.0]));
        let mut opt = Sgd { learning_rate: 1.0, clip_norm: Some(1.0) };
        opt.step(&mut store);
        assert!((store.value(w).data()[0] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with gradient g, Adam moves by ~lr * sign(g).
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        store.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![0.5]));
        let mut opt = Adam::new(0.1);
        opt.clip_norm = None;
        opt.step(&mut store);
        let v = store.value(w).data()[0];
        assert!(v < 0.0 && v > -0.2, "unexpected first adam step {v}");
    }
}
