//! Runtime-dispatched SIMD microkernels for the matrix hot paths.
//!
//! The blocked matmul kernels in [`crate::matrix`] were written as 8-wide
//! unrolled scalar loops the compiler auto-vectorizes under the workspace's
//! `target-cpu=x86-64-v3` build flag.  This module makes the vectorization
//! explicit and *runtime-dispatched*: [`active_path`] probes the host once
//! (`is_x86_feature_detected!("avx2")`) and every kernel routes to either an
//! explicit AVX2 implementation or the portable scalar fallback.  Setting
//! `E2E_FORCE_SCALAR=1` (before the first kernel call) pins the scalar path,
//! which is how CI's forced-scalar lane runs the whole kernel/quant test
//! suite without SIMD.
//!
//! # Numerical contracts (per kernel family)
//!
//! Three families with three distinct cross-path contracts (spelled out in
//! `docs/perf.md`, "f32 kernel contract"):
//!
//! * **f32 FMA GEMM tier** ([`gemm_f32`], [`gemm_f32_nt`], [`gemm_f32_tn`],
//!   [`lstm_gate_sweep`]) — the batched-inference hot path.  The AVX2
//!   implementations use `_mm256_fmadd_ps`, which contracts the
//!   multiply-add rounding step, so AVX2 and scalar results differ in
//!   low-order bits.  The contract is a **tolerance oracle plus per-path
//!   determinism**: each dispatch path is run-to-run deterministic and
//!   agrees with `Matrix::matmul_naive` to a relative error ≤ 1e-5, and —
//!   load-bearing for subtree memoization — every output element is a
//!   strict sequential `mul_add` fold over ascending `k`, independent of
//!   batch width, column position and tile/lane boundaries.  (On the AVX2
//!   path [`gemm_f32`] is in fact *bit-equal* to the naive `f32::mul_add`
//!   triple loop; the tolerance is only vs. the non-FMA naive oracle.)
//! * **Legacy f32 kernels** ([`axpy`], [`dot`]) — still used by the scalar
//!   GEMM fallback and the training backward path.  These deliberately use
//!   separate multiply + add intrinsics (never fmadd) and mirror the scalar
//!   8-wide unroll's accumulator layout, so both dispatch paths stay
//!   **bit-identical**, which keeps the forced-scalar CI lane's estimates
//!   on the recorded golden-checkpoint bits.
//! * **int8 kernels** — accumulate in `i32`; integer addition is
//!   associative, so the two paths agree exactly by construction.  The
//!   quantized tier's activation sweep ([`lstm_gate_sweep_fast`]) keeps to
//!   plain multiply/add arithmetic (no FMA) for the same reason: its AVX2
//!   vectorization reproduces the scalar roundings bit-for-bit.
//!
//! The property tests at the bottom pin each family's contract on remainder
//! shapes (lengths not divisible by the vector width, empty slices), and
//! `matrix::prop_tests` pins the full matmul kernels against the naive
//! oracle under both dispatch paths.

use std::cell::RefCell;

use std::sync::OnceLock;

/// Which kernel implementation [`active_path`] selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPath {
    /// Explicit AVX2 kernels (x86-64 with AVX2 detected at runtime).
    Avx2,
    /// Portable unrolled scalar kernels.
    Scalar,
}

impl DispatchPath {
    /// Stable lowercase name for logs and bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPath::Avx2 => "avx2",
            DispatchPath::Scalar => "scalar",
        }
    }
}

static ACTIVE: OnceLock<DispatchPath> = OnceLock::new();

/// The dispatch path every kernel in this module routes through, decided
/// once per process: scalar when `E2E_FORCE_SCALAR` is set non-empty (and
/// not `"0"`), otherwise AVX2 when the host supports it.
#[inline]
pub fn active_path() -> DispatchPath {
    *ACTIVE.get_or_init(|| {
        let forced = matches!(std::env::var("E2E_FORCE_SCALAR").as_deref(), Ok(v) if !v.is_empty() && v != "0");
        if !forced && avx2_available() {
            DispatchPath::Avx2
        } else {
            DispatchPath::Scalar
        }
    })
}

/// Name of the active dispatch path (`"avx2"` / `"scalar"`), for the bench
/// harnesses' host-capability metadata.
pub fn path_name() -> &'static str {
    active_path().name()
}

/// Active dispatch tier of the **f32 kernel family** (`"avx2+fma"` /
/// `"scalar"`) — the f32 GEMM tier emits fused multiply-adds, which is worth
/// surfacing separately from the int8 tier in bench metadata.
pub fn f32_path_name() -> &'static str {
    match active_path() {
        DispatchPath::Avx2 => "avx2+fma",
        DispatchPath::Scalar => "scalar",
    }
}

/// Active dispatch tier of the **int8 kernel family** (`"avx2"` /
/// `"scalar"`).  The int8 kernels never emit FMA (their contract is exact
/// cross-path bit-identity), so their tier name is the plain path name.
pub fn i8_path_name() -> &'static str {
    active_path().name()
}

/// True when the AVX2 kernels can run on this host (independent of the
/// `E2E_FORCE_SCALAR` override).  Requires FMA as well as AVX2: every AVX2
/// kernel here is compiled with `target_feature(enable = "avx2,fma")` and
/// the f32 GEMM tier emits `vfmadd` instructions.  (No shipping x86-64 CPU
/// has AVX2 without FMA, but the dispatch guard states the real
/// precondition.)
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// f32 axpy: out += a * b
// ---------------------------------------------------------------------------

/// `out[i] += a * b[i]` over equal-length slices — the inner loop of the
/// blocked matmul and of `matmul_tn`.
#[inline]
pub fn axpy(a: f32, b: &[f32], out: &mut [f32]) {
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { axpy_avx2_impl(a, b, out) },
        _ => axpy_scalar(a, b, out),
    }
}

/// 8-wide unrolled scalar `out += a * b` (the auto-vectorizing form the
/// blocked matmul shipped with; kept verbatim as the fallback and oracle).
#[inline]
pub fn axpy_scalar(a: f32, b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(b.len(), out.len());
    let split = out.len() - out.len() % 8;
    let (b_main, b_tail) = b.split_at(split);
    let (o_main, o_tail) = out.split_at_mut(split);
    for (o, v) in o_main.chunks_exact_mut(8).zip(b_main.chunks_exact(8)) {
        o[0] += a * v[0];
        o[1] += a * v[1];
        o[2] += a * v[2];
        o[3] += a * v[3];
        o[4] += a * v[4];
        o[5] += a * v[5];
        o[6] += a * v[6];
        o[7] += a * v[7];
    }
    for (o, &v) in o_tail.iter_mut().zip(b_tail.iter()) {
        *o += a * v;
    }
}

/// Explicit-AVX2 `out += a * b`.
///
/// # Panics
/// Panics when AVX2 is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn axpy_avx2(a: f32, b: &[f32], out: &mut [f32]) {
    assert!(avx2_available(), "axpy_avx2 called without AVX2 support");
    unsafe { axpy_avx2_impl(a, b, out) }
}

/// # Safety
/// Requires AVX2 (and FMA feature availability; no FMA instruction is
/// emitted — see the module-level bit-compatibility contract).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2_impl(a: f32, b: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(b.len(), out.len());
    let n = out.len();
    let split = n - n % 8;
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    while i < split {
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        let vo = _mm256_loadu_ps(out.as_ptr().add(i));
        // mul + add, NOT fmadd: bit-identical to the scalar path.
        let prod = _mm256_mul_ps(va, vb);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(vo, prod));
        i += 8;
    }
    for (o, &v) in out[split..].iter_mut().zip(b[split..].iter()) {
        *o += a * v;
    }
}

// ---------------------------------------------------------------------------
// f32 dot product
// ---------------------------------------------------------------------------

/// Dot product of equal-length slices — the inner loop of `matmul_nt`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { dot_avx2_impl(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// 8-accumulator unrolled scalar dot product (the original kernel).  The
/// reduction order — remainder tail summed first, then the eight lane
/// accumulators in index order — is part of the bit-compatibility contract.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % 8;
    let mut acc = [0.0f32; 8];
    for (x, y) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
        acc[4] += x[4] * y[4];
        acc[5] += x[5] * y[5];
        acc[6] += x[6] * y[6];
        acc[7] += x[7] * y[7];
    }
    let mut sum: f32 = a[split..].iter().zip(b[split..].iter()).map(|(x, y)| x * y).sum();
    for v in acc {
        sum += v;
    }
    sum
}

/// Explicit-AVX2 dot product.
///
/// # Panics
/// Panics when AVX2 is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    assert!(avx2_available(), "dot_avx2 called without AVX2 support");
    unsafe { dot_avx2_impl(a, b) }
}

/// # Safety
/// Requires AVX2.  One 8-lane vector accumulator mirrors the scalar path's
/// eight independent accumulators; the horizontal reduction extracts the
/// lanes and adds them in the same order the scalar path does.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let split = n - n % 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < split {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        // mul + add, NOT fmadd: bit-identical to the scalar path.
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut sum: f32 = a[split..].iter().zip(b[split..].iter()).map(|(x, y)| x * y).sum();
    for v in lanes {
        sum += v;
    }
    sum
}

// ---------------------------------------------------------------------------
// f32 FMA GEMM tier (the batched-inference matmul kernels)
// ---------------------------------------------------------------------------

/// Depth (K) extent of one packed tile in the scalar GEMM fallback.
const KC: usize = 64;
/// Width (N) extent of one packed tile in the scalar GEMM fallback;
/// `KC * NC * 4` bytes = 16 KiB, half a typical L1d.
const NC: usize = 64;

/// Panel width of the AVX2 packed-B layout: one `f32x8` vector.
pub const GEMM_NR: usize = 8;
/// Row-block height of the AVX2 microkernel: eight `ymm` accumulators.
const GEMM_MR: usize = 8;

thread_local! {
    /// Per-thread packed-B buffer for [`gemm_f32`]'s AVX2 path, so steady-state
    /// inference never allocates per matmul call.  Grows to the largest
    /// `k * n_pad` seen on this thread and stays there.
    static GEMM_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Pack a row-major `k x n` matrix into 8-wide column panels: panel `p`
/// covers columns `[8p, 8p + 8)` and occupies `k * 8` consecutive floats,
/// row `kk`'s eight column values at offset `p * k * 8 + kk * 8`.  The last
/// panel's missing columns are **zero-padded**, which is what lets the
/// microkernel run full-width FMAs at every column remainder (padded lanes
/// compute garbage that is never stored).  Returns `n` rounded up to the
/// panel width.  Exposed (rather than private to the AVX2 path) so
/// `examples/profile_matmul.rs` can time the pack phase apart from the
/// microkernel.
pub fn pack_b_f32(b: &[f32], k: usize, n: usize, pack: &mut Vec<f32>) -> usize {
    debug_assert_eq!(b.len(), k * n);
    let n_pad = n.next_multiple_of(GEMM_NR);
    if pack.len() < k * n_pad {
        pack.resize(k * n_pad, 0.0);
    }
    let full_panels = n / GEMM_NR;
    for p in 0..full_panels {
        let dst = &mut pack[p * k * GEMM_NR..(p + 1) * k * GEMM_NR];
        for kk in 0..k {
            let src = &b[kk * n + p * GEMM_NR..kk * n + p * GEMM_NR + GEMM_NR];
            dst[kk * GEMM_NR..kk * GEMM_NR + GEMM_NR].copy_from_slice(src);
        }
    }
    if full_panels * GEMM_NR < n {
        let p = full_panels;
        let nc = n - p * GEMM_NR;
        let dst = &mut pack[p * k * GEMM_NR..(p + 1) * k * GEMM_NR];
        for kk in 0..k {
            let row = &mut dst[kk * GEMM_NR..kk * GEMM_NR + GEMM_NR];
            row[..nc].copy_from_slice(&b[kk * n + p * GEMM_NR..kk * n + p * GEMM_NR + nc]);
            row[nc..].fill(0.0);
        }
    }
    n_pad
}

/// Row-major GEMM `out = a * b` (`a` is `m x k`, `b` is `k x n`), the kernel
/// behind [`crate::matrix::Matrix::matmul_into`].  `out` is overwritten.
///
/// Dispatch: the AVX2 path packs `b` into 8-wide panels ([`pack_b_f32`]) and
/// runs an 8x8 register-blocked `vfmadd` microkernel; the scalar path is the
/// cache-blocked axpy kernel the matmul shipped with (byte-for-byte the old
/// arithmetic, so forced-scalar estimates stay on the recorded golden bits).
///
/// Numerical contract (see the module doc): on the AVX2 path every output
/// element is the strict sequential fold `acc = fma(a[i][kk], b[kk][j], acc)`
/// over ascending `kk` — each element a pure function of its own row/column,
/// independent of `m`, `n`, lane position and row-block boundaries, which is
/// what keeps subtree memoization and wave splitting bit-stable under
/// changing batch composition.
pub fn gemm_f32(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => gemm_f32_avx2(a, m, k, b, n, out),
        _ => gemm_f32_scalar(a, m, k, b, n, out),
    }
}

/// Scalar fallback for [`gemm_f32`]: the cache-blocked kernel `Matrix::matmul`
/// shipped with (tiles of `b` packed into a 16 KiB stack buffer, 8-wide
/// unrolled axpy inner loop, zero-coefficient rows skipped).  Kept verbatim —
/// the forced-scalar CI lane's golden-checkpoint bits depend on it.
pub fn gemm_f32_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.iter_mut().for_each(|x| *x = 0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    if k <= KC && n <= NC {
        // Single-tile case: `b` already fits in L1, so packing would only
        // add a copy.  The estimator's per-level matrices almost always
        // land here.
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &coef) in a_row.iter().enumerate() {
                if coef == 0.0 {
                    continue;
                }
                axpy_scalar(coef, &b[kk * n..(kk + 1) * n], out_row);
            }
        }
        return;
    }
    let mut pack = [0.0f32; KC * NC];
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        for nb in (0..n).step_by(NC) {
            let nc = NC.min(n - nb);
            // Pack b[kb..kb+kc, nb..nb+nc] row-major into `pack`.
            for kk in 0..kc {
                let src = &b[(kb + kk) * n + nb..(kb + kk) * n + nb + nc];
                pack[kk * nc..kk * nc + nc].copy_from_slice(src);
            }
            for i in 0..m {
                let a_row = &a[i * k + kb..i * k + kb + kc];
                let out_row = &mut out[i * n + nb..i * n + nb + nc];
                for (kk, &coef) in a_row.iter().enumerate() {
                    // One-hot feature vectors make zero coefficients
                    // common; skipping them skips whole axpy rows.
                    if coef == 0.0 {
                        continue;
                    }
                    axpy_scalar(coef, &pack[kk * nc..kk * nc + nc], out_row);
                }
            }
        }
    }
}

/// Explicit AVX2+FMA GEMM (8x8 register-blocked over packed-B panels).
///
/// # Panics
/// Panics when AVX2+FMA is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn gemm_f32_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert!(avx2_available(), "gemm_f32_avx2 called without AVX2+FMA support");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    GEMM_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        pack_b_f32(b, k, n, &mut pack);
        unsafe { gemm_f32_packed_avx2_impl(a, m, k, &pack, n, out) }
    });
}

/// Store the low `nc` lanes of `v` at `out[off..off + nc]`.
///
/// # Safety
/// Requires AVX2; `off + nc <= out.len()` and `nc <= 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn store_f32_lanes(out: &mut [f32], off: usize, v: std::arch::x86_64::__m256, nc: usize) {
    use std::arch::x86_64::*;
    if nc == GEMM_NR {
        _mm256_storeu_ps(out.as_mut_ptr().add(off), v);
    } else {
        let mut tmp = [0f32; GEMM_NR];
        _mm256_storeu_ps(tmp.as_mut_ptr(), v);
        out[off..off + nc].copy_from_slice(&tmp[..nc]);
    }
}

/// The 8x8 microkernel sweep over pre-packed panels: for each 8-column
/// panel, eight rows of `a` are reduced together, one `ymm` accumulator per
/// row, broadcasting `a[i][kk]` against the panel's row vector and fusing
/// with `vfmadd231ps`.  Accumulators live across the whole `k` extent (no
/// tiling in `k` — the estimator's depths are a few hundred at most, and an
/// un-tiled fold is what makes every element a strict sequential fma chain).
///
/// # Safety
/// Requires AVX2+FMA.  `pack` must hold `k * n.next_multiple_of(8)` floats
/// in [`pack_b_f32`] layout; `a` is `m x k`, `out` is `m x n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_f32_packed_avx2_impl(a: &[f32], m: usize, k: usize, pack: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut jb = 0;
    while jb < n {
        let panel = pack.as_ptr().add((jb / GEMM_NR) * k * GEMM_NR);
        let nc = GEMM_NR.min(n - jb);
        let mut i = 0;
        while i + GEMM_MR <= m {
            let mut acc = [_mm256_setzero_ps(); GEMM_MR];
            for kk in 0..k {
                let vb = _mm256_loadu_ps(panel.add(kk * GEMM_NR));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let va = _mm256_set1_ps(*a.get_unchecked((i + r) * k + kk));
                    *accr = _mm256_fmadd_ps(va, vb, *accr);
                }
            }
            for (r, &accr) in acc.iter().enumerate() {
                store_f32_lanes(out, (i + r) * n + jb, accr, nc);
            }
            i += GEMM_MR;
        }
        // Remainder rows: same fold, one accumulator at a time.
        while i < m {
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let vb = _mm256_loadu_ps(panel.add(kk * GEMM_NR));
                let va = _mm256_set1_ps(*a.get_unchecked(i * k + kk));
                acc = _mm256_fmadd_ps(va, vb, acc);
            }
            store_f32_lanes(out, i * n + jb, acc, nc);
            i += 1;
        }
        jb += GEMM_NR;
    }
}

/// Row-major `out = a * bᵀ` without materializing the transpose (`a` is
/// `m x k`, `b` is `n x k`): rows of `a` dot rows of `b`.  The kernel behind
/// `Matrix::matmul_nt_into` — the backward pass's `dA = dC · Bᵀ`.  `out` is
/// overwritten.  Same per-path contract as [`gemm_f32`]; the AVX2 path fuses
/// with `vfmadd` (one vector accumulator, remainder tail folded first via
/// `f32::mul_add`, then lanes summed in index order).
pub fn gemm_f32_nt(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { gemm_f32_nt_avx2_impl(a, m, k, b, n, out) },
        _ => gemm_f32_nt_scalar(a, m, k, b, n, out),
    }
}

/// Scalar fallback for [`gemm_f32_nt`]: the original per-element
/// [`dot_scalar`] kernel, byte-for-byte.
pub fn gemm_f32_nt_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot_scalar(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// # Safety
/// Requires AVX2+FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_f32_nt_avx2_impl(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let split = k - k % 8;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = _mm256_setzero_ps();
            let mut kk = 0;
            while kk < split {
                let va = _mm256_loadu_ps(a_row.as_ptr().add(kk));
                let vb = _mm256_loadu_ps(b_row.as_ptr().add(kk));
                acc = _mm256_fmadd_ps(va, vb, acc);
                kk += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            let mut sum = a_row[split..].iter().zip(b_row[split..].iter()).fold(0.0f32, |s, (&x, &y)| x.mul_add(y, s));
            for v in lanes {
                sum += v;
            }
            *o = sum;
        }
    }
}

/// Row-major `out = aᵀ * other` without materializing the transpose (`a` is
/// `rows x k_out`, `other` is `rows x n`, `out` is `k_out x n`), via axpy
/// over rows of both operands.  The kernel behind `Matrix::matmul_tn_into` —
/// the backward pass's `dB = Aᵀ · dC`.  `out` is overwritten.  Both paths
/// skip zero coefficients (one-hot feature rows); on the AVX2 path that skip
/// is bit-neutral because `fma(0, y, acc) == acc` for every finite `y`.
pub fn gemm_f32_tn(a: &[f32], rows: usize, k_out: usize, other: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), rows * k_out);
    debug_assert_eq!(other.len(), rows * n);
    debug_assert_eq!(out.len(), k_out * n);
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { gemm_f32_tn_avx2_impl(a, rows, k_out, other, n, out) },
        _ => gemm_f32_tn_scalar(a, rows, k_out, other, n, out),
    }
}

/// Scalar fallback for [`gemm_f32_tn`]: the original [`axpy_scalar`] kernel,
/// byte-for-byte.
pub fn gemm_f32_tn_scalar(a: &[f32], rows: usize, k_out: usize, other: &[f32], n: usize, out: &mut [f32]) {
    out.iter_mut().for_each(|x| *x = 0.0);
    for r in 0..rows {
        let o_row = &other[r * n..(r + 1) * n];
        let a_row = &a[r * k_out..(r + 1) * k_out];
        for (i, &coef) in a_row.iter().enumerate() {
            if coef == 0.0 {
                continue;
            }
            axpy_scalar(coef, o_row, &mut out[i * n..(i + 1) * n]);
        }
    }
}

/// # Safety
/// Requires AVX2+FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_f32_tn_avx2_impl(a: &[f32], rows: usize, k_out: usize, other: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    out.iter_mut().for_each(|x| *x = 0.0);
    let split = n - n % 8;
    for r in 0..rows {
        let o_row = &other[r * n..(r + 1) * n];
        let a_row = &a[r * k_out..(r + 1) * k_out];
        for (i, &coef) in a_row.iter().enumerate() {
            if coef == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            let va = _mm256_set1_ps(coef);
            let mut j = 0;
            while j < split {
                let vb = _mm256_loadu_ps(o_row.as_ptr().add(j));
                let vo = _mm256_loadu_ps(out_row.as_ptr().add(j));
                _mm256_storeu_ps(out_row.as_mut_ptr().add(j), _mm256_fmadd_ps(va, vb, vo));
                j += 8;
            }
            for (o, &v) in out_row[split..].iter_mut().zip(o_row[split..].iter()) {
                *o = coef.mul_add(v, *o);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// int8 dot product (i8 x i8 -> i32)
// ---------------------------------------------------------------------------

/// Integer dot product of equal-length `i8` slices, accumulated in `i32` —
/// the inner kernel of the quantized matmul ([`crate::quant`]).  Exact (no
/// rounding), so both dispatch paths agree bit-for-bit by construction.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { dot_i8_avx2_impl(a, b) },
        _ => dot_i8_scalar(a, b),
    }
}

/// Scalar int8 dot product.
#[inline]
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        sum += x as i32 * y as i32;
    }
    sum
}

/// Explicit-AVX2 int8 dot product.
///
/// # Panics
/// Panics when AVX2 is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    assert!(avx2_available(), "dot_i8_avx2 called without AVX2 support");
    unsafe { dot_i8_avx2_impl(a, b) }
}

/// # Safety
/// Requires AVX2.  32 products per iteration: each 128-bit half of the i8
/// vectors is sign-extended to i16 and `_mm256_madd_epi16` folds adjacent
/// i16 products into i32 lanes.  With |q| <= 127 a pair sum is at most
/// 2 * 127^2, far inside i16-product/i32-lane range, so no saturation can
/// occur.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2_impl(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let split = n - n % 32;
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i < split {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
        let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
        let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
        let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
        i += 32;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: i32 = lanes.iter().sum();
    for (&x, &y) in a[split..].iter().zip(b[split..].iter()) {
        sum += x as i32 * y as i32;
    }
    sum
}

// ---------------------------------------------------------------------------
// Packed int8 pair-GEMM (the quantized matmul kernel)
// ---------------------------------------------------------------------------

/// Packed int8 GEMM over pair-interleaved operands — the kernel behind
/// [`crate::quant::QuantMatrix::matmul_into`].
///
/// Layouts (built by `quant::PackedActivations` / `QuantMatrix`):
///
/// * `packed_w`: `rows * pairs` i32 words; word `(i, p)` holds weight codes
///   `w[i][2p]` in its low i16 and `w[i][2p+1]` in its high i16 (zero pad
///   for odd depth).
/// * `xp`: `pairs * n_pad * 2` i16 activation codes, interleaved so that
///   `xp[(p * n_pad + j) * 2 + {0,1}]` are column `j`'s codes for depth
///   `2p` / `2p+1`; `n_pad` is `n` rounded up to a multiple of 8 (zero pad).
/// * `x_scales`: `n_pad` per-column dequantization scales (pad value `1.0`).
///
/// Each output is `acc as f32 * (w_scales[i] * x_scales[j])` where `acc` is
/// the exact i32 code dot product.  The AVX2 path keeps one i32 vector
/// accumulator per 8 output columns (`_mm256_madd_epi16` on a broadcast
/// weight pair — no per-output horizontal reduction), which is what makes
/// the int8 tier beat the f32 axpy kernel instead of losing to it; integer
/// accumulation is associative, so both dispatch paths agree bit-for-bit.
///
/// # Panics
/// Debug-asserts the slice lengths implied by the shape arguments.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_pairs(
    packed_w: &[i32],
    rows: usize,
    pairs: usize,
    xp: &[i16],
    n_pad: usize,
    w_scales: &[f32],
    x_scales: &[f32],
    out: &mut [f32],
    n: usize,
) {
    debug_assert_eq!(packed_w.len(), rows * pairs);
    debug_assert_eq!(xp.len(), pairs * n_pad * 2);
    debug_assert_eq!(w_scales.len(), rows);
    debug_assert_eq!(x_scales.len(), n_pad);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(n_pad >= n && n_pad.is_multiple_of(8));
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe {
            gemm_i8_pairs_avx2_impl(packed_w, rows, pairs, xp, n_pad, w_scales, x_scales, out, n)
        },
        _ => gemm_i8_pairs_scalar(packed_w, rows, pairs, xp, n_pad, w_scales, x_scales, out, n),
    }
}

/// Scalar reference for [`gemm_i8_pairs`]: identical i32 sums (exact), the
/// identical dequantization expression.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_pairs_scalar(
    packed_w: &[i32],
    rows: usize,
    pairs: usize,
    xp: &[i16],
    n_pad: usize,
    w_scales: &[f32],
    x_scales: &[f32],
    out: &mut [f32],
    n: usize,
) {
    for i in 0..rows {
        let wrow = &packed_w[i * pairs..(i + 1) * pairs];
        for j in 0..n {
            let mut acc = 0i32;
            for (p, &w) in wrow.iter().enumerate() {
                let (wlo, whi) = (w as i16 as i32, w >> 16);
                let base = (p * n_pad + j) * 2;
                acc += wlo * xp[base] as i32 + whi * xp[base + 1] as i32;
            }
            out[i * n + j] = acc as f32 * (w_scales[i] * x_scales[j]);
        }
    }
}

/// # Safety
/// Requires AVX2.  Eight output columns per i32 vector accumulator: each
/// weight pair is broadcast with `_mm256_set1_epi32` and `_mm256_madd_epi16`
/// folds it against eight interleaved activation pairs.  With codes in
/// [-127, 127] a pair sum is at most `2 * 127^2`, far inside i32-lane range.
/// The dequantization multiplies in the same order as the scalar path
/// (`w_scale * x_scale` first, then `acc * that`), so results are
/// bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_i8_pairs_avx2_impl(
    packed_w: &[i32],
    rows: usize,
    pairs: usize,
    xp: &[i16],
    n_pad: usize,
    w_scales: &[f32],
    x_scales: &[f32],
    out: &mut [f32],
    n: usize,
) {
    use std::arch::x86_64::*;
    let mut jb = 0;
    while jb < n {
        let full = jb + 8 <= n;
        for i in 0..rows {
            let wrow = packed_w.as_ptr().add(i * pairs);
            let mut acc = _mm256_setzero_si256();
            for p in 0..pairs {
                let vx = _mm256_loadu_si256(xp.as_ptr().add((p * n_pad + jb) * 2) as *const __m256i);
                let vw = _mm256_set1_epi32(*wrow.add(p));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(vw, vx));
            }
            let accf = _mm256_cvtepi32_ps(acc);
            let vs = _mm256_mul_ps(_mm256_set1_ps(w_scales[i]), _mm256_loadu_ps(x_scales.as_ptr().add(jb)));
            let vout = _mm256_mul_ps(accf, vs);
            if full {
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + jb), vout);
            } else {
                let mut tmp = [0f32; 8];
                _mm256_storeu_ps(tmp.as_mut_ptr(), vout);
                out[i * n + jb..i * n + n].copy_from_slice(&tmp[..n - jb]);
            }
        }
        jb += 8;
    }
}

/// Quantize a `depth x n` row-major f32 matrix into the pair-interleaved
/// i16 code layout of [`gemm_i8_pairs`]: code
/// `round_ties_even(v * inv[j]).clamp(-127, 127)`, stored at
/// `codes[(p * n_pad + j) * 2 + (k & 1)]` for depth row `k = 2p + (k & 1)`.
/// `codes` must come in zeroed (pad columns and the odd-depth half stay 0).
///
/// Dispatched like every kernel here; the AVX2 path uses `_mm256_round_ps`
/// to-nearest (ties to even, exactly `f32::round_ties_even`) and min/max
/// clamps, so both paths produce identical codes for all finite inputs.
pub fn quantize_interleave(xdata: &[f32], depth: usize, n: usize, n_pad: usize, inv: &[f32], codes: &mut [i16]) {
    debug_assert_eq!(xdata.len(), depth * n);
    debug_assert_eq!(inv.len(), n);
    debug_assert_eq!(codes.len(), depth.div_ceil(2) * n_pad * 2);
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { quantize_interleave_avx2_impl(xdata, depth, n, n_pad, inv, codes) },
        _ => quantize_interleave_scalar(xdata, depth, n, n_pad, inv, codes),
    }
}

/// Scalar reference for [`quantize_interleave`].
pub fn quantize_interleave_scalar(xdata: &[f32], depth: usize, n: usize, n_pad: usize, inv: &[f32], codes: &mut [i16]) {
    for k in 0..depth {
        let row = &xdata[k * n..(k + 1) * n];
        let base = (k / 2) * n_pad * 2 + (k & 1);
        for (j, &v) in row.iter().enumerate() {
            codes[base + j * 2] = (v * inv[j]).round_ties_even().clamp(-127.0, 127.0) as i16;
        }
    }
}

/// # Safety
/// Requires AVX2.  Two depth rows per sweep: each group of 8 columns is
/// multiplied, rounded (`_MM_FROUND_TO_NEAREST_INT` — ties to even, the
/// scalar path's `round_ties_even`), clamped and converted to i32; the two
/// rows' i32 code words are fused into interleaved i16 pairs with
/// mask/shift/or (the low half of each i32 *is* the i16 code) and stored as
/// one 256-bit word.  Column remainders fall back to the scalar formula,
/// which produces the same integers by construction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_interleave_avx2_impl(
    xdata: &[f32],
    depth: usize,
    n: usize,
    n_pad: usize,
    inv: &[f32],
    codes: &mut [i16],
) {
    use std::arch::x86_64::*;
    let lo_mask = _mm256_set1_epi32(0xFFFF);
    let vmin = _mm256_set1_ps(-127.0);
    let vmax = _mm256_set1_ps(127.0);
    let split = n - n % 8;
    let mut p = 0;
    while 2 * p < depth {
        let k = 2 * p;
        let row0 = xdata.as_ptr().add(k * n);
        let odd = k + 1 < depth;
        let mut j = 0;
        while j < split {
            let vi = _mm256_loadu_ps(inv.as_ptr().add(j));
            let quant = |row: *const f32| {
                let v = _mm256_mul_ps(_mm256_loadu_ps(row.add(j)), vi);
                let v = _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
                let v = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
                _mm256_cvtps_epi32(v)
            };
            let q0 = quant(row0);
            let q1 = if odd { quant(xdata.as_ptr().add((k + 1) * n)) } else { _mm256_setzero_si256() };
            let pair = _mm256_or_si256(_mm256_and_si256(q0, lo_mask), _mm256_slli_epi32(q1, 16));
            _mm256_storeu_si256(codes.as_mut_ptr().add((p * n_pad + j) * 2) as *mut __m256i, pair);
            j += 8;
        }
        for k in [k, k + 1] {
            if k < depth {
                let row = &xdata[k * n..(k + 1) * n];
                let base = (k / 2) * n_pad * 2 + (k & 1);
                for j in split..n {
                    codes[base + j * 2] = (row[j] * inv[j]).round_ties_even().clamp(-127.0, 127.0) as i16;
                }
            }
        }
        p += 1;
    }
}

// ---------------------------------------------------------------------------
// Fused LSTM gate activation sweep
// ---------------------------------------------------------------------------

/// Exact sigmoid used everywhere in the graph (`Graph::sigmoid`); the fused
/// sweep must match it bit-for-bit.
#[inline(always)]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Apply the four LSTM gate activations in one fused in-place sweep:
/// sigmoid over the forget (`f`), input (`k1`) and output (`k2`) gate
/// pre-activations and tanh over the candidate (`r`).  The f32 tier's gate
/// sweep, dispatched like the GEMM kernels:
///
/// * **Scalar path** — exactly `Graph::sigmoid` / `Graph::tanh`'s libm
///   formulas per element ([`lstm_gate_sweep_scalar`]), bit-identical to the
///   four separate column passes, keeping forced-scalar estimates on the
///   recorded golden-checkpoint bits.
/// * **AVX2 path** — 8-wide FMA-fused rational tanh / half-angle sigmoid
///   ([`tanh_fma`] / [`sigmoid_fma`]; abs error vs. libm < 1e-5, inside the
///   f32 tier's tolerance contract).  The remainder tail computes the
///   **identical** `mul_add` sequence scalar-side, so every element's value
///   is a pure function of its input — independent of buffer length and
///   lane position, which subtree memoization relies on.
///
/// # Panics
/// Panics if the buffers disagree in length.
pub fn lstm_gate_sweep(f: &mut [f32], k1: &mut [f32], r: &mut [f32], k2: &mut [f32]) {
    assert_eq!(f.len(), k1.len(), "lstm_gate_sweep: gate buffer length mismatch");
    assert_eq!(f.len(), r.len(), "lstm_gate_sweep: gate buffer length mismatch");
    assert_eq!(f.len(), k2.len(), "lstm_gate_sweep: gate buffer length mismatch");
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe {
            sweep_sigmoid_fma_avx2(f);
            sweep_sigmoid_fma_avx2(k1);
            sweep_tanh_fma_avx2(r);
            sweep_sigmoid_fma_avx2(k2);
        },
        _ => lstm_gate_sweep_scalar(f, k1, r, k2),
    }
}

/// Scalar (exact libm) arm of [`lstm_gate_sweep`], kept callable for tests.
///
/// # Panics
/// Panics if the buffers disagree in length.
pub fn lstm_gate_sweep_scalar(f: &mut [f32], k1: &mut [f32], r: &mut [f32], k2: &mut [f32]) {
    assert_eq!(f.len(), k1.len(), "lstm_gate_sweep: gate buffer length mismatch");
    assert_eq!(f.len(), r.len(), "lstm_gate_sweep: gate buffer length mismatch");
    assert_eq!(f.len(), k2.len(), "lstm_gate_sweep: gate buffer length mismatch");
    for (((vf, vk1), vr), vk2) in f.iter_mut().zip(k1.iter_mut()).zip(r.iter_mut()).zip(k2.iter_mut()) {
        *vf = sigmoid(*vf);
        *vk1 = sigmoid(*vk1);
        *vr = vr.tanh();
        *vk2 = sigmoid(*vk2);
    }
}

// ---------------------------------------------------------------------------
// Fast approximate activations (the quantized tier's transcendentals)
// ---------------------------------------------------------------------------

/// Input clamp of the rational tanh fit (tanh saturates to ±1 in f32 beyond
/// this).
const TANH_CLAMP: f32 = 7.905_311f32;
/// Odd numerator coefficients of the degree-13/6 rational tanh fit
/// (x¹, x³, …, x¹³).
const TANH_A: [f32; 7] =
    [4.893_525e-3, 6.372_619e-4, 1.485_722_4e-5, 5.122_297e-8, -8.604_672e-11, 2.000_188e-13, -2.760_768_5e-16];
/// Even denominator coefficients (x⁰, x², x⁴, x⁶).
const TANH_B: [f32; 4] = [4.893_525e-3, 2.268_434_6e-3, 1.185_347e-4, 1.198_258_4e-6];

/// Fast rational tanh approximation (degree 13/6 odd rational on the
/// clamped input, the classic single-precision fit used by Eigen and
/// XNNPACK; max error a few ULP across the clamp range).
///
/// Exists for the **int8 inference tier only**: libm `tanh`/`exp` calls
/// dominate the forward pass once the matmuls are int8, and the tier is
/// approximate by contract (per-channel weight quantization already injects
/// ~1% error), so a ~1e-7 activation approximation is free accuracy-wise.
/// Pure f32 multiply/add/divide arithmetic with no table lookups or
/// fused-multiply-add, so results are identical on every dispatch path and
/// host — the full-precision tier uses the fused variant ([`tanh_fma`])
/// instead.
#[inline(always)]
pub fn tanh_fast(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let mut p = TANH_A[6];
    p = p * x2 + TANH_A[5];
    p = p * x2 + TANH_A[4];
    p = p * x2 + TANH_A[3];
    p = p * x2 + TANH_A[2];
    p = p * x2 + TANH_A[1];
    p = p * x2 + TANH_A[0];
    p *= x;
    let mut q = TANH_B[3];
    q = q * x2 + TANH_B[2];
    q = q * x2 + TANH_B[1];
    q = q * x2 + TANH_B[0];
    p / q
}

/// The same rational tanh fit with **fused** multiply-adds (`f32::mul_add`)
/// in the Horner steps — the f32 tier's AVX2 activation.  Scalar `mul_add`
/// rounds exactly like one `vfmadd` lane, so this function *is* the
/// definition of what [`lstm_gate_sweep`]'s AVX2 path computes per element
/// (the vector sweep's remainder tail calls it directly).  Approximation
/// error vs. libm `tanh` is the same ~1e-7 as [`tanh_fast`]; the two fast
/// variants differ from each other only in low-order rounding bits.
#[inline(always)]
pub fn tanh_fma(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let mut p = TANH_A[6];
    p = p.mul_add(x2, TANH_A[5]);
    p = p.mul_add(x2, TANH_A[4]);
    p = p.mul_add(x2, TANH_A[3]);
    p = p.mul_add(x2, TANH_A[2]);
    p = p.mul_add(x2, TANH_A[1]);
    p = p.mul_add(x2, TANH_A[0]);
    p *= x;
    let mut q = TANH_B[3];
    q = q.mul_add(x2, TANH_B[2]);
    q = q.mul_add(x2, TANH_B[1]);
    q = q.mul_add(x2, TANH_B[0]);
    p / q
}

/// Fused-multiply-add sigmoid via the tanh half-angle identity — the f32
/// tier's AVX2 activation (see [`tanh_fma`]).
#[inline(always)]
pub fn sigmoid_fma(x: f32) -> f32 {
    0.5f32.mul_add(tanh_fma(0.5 * x), 0.5)
}

/// 8-wide [`tanh_fma`]: identical clamp / Horner / divide sequence, one
/// `vfmadd` per Horner step, so every lane rounds exactly like the scalar
/// `mul_add` chain.
///
/// # Safety
/// Requires AVX2+FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn tanh_fma_x8(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-TANH_CLAMP)), _mm256_set1_ps(TANH_CLAMP));
    let x2 = _mm256_mul_ps(x, x);
    let mut p = _mm256_set1_ps(TANH_A[6]);
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(TANH_A[5]));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(TANH_A[4]));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(TANH_A[3]));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(TANH_A[2]));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(TANH_A[1]));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(TANH_A[0]));
    p = _mm256_mul_ps(p, x);
    let mut q = _mm256_set1_ps(TANH_B[3]);
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(TANH_B[2]));
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(TANH_B[1]));
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(TANH_B[0]));
    _mm256_div_ps(p, q)
}

/// In-place 8-wide [`tanh_fma`] sweep; the tail runs the identical scalar
/// `mul_add` chain, so values are position-independent.
///
/// # Safety
/// Requires AVX2+FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sweep_tanh_fma_avx2(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let split = buf.len() - buf.len() % 8;
    let mut i = 0;
    while i < split {
        let v = tanh_fma_x8(_mm256_loadu_ps(buf.as_ptr().add(i)));
        _mm256_storeu_ps(buf.as_mut_ptr().add(i), v);
        i += 8;
    }
    for v in &mut buf[split..] {
        *v = tanh_fma(*v);
    }
}

/// In-place 8-wide [`sigmoid_fma`] sweep (half-angle identity; the outer
/// `0.5 * t + 0.5` is one fused step, matching the scalar helper).
///
/// # Safety
/// Requires AVX2+FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sweep_sigmoid_fma_avx2(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let half = _mm256_set1_ps(0.5);
    let split = buf.len() - buf.len() % 8;
    let mut i = 0;
    while i < split {
        let x = _mm256_loadu_ps(buf.as_ptr().add(i));
        let t = tanh_fma_x8(_mm256_mul_ps(x, half));
        _mm256_storeu_ps(buf.as_mut_ptr().add(i), _mm256_fmadd_ps(half, t, half));
        i += 8;
    }
    for v in &mut buf[split..] {
        *v = sigmoid_fma(*v);
    }
}

/// Fast sigmoid via the tanh half-angle identity,
/// `sigmoid(x) = 0.5 + 0.5 * tanh(x / 2)` — same approximation contract as
/// [`tanh_fast`], quantized tier only.
#[inline(always)]
pub fn sigmoid_fast(x: f32) -> f32 {
    0.5 + 0.5 * tanh_fast(0.5 * x)
}

/// [`lstm_gate_sweep`] with the fast approximate activations — the int8
/// tier's gate sweep, dispatched like every kernel here.  The AVX2 arm uses
/// separate multiply + add Horner steps (**no FMA** — [`tanh_fast_x8`]), so
/// it reproduces the scalar [`tanh_fast`] / [`sigmoid_fast`] roundings
/// bit-for-bit and the int8 tier's cross-path bit-identity contract holds
/// for the whole quantized forward pass, activations included.
///
/// # Panics
/// Panics if the buffers disagree in length.
pub fn lstm_gate_sweep_fast(f: &mut [f32], k1: &mut [f32], r: &mut [f32], k2: &mut [f32]) {
    assert_eq!(f.len(), k1.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    assert_eq!(f.len(), r.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    assert_eq!(f.len(), k2.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe {
            sweep_sigmoid_fast_avx2(f);
            sweep_sigmoid_fast_avx2(k1);
            sweep_tanh_fast_avx2(r);
            sweep_sigmoid_fast_avx2(k2);
        },
        _ => lstm_gate_sweep_fast_scalar(f, k1, r, k2),
    }
}

/// Scalar arm of [`lstm_gate_sweep_fast`], kept callable for tests.
/// Branch-free per-element arithmetic; no reassociation or contraction is
/// licensed, so results are deterministic on every host.
///
/// # Panics
/// Panics if the buffers disagree in length.
pub fn lstm_gate_sweep_fast_scalar(f: &mut [f32], k1: &mut [f32], r: &mut [f32], k2: &mut [f32]) {
    assert_eq!(f.len(), k1.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    assert_eq!(f.len(), r.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    assert_eq!(f.len(), k2.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    for v in f.iter_mut() {
        *v = sigmoid_fast(*v);
    }
    for v in k1.iter_mut() {
        *v = sigmoid_fast(*v);
    }
    for v in r.iter_mut() {
        *v = tanh_fast(*v);
    }
    for v in k2.iter_mut() {
        *v = sigmoid_fast(*v);
    }
}

/// 8-wide [`tanh_fast`]: identical clamp and separate-multiply-add Horner
/// sequence (`_mm256_mul_ps` + `_mm256_add_ps`, never fmadd), so every lane
/// rounds exactly like the scalar helper — the int8 tier's cross-path
/// bit-identity extends over the vectorized activations.
///
/// # Safety
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn tanh_fast_x8(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-TANH_CLAMP)), _mm256_set1_ps(TANH_CLAMP));
    let x2 = _mm256_mul_ps(x, x);
    let mut p = _mm256_set1_ps(TANH_A[6]);
    p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(TANH_A[5]));
    p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(TANH_A[4]));
    p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(TANH_A[3]));
    p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(TANH_A[2]));
    p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(TANH_A[1]));
    p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(TANH_A[0]));
    p = _mm256_mul_ps(p, x);
    let mut q = _mm256_set1_ps(TANH_B[3]);
    q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(TANH_B[2]));
    q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(TANH_B[1]));
    q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(TANH_B[0]));
    _mm256_div_ps(p, q)
}

/// In-place 8-wide [`tanh_fast`] sweep (bit-identical to the scalar loop).
///
/// # Safety
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_tanh_fast_avx2(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let split = buf.len() - buf.len() % 8;
    let mut i = 0;
    while i < split {
        let v = tanh_fast_x8(_mm256_loadu_ps(buf.as_ptr().add(i)));
        _mm256_storeu_ps(buf.as_mut_ptr().add(i), v);
        i += 8;
    }
    for v in &mut buf[split..] {
        *v = tanh_fast(*v);
    }
}

/// In-place 8-wide [`sigmoid_fast`] sweep (half-angle identity with
/// separate multiply + add outer steps, bit-identical to the scalar loop).
///
/// # Safety
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_sigmoid_fast_avx2(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let half = _mm256_set1_ps(0.5);
    let split = buf.len() - buf.len() % 8;
    let mut i = 0;
    while i < split {
        let x = _mm256_loadu_ps(buf.as_ptr().add(i));
        let t = tanh_fast_x8(_mm256_mul_ps(half, x));
        _mm256_storeu_ps(buf.as_mut_ptr().add(i), _mm256_add_ps(half, _mm256_mul_ps(half, t)));
        i += 8;
    }
    for v in &mut buf[split..] {
        *v = sigmoid_fast(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(n: usize, mut seed: u32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                (seed >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
            })
            .collect()
    }

    fn lcg_i8(n: usize, mut seed: u32) -> Vec<i8> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                ((seed >> 16) as i32 % 255 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn active_path_is_stable_and_named() {
        let p = active_path();
        assert_eq!(p, active_path(), "dispatch decision must be cached");
        assert!(matches!(path_name(), "avx2" | "scalar"));
        assert_eq!(p.name(), path_name());
    }

    /// Remainder shapes: lengths straddling every vector-width boundary,
    /// including empty and single-element slices.
    const LENGTHS: [usize; 10] = [0, 1, 3, 7, 8, 9, 31, 32, 33, 100];

    #[test]
    fn avx2_and_scalar_f32_kernels_are_bit_identical() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for &n in &LENGTHS {
            let a = lcg(n, 7 + n as u32);
            let b = lcg(n, 1000 + n as u32);
            let s = 0.37f32;

            let mut out_scalar = lcg(n, 42);
            let mut out_avx2 = out_scalar.clone();
            axpy_scalar(s, &a, &mut out_scalar);
            axpy_avx2(s, &a, &mut out_avx2);
            assert_eq!(
                out_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out_avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy paths diverge at n={n}"
            );

            assert_eq!(dot_scalar(&a, &b).to_bits(), dot_avx2(&a, &b).to_bits(), "dot paths diverge at n={n}");
        }
    }

    #[test]
    fn avx2_and_scalar_i8_kernels_agree_exactly() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for &n in &LENGTHS {
            let a = lcg_i8(n, 3 + n as u32);
            let b = lcg_i8(n, 900 + n as u32);
            assert_eq!(dot_i8_scalar(&a, &b), dot_i8_avx2(&a, &b), "dot_i8 paths diverge at n={n}");
        }
    }

    #[test]
    fn dot_i8_extremes_do_not_saturate() {
        // All-(-127) x all-127 over a madd-pair boundary: the i16 pair sum
        // 2 * 127 * 127 = 32258 would saturate a hypothetical i16
        // accumulator; the i32 lanes must carry it exactly.
        for n in [31usize, 32, 64, 65] {
            let a = vec![-127i8; n];
            let b = vec![127i8; n];
            let want = -(127i32 * 127) * n as i32;
            assert_eq!(dot_i8(&a, &b), want);
            assert_eq!(dot_i8_scalar(&a, &b), want);
            if avx2_available() {
                assert_eq!(dot_i8_avx2(&a, &b), want);
            }
        }
    }

    /// Reference pair-GEMM directly off the layout definition.
    #[allow(clippy::too_many_arguments)]
    fn gemm_pairs_naive(
        packed_w: &[i32],
        rows: usize,
        pairs: usize,
        xp: &[i16],
        n_pad: usize,
        w_scales: &[f32],
        x_scales: &[f32],
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        gemm_i8_pairs_scalar(packed_w, rows, pairs, xp, n_pad, w_scales, x_scales, &mut out, n);
        out
    }

    #[test]
    fn gemm_i8_pairs_avx2_matches_scalar_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for (rows, pairs, n) in [(1usize, 1usize, 1usize), (3, 5, 7), (8, 24, 8), (32, 24, 64), (5, 9, 13)] {
            let n_pad = n.next_multiple_of(8);
            let packed_w: Vec<i32> = lcg_i8(rows * pairs * 2, 5)
                .chunks(2)
                .map(|p| (p[0] as i16 as u16 as u32 | ((p[1] as i16 as u16 as u32) << 16)) as i32)
                .collect();
            let mut xp = vec![0i16; pairs * n_pad * 2];
            for (i, v) in lcg_i8(pairs * n * 2, 9).iter().enumerate() {
                // Scatter real codes over the non-pad columns only.
                let (p, rest) = (i / (n * 2), i % (n * 2));
                xp[(p * n_pad + rest / 2) * 2 + rest % 2] = *v as i16;
            }
            let w_scales: Vec<f32> = lcg(rows, 21).iter().map(|v| v.abs() + 0.01).collect();
            let mut x_scales = vec![1.0f32; n_pad];
            for (s, v) in x_scales.iter_mut().zip(lcg(n, 33)) {
                *s = v.abs() + 0.01;
            }
            let scalar = gemm_pairs_naive(&packed_w, rows, pairs, &xp, n_pad, &w_scales, &x_scales, n);
            let mut avx2 = vec![0.0f32; rows * n];
            unsafe { gemm_i8_pairs_avx2_impl(&packed_w, rows, pairs, &xp, n_pad, &w_scales, &x_scales, &mut avx2, n) };
            assert_eq!(
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "pair-GEMM paths diverge at {rows}x{pairs}x{n}"
            );
        }
    }

    #[test]
    fn quantize_interleave_avx2_matches_scalar_exactly() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for (depth, n) in [(1usize, 1usize), (2, 8), (5, 7), (48, 64), (7, 33), (3, 9)] {
            let n_pad = n.next_multiple_of(8);
            let x = lcg(depth * n, 17 + depth as u32);
            let inv: Vec<f32> = lcg(n, 91).iter().map(|v| v.abs() * 100.0).collect();
            let mut scalar = vec![0i16; depth.div_ceil(2) * n_pad * 2];
            let mut avx2 = scalar.clone();
            quantize_interleave_scalar(&x, depth, n, n_pad, &inv, &mut scalar);
            unsafe { quantize_interleave_avx2_impl(&x, depth, n, n_pad, &inv, &mut avx2) };
            assert_eq!(scalar, avx2, "quantize paths diverge at {depth}x{n}");
        }
    }

    #[test]
    fn fast_activations_track_libm_within_tolerance() {
        // The int8 tier's accuracy budget is set by weight quantization
        // (~1e-2 relative); the activation approximation must sit orders of
        // magnitude below it.
        let mut worst_t = 0.0f32;
        let mut worst_s = 0.0f32;
        for i in -8000..=8000 {
            let x = i as f32 * 1e-3;
            worst_t = worst_t.max((tanh_fast(x) - x.tanh()).abs());
            worst_s = worst_s.max((sigmoid_fast(x) - 1.0 / (1.0 + (-x).exp())).abs());
        }
        assert!(worst_t < 1e-5, "tanh_fast worst abs error {worst_t}");
        assert!(worst_s < 1e-5, "sigmoid_fast worst abs error {worst_s}");
        // Range and symmetry invariants downstream ops rely on.
        assert_eq!(tanh_fast(0.0), 0.0);
        for x in [-100.0f32, -9.0, -1.3, 0.7, 9.0, 100.0] {
            assert!(tanh_fast(x).abs() <= 1.0, "tanh_fast({x}) out of range");
            assert!((0.0..=1.0).contains(&sigmoid_fast(x)), "sigmoid_fast({x}) out of range");
            assert_eq!(tanh_fast(x).to_bits(), (-tanh_fast(-x)).to_bits(), "tanh_fast asymmetric at {x}");
        }
    }

    #[test]
    fn fast_gate_sweep_matches_fast_scalar_activations() {
        for &n in &LENGTHS {
            let src_f = lcg(n, 55);
            let src_k1 = lcg(n, 66);
            let src_r = lcg(n, 77);
            let src_k2 = lcg(n, 88);
            let (mut f, mut k1, mut r, mut k2) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep_fast(&mut f, &mut k1, &mut r, &mut k2);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let sig = |v: &[f32]| v.iter().map(|&x| sigmoid_fast(x)).collect::<Vec<f32>>();
            let th = |v: &[f32]| v.iter().map(|&x| tanh_fast(x)).collect::<Vec<f32>>();
            assert_eq!(bits(&f), bits(&sig(&src_f)), "fast forget gate diverges at n={n}");
            assert_eq!(bits(&k1), bits(&sig(&src_k1)), "fast input gate diverges at n={n}");
            assert_eq!(bits(&r), bits(&th(&src_r)), "fast candidate diverges at n={n}");
            assert_eq!(bits(&k2), bits(&sig(&src_k2)), "fast output gate diverges at n={n}");
        }
    }

    #[test]
    fn fused_gate_sweep_scalar_matches_per_element_passes() {
        for &n in &LENGTHS {
            let src_f = lcg(n, 11);
            let src_k1 = lcg(n, 22);
            let src_r = lcg(n, 33);
            let src_k2 = lcg(n, 44);
            let (mut f, mut k1, mut r, mut k2) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep_scalar(&mut f, &mut k1, &mut r, &mut k2);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let sig = |v: &[f32]| v.iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect::<Vec<f32>>();
            let th = |v: &[f32]| v.iter().map(|&x| x.tanh()).collect::<Vec<f32>>();
            assert_eq!(bits(&f), bits(&sig(&src_f)), "fused forget gate diverges at n={n}");
            assert_eq!(bits(&k1), bits(&sig(&src_k1)), "fused input gate diverges at n={n}");
            assert_eq!(bits(&r), bits(&th(&src_r)), "fused candidate diverges at n={n}");
            assert_eq!(bits(&k2), bits(&sig(&src_k2)), "fused output gate diverges at n={n}");
        }
    }

    /// The dispatched f32 gate sweep: per-element values must be a pure
    /// function of the input (position/length independence is what subtree
    /// memoization leans on), track libm within the f32 tier's tolerance,
    /// and on the AVX2 path equal the scalar `mul_add` helpers bit-for-bit
    /// (the tail and the vector lanes compute the same chain).
    #[test]
    fn dispatched_gate_sweep_is_positionless_and_tracks_libm() {
        for &n in &LENGTHS {
            let src_f = lcg(n, 11);
            let src_k1 = lcg(n, 22);
            let src_r = lcg(n, 33);
            let src_k2 = lcg(n, 44);
            let (mut f, mut k1, mut r, mut k2) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep(&mut f, &mut k1, &mut r, &mut k2);
            for (got, src) in [(&f, &src_f), (&k1, &src_k1), (&k2, &src_k2)] {
                for (&y, &x) in got.iter().zip(src.iter()) {
                    let exact = 1.0 / (1.0 + (-x).exp());
                    assert!((y - exact).abs() < 2e-5, "sigmoid({x}) = {y} vs libm {exact} at n={n}");
                    if active_path() == DispatchPath::Avx2 {
                        assert_eq!(y.to_bits(), sigmoid_fma(x).to_bits(), "avx2 sweep != sigmoid_fma at n={n}");
                    }
                }
            }
            for (&y, &x) in r.iter().zip(src_r.iter()) {
                assert!((y - x.tanh()).abs() < 2e-5, "tanh({x}) = {y} vs libm at n={n}");
                if active_path() == DispatchPath::Avx2 {
                    assert_eq!(y.to_bits(), tanh_fma(x).to_bits(), "avx2 sweep != tanh_fma at n={n}");
                }
            }
            // Repeated sweeps on the same path are bit-identical.
            let (mut f2, mut k12, mut r2, mut k22) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep(&mut f2, &mut k12, &mut r2, &mut k22);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&f), bits(&f2), "gate sweep nondeterministic at n={n}");
            assert_eq!(bits(&r), bits(&r2), "gate sweep nondeterministic at n={n}");
        }
    }

    /// The strict-fold contract of [`gemm_f32`]'s AVX2 path: bit-equal to
    /// the naive `f32::mul_add` triple loop at every remainder shape (rows
    /// and columns straddling the 8-wide register block).
    #[test]
    fn fma_gemm_avx2_is_a_strict_mul_add_fold() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2+FMA");
            return;
        }
        for (m, k, n) in [(1usize, 1usize, 1usize), (8, 8, 8), (7, 9, 13), (9, 33, 17), (16, 100, 65), (3, 0, 5)] {
            let a = lcg(m * k, (m * 7 + k) as u32);
            let b = lcg(k * n, (k * 13 + n) as u32);
            let mut out = vec![f32::NAN; m * n];
            gemm_f32_avx2(&a, m, k, &b, n, &mut out);
            let mut want = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                    }
                    want[i * n + j] = acc;
                }
            }
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "gemm_f32_avx2 deviates from the mul_add fold at {m}x{k}x{n}"
            );
        }
    }

    /// Column independence of the dispatched GEMM: appending columns to `b`
    /// must not change the bits of the existing columns.  This is the
    /// property that keeps subtree memoization and aggregator wave
    /// splitting bit-stable as batch composition changes.
    #[test]
    fn gemm_f32_outputs_are_column_independent() {
        let (m, k) = (9usize, 21usize);
        let a = lcg(m * k, 3);
        let narrow_n = 5usize;
        let wide_n = 12usize;
        let wide: Vec<f32> = lcg(k * wide_n, 77);
        let narrow: Vec<f32> = (0..k).flat_map(|kk| wide[kk * wide_n..kk * wide_n + narrow_n].to_vec()).collect();
        let mut out_narrow = vec![f32::NAN; m * narrow_n];
        let mut out_wide = vec![f32::NAN; m * wide_n];
        gemm_f32(&a, m, k, &narrow, narrow_n, &mut out_narrow);
        gemm_f32(&a, m, k, &wide, wide_n, &mut out_wide);
        for i in 0..m {
            for j in 0..narrow_n {
                assert_eq!(
                    out_narrow[i * narrow_n + j].to_bits(),
                    out_wide[i * wide_n + j].to_bits(),
                    "gemm_f32 output depends on batch width at ({i},{j})"
                );
            }
        }
    }

    /// Repeated calls on the same dispatch path are bit-identical, for all
    /// three GEMM variants (run-to-run determinism half of the f32
    /// contract).
    #[test]
    fn fma_gemm_kernels_are_run_to_run_deterministic() {
        let (m, k, n) = (13usize, 37usize, 19usize);
        let a = lcg(m * k, 5);
        let b = lcg(k * n, 6);
        let bt = lcg(n * k, 7);
        let c = lcg(m * n, 8);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let run = || {
            let mut o1 = vec![f32::NAN; m * n];
            gemm_f32(&a, m, k, &b, n, &mut o1);
            let mut o2 = vec![f32::NAN; m * n];
            gemm_f32_nt(&a, m, k, &bt, n, &mut o2);
            let mut o3 = vec![f32::NAN; k * n];
            gemm_f32_tn(&a, m, k, &c, n, &mut o3);
            (bits(&o1), bits(&o2), bits(&o3))
        };
        assert_eq!(run(), run(), "a GEMM kernel is not run-to-run deterministic on {}", path_name());
    }

    /// The fast (int8-tier) gate sweep stays bit-identical across dispatch
    /// paths: the AVX2 arm's mul+add Horner must reproduce the scalar arm.
    #[test]
    fn fast_gate_sweep_avx2_matches_scalar_arm_bitwise() {
        for &n in &LENGTHS {
            let src_f = lcg(n, 155);
            let src_k1 = lcg(n, 166);
            let src_r = lcg(n, 177);
            let src_k2 = lcg(n, 188);
            let (mut f, mut k1, mut r, mut k2) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep_fast(&mut f, &mut k1, &mut r, &mut k2);
            let (mut fs, mut k1s, mut rs, mut k2s) = (src_f, src_k1, src_r, src_k2);
            lstm_gate_sweep_fast_scalar(&mut fs, &mut k1s, &mut rs, &mut k2s);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&f), bits(&fs), "fast sweep paths diverge (forget) at n={n}");
            assert_eq!(bits(&k1), bits(&k1s), "fast sweep paths diverge (input) at n={n}");
            assert_eq!(bits(&r), bits(&rs), "fast sweep paths diverge (candidate) at n={n}");
            assert_eq!(bits(&k2), bits(&k2s), "fast sweep paths diverge (output) at n={n}");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Dispatched and scalar f32 kernels agree bit-for-bit on random
        /// lengths (covering every remainder class) and values.
        #[test]
        fn dispatched_f32_kernels_bit_match_scalar(
            n in 0usize..70,
            seed in 0u32..1_000_000,
            a in -4.0f32..4.0,
        ) {
            let mk = |s: u32| -> Vec<f32> {
                let mut x = s;
                (0..n).map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
                }).collect()
            };
            let b = mk(seed);
            let c = mk(seed ^ 0xdead_beef);

            let mut out_dispatch = c.clone();
            let mut out_scalar = c.clone();
            axpy(a, &b, &mut out_dispatch);
            axpy_scalar(a, &b, &mut out_scalar);
            prop_assert_eq!(
                out_dispatch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(dot(&b, &c).to_bits(), dot_scalar(&b, &c).to_bits());
        }

        /// The f32 GEMM tier's tolerance oracle: every dispatched kernel
        /// tracks the textbook triple loop within relative error 1e-5 at
        /// remainder shapes (extents straddling the 8-wide register block).
        /// On the scalar path this is trivially tight; on the AVX2 path it
        /// bounds the FMA rounding contraction.
        #[test]
        fn fma_gemm_tracks_naive_within_relative_tolerance(
            m in proptest::sample::select(vec![0usize, 1, 2, 7, 8, 9, 15, 17, 65]),
            k in proptest::sample::select(vec![0usize, 1, 2, 7, 8, 9, 15, 17, 65, 100]),
            n in proptest::sample::select(vec![0usize, 1, 2, 7, 8, 9, 15, 17, 65, 100]),
            seed in 0u32..1_000_000,
        ) {
            let mk = |len: usize, mut s: u32| -> Vec<f32> {
                (0..len).map(|_| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    (s >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
                }).collect()
            };
            // |got - want| <= 1e-5 * (1 + |want| + sum |a_i * b_i|): relative
            // in the accumulated magnitude, which is the quantity FMA
            // contraction perturbs (plain relative error is meaningless at
            // catastrophic cancellation).
            let close = |got: f32, want: f32, mag: f32, kernel: &str| -> Result<(), String> {
                prop_assert!(
                    (got - want).abs() <= 1e-5 * (1.0 + want.abs() + mag),
                    "{} {} vs naive {} (mag {}) at {}x{}x{}", kernel, got, want, mag, m, k, n
                );
                Ok(())
            };
            let a = mk(m * k, seed ^ 0x3d);
            let b = mk(k * n, seed ^ 0xb1);
            let mut out = vec![f32::NAN; m * n];
            gemm_f32(&a, m, k, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let (mut want, mut mag) = (0.0f64, 0.0f32);
                    for kk in 0..k {
                        want += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                        mag += (a[i * k + kk] * b[kk * n + j]).abs();
                    }
                    close(out[i * n + j], want as f32, mag, "gemm_f32")?;
                }
            }

            let bt = mk(n * k, seed ^ 0x9e);
            let mut out = vec![f32::NAN; m * n];
            gemm_f32_nt(&a, m, k, &bt, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let (mut want, mut mag) = (0.0f64, 0.0f32);
                    for kk in 0..k {
                        want += a[i * k + kk] as f64 * bt[j * k + kk] as f64;
                        mag += (a[i * k + kk] * bt[j * k + kk]).abs();
                    }
                    close(out[i * n + j], want as f32, mag, "gemm_f32_nt")?;
                }
            }

            let c = mk(m * n, seed ^ 0x5f2);
            let mut out = vec![f32::NAN; k * n];
            gemm_f32_tn(&a, m, k, &c, n, &mut out);
            for i in 0..k {
                for j in 0..n {
                    let (mut want, mut mag) = (0.0f64, 0.0f32);
                    for r in 0..m {
                        want += a[r * k + i] as f64 * c[r * n + j] as f64;
                        mag += (a[r * k + i] * c[r * n + j]).abs();
                    }
                    close(out[i * n + j], want as f32, mag, "gemm_f32_tn")?;
                }
            }
        }

        /// Dispatched and scalar int8 dot products agree exactly.
        #[test]
        fn dispatched_i8_dot_matches_scalar(
            a in proptest::collection::vec(-127i8..=127i8, 0..80),
            seed in 0u32..1_000_000,
        ) {
            let mut s = seed;
            let b: Vec<i8> = a.iter().map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as i32 % 255 - 127) as i8
            }).collect();
            prop_assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b));
            let naive: i32 = a.iter().zip(b.iter()).map(|(&x, &y)| x as i32 * y as i32).sum();
            prop_assert_eq!(dot_i8(&a, &b), naive);
        }
    }
}
