//! Runtime-dispatched SIMD microkernels for the matrix hot paths.
//!
//! The blocked matmul kernels in [`crate::matrix`] were written as 8-wide
//! unrolled scalar loops the compiler auto-vectorizes under the workspace's
//! `target-cpu=x86-64-v3` build flag.  This module makes the vectorization
//! explicit and *runtime-dispatched*: [`active_path`] probes the host once
//! (`is_x86_feature_detected!("avx2")`) and every kernel routes to either an
//! explicit AVX2 implementation or the portable scalar fallback.  Setting
//! `E2E_FORCE_SCALAR=1` (before the first kernel call) pins the scalar path,
//! which is how CI's forced-scalar lane runs the whole kernel/quant test
//! suite without SIMD.
//!
//! # Bit-compatibility contract
//!
//! Both dispatch paths produce **bit-identical** results for every kernel:
//!
//! * The f32 AVX2 kernels are compiled with the `avx2,fma` features enabled
//!   but deliberately use separate multiply + add intrinsics (never
//!   `_mm256_fmadd_ps`): FMA contracts the intermediate rounding step and
//!   would change low-order bits, breaking the golden-checkpoint fixtures
//!   and the memoized-inference bit-identity guarantees whenever AVX2 and
//!   scalar hosts (or CI lanes) compare results.  The lane layout mirrors
//!   the scalar 8-wide unroll exactly — [`dot`] keeps eight independent
//!   accumulators and reduces them in the same order (remainder tail first,
//!   then lanes 0..8) — so every intermediate f32 rounding step matches.
//! * The int8 kernels accumulate in `i32`; integer addition is associative,
//!   so the two paths agree exactly by construction.
//!
//! The property tests at the bottom pin both paths against each other on
//! remainder shapes (lengths not divisible by the vector width, empty
//! slices), and `matrix::prop_tests` pins the full matmul kernels against
//! the naive oracle under both dispatch paths.

use std::sync::OnceLock;

/// Which kernel implementation [`active_path`] selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPath {
    /// Explicit AVX2 kernels (x86-64 with AVX2 detected at runtime).
    Avx2,
    /// Portable unrolled scalar kernels.
    Scalar,
}

impl DispatchPath {
    /// Stable lowercase name for logs and bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPath::Avx2 => "avx2",
            DispatchPath::Scalar => "scalar",
        }
    }
}

static ACTIVE: OnceLock<DispatchPath> = OnceLock::new();

/// The dispatch path every kernel in this module routes through, decided
/// once per process: scalar when `E2E_FORCE_SCALAR` is set non-empty (and
/// not `"0"`), otherwise AVX2 when the host supports it.
#[inline]
pub fn active_path() -> DispatchPath {
    *ACTIVE.get_or_init(|| {
        let forced = matches!(std::env::var("E2E_FORCE_SCALAR").as_deref(), Ok(v) if !v.is_empty() && v != "0");
        if !forced && avx2_available() {
            DispatchPath::Avx2
        } else {
            DispatchPath::Scalar
        }
    })
}

/// Name of the active dispatch path (`"avx2"` / `"scalar"`), for the bench
/// harnesses' host-capability metadata.
pub fn path_name() -> &'static str {
    active_path().name()
}

/// True when the AVX2 kernels can run on this host (independent of the
/// `E2E_FORCE_SCALAR` override).
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// f32 axpy: out += a * b
// ---------------------------------------------------------------------------

/// `out[i] += a * b[i]` over equal-length slices — the inner loop of the
/// blocked matmul and of `matmul_tn`.
#[inline]
pub fn axpy(a: f32, b: &[f32], out: &mut [f32]) {
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { axpy_avx2_impl(a, b, out) },
        _ => axpy_scalar(a, b, out),
    }
}

/// 8-wide unrolled scalar `out += a * b` (the auto-vectorizing form the
/// blocked matmul shipped with; kept verbatim as the fallback and oracle).
#[inline]
pub fn axpy_scalar(a: f32, b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(b.len(), out.len());
    let split = out.len() - out.len() % 8;
    let (b_main, b_tail) = b.split_at(split);
    let (o_main, o_tail) = out.split_at_mut(split);
    for (o, v) in o_main.chunks_exact_mut(8).zip(b_main.chunks_exact(8)) {
        o[0] += a * v[0];
        o[1] += a * v[1];
        o[2] += a * v[2];
        o[3] += a * v[3];
        o[4] += a * v[4];
        o[5] += a * v[5];
        o[6] += a * v[6];
        o[7] += a * v[7];
    }
    for (o, &v) in o_tail.iter_mut().zip(b_tail.iter()) {
        *o += a * v;
    }
}

/// Explicit-AVX2 `out += a * b`.
///
/// # Panics
/// Panics when AVX2 is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn axpy_avx2(a: f32, b: &[f32], out: &mut [f32]) {
    assert!(avx2_available(), "axpy_avx2 called without AVX2 support");
    unsafe { axpy_avx2_impl(a, b, out) }
}

/// # Safety
/// Requires AVX2 (and FMA feature availability; no FMA instruction is
/// emitted — see the module-level bit-compatibility contract).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2_impl(a: f32, b: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(b.len(), out.len());
    let n = out.len();
    let split = n - n % 8;
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    while i < split {
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        let vo = _mm256_loadu_ps(out.as_ptr().add(i));
        // mul + add, NOT fmadd: bit-identical to the scalar path.
        let prod = _mm256_mul_ps(va, vb);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(vo, prod));
        i += 8;
    }
    for (o, &v) in out[split..].iter_mut().zip(b[split..].iter()) {
        *o += a * v;
    }
}

// ---------------------------------------------------------------------------
// f32 dot product
// ---------------------------------------------------------------------------

/// Dot product of equal-length slices — the inner loop of `matmul_nt`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { dot_avx2_impl(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// 8-accumulator unrolled scalar dot product (the original kernel).  The
/// reduction order — remainder tail summed first, then the eight lane
/// accumulators in index order — is part of the bit-compatibility contract.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % 8;
    let mut acc = [0.0f32; 8];
    for (x, y) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
        acc[4] += x[4] * y[4];
        acc[5] += x[5] * y[5];
        acc[6] += x[6] * y[6];
        acc[7] += x[7] * y[7];
    }
    let mut sum: f32 = a[split..].iter().zip(b[split..].iter()).map(|(x, y)| x * y).sum();
    for v in acc {
        sum += v;
    }
    sum
}

/// Explicit-AVX2 dot product.
///
/// # Panics
/// Panics when AVX2 is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    assert!(avx2_available(), "dot_avx2 called without AVX2 support");
    unsafe { dot_avx2_impl(a, b) }
}

/// # Safety
/// Requires AVX2.  One 8-lane vector accumulator mirrors the scalar path's
/// eight independent accumulators; the horizontal reduction extracts the
/// lanes and adds them in the same order the scalar path does.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let split = n - n % 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < split {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        // mul + add, NOT fmadd: bit-identical to the scalar path.
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut sum: f32 = a[split..].iter().zip(b[split..].iter()).map(|(x, y)| x * y).sum();
    for v in lanes {
        sum += v;
    }
    sum
}

// ---------------------------------------------------------------------------
// int8 dot product (i8 x i8 -> i32)
// ---------------------------------------------------------------------------

/// Integer dot product of equal-length `i8` slices, accumulated in `i32` —
/// the inner kernel of the quantized matmul ([`crate::quant`]).  Exact (no
/// rounding), so both dispatch paths agree bit-for-bit by construction.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { dot_i8_avx2_impl(a, b) },
        _ => dot_i8_scalar(a, b),
    }
}

/// Scalar int8 dot product.
#[inline]
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        sum += x as i32 * y as i32;
    }
    sum
}

/// Explicit-AVX2 int8 dot product.
///
/// # Panics
/// Panics when AVX2 is not available on this host.
#[cfg(target_arch = "x86_64")]
pub fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    assert!(avx2_available(), "dot_i8_avx2 called without AVX2 support");
    unsafe { dot_i8_avx2_impl(a, b) }
}

/// # Safety
/// Requires AVX2.  32 products per iteration: each 128-bit half of the i8
/// vectors is sign-extended to i16 and `_mm256_madd_epi16` folds adjacent
/// i16 products into i32 lanes.  With |q| <= 127 a pair sum is at most
/// 2 * 127^2, far inside i16-product/i32-lane range, so no saturation can
/// occur.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2_impl(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let split = n - n % 32;
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i < split {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
        let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
        let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
        let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
        i += 32;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: i32 = lanes.iter().sum();
    for (&x, &y) in a[split..].iter().zip(b[split..].iter()) {
        sum += x as i32 * y as i32;
    }
    sum
}

// ---------------------------------------------------------------------------
// Packed int8 pair-GEMM (the quantized matmul kernel)
// ---------------------------------------------------------------------------

/// Packed int8 GEMM over pair-interleaved operands — the kernel behind
/// [`crate::quant::QuantMatrix::matmul_into`].
///
/// Layouts (built by `quant::PackedActivations` / `QuantMatrix`):
///
/// * `packed_w`: `rows * pairs` i32 words; word `(i, p)` holds weight codes
///   `w[i][2p]` in its low i16 and `w[i][2p+1]` in its high i16 (zero pad
///   for odd depth).
/// * `xp`: `pairs * n_pad * 2` i16 activation codes, interleaved so that
///   `xp[(p * n_pad + j) * 2 + {0,1}]` are column `j`'s codes for depth
///   `2p` / `2p+1`; `n_pad` is `n` rounded up to a multiple of 8 (zero pad).
/// * `x_scales`: `n_pad` per-column dequantization scales (pad value `1.0`).
///
/// Each output is `acc as f32 * (w_scales[i] * x_scales[j])` where `acc` is
/// the exact i32 code dot product.  The AVX2 path keeps one i32 vector
/// accumulator per 8 output columns (`_mm256_madd_epi16` on a broadcast
/// weight pair — no per-output horizontal reduction), which is what makes
/// the int8 tier beat the f32 axpy kernel instead of losing to it; integer
/// accumulation is associative, so both dispatch paths agree bit-for-bit.
///
/// # Panics
/// Debug-asserts the slice lengths implied by the shape arguments.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_pairs(
    packed_w: &[i32],
    rows: usize,
    pairs: usize,
    xp: &[i16],
    n_pad: usize,
    w_scales: &[f32],
    x_scales: &[f32],
    out: &mut [f32],
    n: usize,
) {
    debug_assert_eq!(packed_w.len(), rows * pairs);
    debug_assert_eq!(xp.len(), pairs * n_pad * 2);
    debug_assert_eq!(w_scales.len(), rows);
    debug_assert_eq!(x_scales.len(), n_pad);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(n_pad >= n && n_pad.is_multiple_of(8));
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe {
            gemm_i8_pairs_avx2_impl(packed_w, rows, pairs, xp, n_pad, w_scales, x_scales, out, n)
        },
        _ => gemm_i8_pairs_scalar(packed_w, rows, pairs, xp, n_pad, w_scales, x_scales, out, n),
    }
}

/// Scalar reference for [`gemm_i8_pairs`]: identical i32 sums (exact), the
/// identical dequantization expression.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_pairs_scalar(
    packed_w: &[i32],
    rows: usize,
    pairs: usize,
    xp: &[i16],
    n_pad: usize,
    w_scales: &[f32],
    x_scales: &[f32],
    out: &mut [f32],
    n: usize,
) {
    for i in 0..rows {
        let wrow = &packed_w[i * pairs..(i + 1) * pairs];
        for j in 0..n {
            let mut acc = 0i32;
            for (p, &w) in wrow.iter().enumerate() {
                let (wlo, whi) = (w as i16 as i32, w >> 16);
                let base = (p * n_pad + j) * 2;
                acc += wlo * xp[base] as i32 + whi * xp[base + 1] as i32;
            }
            out[i * n + j] = acc as f32 * (w_scales[i] * x_scales[j]);
        }
    }
}

/// # Safety
/// Requires AVX2.  Eight output columns per i32 vector accumulator: each
/// weight pair is broadcast with `_mm256_set1_epi32` and `_mm256_madd_epi16`
/// folds it against eight interleaved activation pairs.  With codes in
/// [-127, 127] a pair sum is at most `2 * 127^2`, far inside i32-lane range.
/// The dequantization multiplies in the same order as the scalar path
/// (`w_scale * x_scale` first, then `acc * that`), so results are
/// bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_i8_pairs_avx2_impl(
    packed_w: &[i32],
    rows: usize,
    pairs: usize,
    xp: &[i16],
    n_pad: usize,
    w_scales: &[f32],
    x_scales: &[f32],
    out: &mut [f32],
    n: usize,
) {
    use std::arch::x86_64::*;
    let mut jb = 0;
    while jb < n {
        let full = jb + 8 <= n;
        for i in 0..rows {
            let wrow = packed_w.as_ptr().add(i * pairs);
            let mut acc = _mm256_setzero_si256();
            for p in 0..pairs {
                let vx = _mm256_loadu_si256(xp.as_ptr().add((p * n_pad + jb) * 2) as *const __m256i);
                let vw = _mm256_set1_epi32(*wrow.add(p));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(vw, vx));
            }
            let accf = _mm256_cvtepi32_ps(acc);
            let vs = _mm256_mul_ps(_mm256_set1_ps(w_scales[i]), _mm256_loadu_ps(x_scales.as_ptr().add(jb)));
            let vout = _mm256_mul_ps(accf, vs);
            if full {
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + jb), vout);
            } else {
                let mut tmp = [0f32; 8];
                _mm256_storeu_ps(tmp.as_mut_ptr(), vout);
                out[i * n + jb..i * n + n].copy_from_slice(&tmp[..n - jb]);
            }
        }
        jb += 8;
    }
}

/// Quantize a `depth x n` row-major f32 matrix into the pair-interleaved
/// i16 code layout of [`gemm_i8_pairs`]: code
/// `round_ties_even(v * inv[j]).clamp(-127, 127)`, stored at
/// `codes[(p * n_pad + j) * 2 + (k & 1)]` for depth row `k = 2p + (k & 1)`.
/// `codes` must come in zeroed (pad columns and the odd-depth half stay 0).
///
/// Dispatched like every kernel here; the AVX2 path uses `_mm256_round_ps`
/// to-nearest (ties to even, exactly `f32::round_ties_even`) and min/max
/// clamps, so both paths produce identical codes for all finite inputs.
pub fn quantize_interleave(xdata: &[f32], depth: usize, n: usize, n_pad: usize, inv: &[f32], codes: &mut [i16]) {
    debug_assert_eq!(xdata.len(), depth * n);
    debug_assert_eq!(inv.len(), n);
    debug_assert_eq!(codes.len(), depth.div_ceil(2) * n_pad * 2);
    match active_path() {
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => unsafe { quantize_interleave_avx2_impl(xdata, depth, n, n_pad, inv, codes) },
        _ => quantize_interleave_scalar(xdata, depth, n, n_pad, inv, codes),
    }
}

/// Scalar reference for [`quantize_interleave`].
pub fn quantize_interleave_scalar(xdata: &[f32], depth: usize, n: usize, n_pad: usize, inv: &[f32], codes: &mut [i16]) {
    for k in 0..depth {
        let row = &xdata[k * n..(k + 1) * n];
        let base = (k / 2) * n_pad * 2 + (k & 1);
        for (j, &v) in row.iter().enumerate() {
            codes[base + j * 2] = (v * inv[j]).round_ties_even().clamp(-127.0, 127.0) as i16;
        }
    }
}

/// # Safety
/// Requires AVX2.  Two depth rows per sweep: each group of 8 columns is
/// multiplied, rounded (`_MM_FROUND_TO_NEAREST_INT` — ties to even, the
/// scalar path's `round_ties_even`), clamped and converted to i32; the two
/// rows' i32 code words are fused into interleaved i16 pairs with
/// mask/shift/or (the low half of each i32 *is* the i16 code) and stored as
/// one 256-bit word.  Column remainders fall back to the scalar formula,
/// which produces the same integers by construction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_interleave_avx2_impl(
    xdata: &[f32],
    depth: usize,
    n: usize,
    n_pad: usize,
    inv: &[f32],
    codes: &mut [i16],
) {
    use std::arch::x86_64::*;
    let lo_mask = _mm256_set1_epi32(0xFFFF);
    let vmin = _mm256_set1_ps(-127.0);
    let vmax = _mm256_set1_ps(127.0);
    let split = n - n % 8;
    let mut p = 0;
    while 2 * p < depth {
        let k = 2 * p;
        let row0 = xdata.as_ptr().add(k * n);
        let odd = k + 1 < depth;
        let mut j = 0;
        while j < split {
            let vi = _mm256_loadu_ps(inv.as_ptr().add(j));
            let quant = |row: *const f32| {
                let v = _mm256_mul_ps(_mm256_loadu_ps(row.add(j)), vi);
                let v = _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
                let v = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
                _mm256_cvtps_epi32(v)
            };
            let q0 = quant(row0);
            let q1 = if odd { quant(xdata.as_ptr().add((k + 1) * n)) } else { _mm256_setzero_si256() };
            let pair = _mm256_or_si256(_mm256_and_si256(q0, lo_mask), _mm256_slli_epi32(q1, 16));
            _mm256_storeu_si256(codes.as_mut_ptr().add((p * n_pad + j) * 2) as *mut __m256i, pair);
            j += 8;
        }
        for k in [k, k + 1] {
            if k < depth {
                let row = &xdata[k * n..(k + 1) * n];
                let base = (k / 2) * n_pad * 2 + (k & 1);
                for j in split..n {
                    codes[base + j * 2] = (row[j] * inv[j]).round_ties_even().clamp(-127.0, 127.0) as i16;
                }
            }
        }
        p += 1;
    }
}

// ---------------------------------------------------------------------------
// Fused LSTM gate activation sweep
// ---------------------------------------------------------------------------

/// Exact sigmoid used everywhere in the graph (`Graph::sigmoid`); the fused
/// sweep must match it bit-for-bit.
#[inline(always)]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Apply the four LSTM gate activations in one fused in-place sweep:
/// sigmoid over the forget (`f`), input (`k1`) and output (`k2`) gate
/// pre-activations and tanh over the candidate (`r`), walking all four
/// equal-length buffers together instead of one `map_into` pass per gate.
///
/// The per-element formulas are exactly `Graph::sigmoid` / `Graph::tanh`'s,
/// so the fused sweep is bit-identical to the four separate column passes
/// (pinned by `fused_gate_sweep_matches_per_element_passes` below) on every
/// dispatch path — the transcendentals stay scalar libm calls; the fusion
/// wins locality and tape nodes, not instruction width.
///
/// # Panics
/// Panics if the buffers disagree in length.
pub fn lstm_gate_sweep(f: &mut [f32], k1: &mut [f32], r: &mut [f32], k2: &mut [f32]) {
    assert_eq!(f.len(), k1.len(), "lstm_gate_sweep: gate buffer length mismatch");
    assert_eq!(f.len(), r.len(), "lstm_gate_sweep: gate buffer length mismatch");
    assert_eq!(f.len(), k2.len(), "lstm_gate_sweep: gate buffer length mismatch");
    for (((vf, vk1), vr), vk2) in f.iter_mut().zip(k1.iter_mut()).zip(r.iter_mut()).zip(k2.iter_mut()) {
        *vf = sigmoid(*vf);
        *vk1 = sigmoid(*vk1);
        *vr = vr.tanh();
        *vk2 = sigmoid(*vk2);
    }
}

// ---------------------------------------------------------------------------
// Fast approximate activations (the quantized tier's transcendentals)
// ---------------------------------------------------------------------------

/// Fast rational tanh approximation (degree 13/6 odd rational on the
/// clamped input, the classic single-precision fit used by Eigen and
/// XNNPACK; max error a few ULP across the clamp range).
///
/// Exists for the **int8 inference tier only**: libm `tanh`/`exp` calls
/// dominate the forward pass once the matmuls are int8, and the tier is
/// approximate by contract (per-channel weight quantization already injects
/// ~1% error), so a ~1e-7 activation approximation is free accuracy-wise.
/// Pure f32 multiply/add/divide arithmetic with no table lookups or
/// fused-multiply-add, so results are identical on every dispatch path and
/// host — the full-precision tier never calls this.
#[inline(always)]
pub fn tanh_fast(x: f32) -> f32 {
    const CLAMP: f32 = 7.905_311f32;
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = A13;
    p = p * x2 + A11;
    p = p * x2 + A9;
    p = p * x2 + A7;
    p = p * x2 + A5;
    p = p * x2 + A3;
    p = p * x2 + A1;
    p *= x;
    let mut q = B6;
    q = q * x2 + B4;
    q = q * x2 + B2;
    q = q * x2 + B0;
    p / q
}

/// Fast sigmoid via the tanh half-angle identity,
/// `sigmoid(x) = 0.5 + 0.5 * tanh(x / 2)` — same approximation contract as
/// [`tanh_fast`], quantized tier only.
#[inline(always)]
pub fn sigmoid_fast(x: f32) -> f32 {
    0.5 + 0.5 * tanh_fast(0.5 * x)
}

/// [`lstm_gate_sweep`] with the fast approximate activations — the int8
/// tier's gate sweep.  Branch-free per-element arithmetic auto-vectorizes
/// under the workspace's `target-cpu` flag; determinism does not depend on
/// it (no reassociation or contraction is licensed).
///
/// # Panics
/// Panics if the buffers disagree in length.
pub fn lstm_gate_sweep_fast(f: &mut [f32], k1: &mut [f32], r: &mut [f32], k2: &mut [f32]) {
    assert_eq!(f.len(), k1.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    assert_eq!(f.len(), r.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    assert_eq!(f.len(), k2.len(), "lstm_gate_sweep_fast: gate buffer length mismatch");
    for v in f.iter_mut() {
        *v = sigmoid_fast(*v);
    }
    for v in k1.iter_mut() {
        *v = sigmoid_fast(*v);
    }
    for v in r.iter_mut() {
        *v = tanh_fast(*v);
    }
    for v in k2.iter_mut() {
        *v = sigmoid_fast(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(n: usize, mut seed: u32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                (seed >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
            })
            .collect()
    }

    fn lcg_i8(n: usize, mut seed: u32) -> Vec<i8> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                ((seed >> 16) as i32 % 255 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn active_path_is_stable_and_named() {
        let p = active_path();
        assert_eq!(p, active_path(), "dispatch decision must be cached");
        assert!(matches!(path_name(), "avx2" | "scalar"));
        assert_eq!(p.name(), path_name());
    }

    /// Remainder shapes: lengths straddling every vector-width boundary,
    /// including empty and single-element slices.
    const LENGTHS: [usize; 10] = [0, 1, 3, 7, 8, 9, 31, 32, 33, 100];

    #[test]
    fn avx2_and_scalar_f32_kernels_are_bit_identical() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for &n in &LENGTHS {
            let a = lcg(n, 7 + n as u32);
            let b = lcg(n, 1000 + n as u32);
            let s = 0.37f32;

            let mut out_scalar = lcg(n, 42);
            let mut out_avx2 = out_scalar.clone();
            axpy_scalar(s, &a, &mut out_scalar);
            axpy_avx2(s, &a, &mut out_avx2);
            assert_eq!(
                out_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out_avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy paths diverge at n={n}"
            );

            assert_eq!(dot_scalar(&a, &b).to_bits(), dot_avx2(&a, &b).to_bits(), "dot paths diverge at n={n}");
        }
    }

    #[test]
    fn avx2_and_scalar_i8_kernels_agree_exactly() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for &n in &LENGTHS {
            let a = lcg_i8(n, 3 + n as u32);
            let b = lcg_i8(n, 900 + n as u32);
            assert_eq!(dot_i8_scalar(&a, &b), dot_i8_avx2(&a, &b), "dot_i8 paths diverge at n={n}");
        }
    }

    #[test]
    fn dot_i8_extremes_do_not_saturate() {
        // All-(-127) x all-127 over a madd-pair boundary: the i16 pair sum
        // 2 * 127 * 127 = 32258 would saturate a hypothetical i16
        // accumulator; the i32 lanes must carry it exactly.
        for n in [31usize, 32, 64, 65] {
            let a = vec![-127i8; n];
            let b = vec![127i8; n];
            let want = -(127i32 * 127) * n as i32;
            assert_eq!(dot_i8(&a, &b), want);
            assert_eq!(dot_i8_scalar(&a, &b), want);
            if avx2_available() {
                assert_eq!(dot_i8_avx2(&a, &b), want);
            }
        }
    }

    /// Reference pair-GEMM directly off the layout definition.
    #[allow(clippy::too_many_arguments)]
    fn gemm_pairs_naive(
        packed_w: &[i32],
        rows: usize,
        pairs: usize,
        xp: &[i16],
        n_pad: usize,
        w_scales: &[f32],
        x_scales: &[f32],
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        gemm_i8_pairs_scalar(packed_w, rows, pairs, xp, n_pad, w_scales, x_scales, &mut out, n);
        out
    }

    #[test]
    fn gemm_i8_pairs_avx2_matches_scalar_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for (rows, pairs, n) in [(1usize, 1usize, 1usize), (3, 5, 7), (8, 24, 8), (32, 24, 64), (5, 9, 13)] {
            let n_pad = n.next_multiple_of(8);
            let packed_w: Vec<i32> = lcg_i8(rows * pairs * 2, 5)
                .chunks(2)
                .map(|p| (p[0] as i16 as u16 as u32 | ((p[1] as i16 as u16 as u32) << 16)) as i32)
                .collect();
            let mut xp = vec![0i16; pairs * n_pad * 2];
            for (i, v) in lcg_i8(pairs * n * 2, 9).iter().enumerate() {
                // Scatter real codes over the non-pad columns only.
                let (p, rest) = (i / (n * 2), i % (n * 2));
                xp[(p * n_pad + rest / 2) * 2 + rest % 2] = *v as i16;
            }
            let w_scales: Vec<f32> = lcg(rows, 21).iter().map(|v| v.abs() + 0.01).collect();
            let mut x_scales = vec![1.0f32; n_pad];
            for (s, v) in x_scales.iter_mut().zip(lcg(n, 33)) {
                *s = v.abs() + 0.01;
            }
            let scalar = gemm_pairs_naive(&packed_w, rows, pairs, &xp, n_pad, &w_scales, &x_scales, n);
            let mut avx2 = vec![0.0f32; rows * n];
            unsafe { gemm_i8_pairs_avx2_impl(&packed_w, rows, pairs, &xp, n_pad, &w_scales, &x_scales, &mut avx2, n) };
            assert_eq!(
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "pair-GEMM paths diverge at {rows}x{pairs}x{n}"
            );
        }
    }

    #[test]
    fn quantize_interleave_avx2_matches_scalar_exactly() {
        if !avx2_available() {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for (depth, n) in [(1usize, 1usize), (2, 8), (5, 7), (48, 64), (7, 33), (3, 9)] {
            let n_pad = n.next_multiple_of(8);
            let x = lcg(depth * n, 17 + depth as u32);
            let inv: Vec<f32> = lcg(n, 91).iter().map(|v| v.abs() * 100.0).collect();
            let mut scalar = vec![0i16; depth.div_ceil(2) * n_pad * 2];
            let mut avx2 = scalar.clone();
            quantize_interleave_scalar(&x, depth, n, n_pad, &inv, &mut scalar);
            unsafe { quantize_interleave_avx2_impl(&x, depth, n, n_pad, &inv, &mut avx2) };
            assert_eq!(scalar, avx2, "quantize paths diverge at {depth}x{n}");
        }
    }

    #[test]
    fn fast_activations_track_libm_within_tolerance() {
        // The int8 tier's accuracy budget is set by weight quantization
        // (~1e-2 relative); the activation approximation must sit orders of
        // magnitude below it.
        let mut worst_t = 0.0f32;
        let mut worst_s = 0.0f32;
        for i in -8000..=8000 {
            let x = i as f32 * 1e-3;
            worst_t = worst_t.max((tanh_fast(x) - x.tanh()).abs());
            worst_s = worst_s.max((sigmoid_fast(x) - 1.0 / (1.0 + (-x).exp())).abs());
        }
        assert!(worst_t < 1e-5, "tanh_fast worst abs error {worst_t}");
        assert!(worst_s < 1e-5, "sigmoid_fast worst abs error {worst_s}");
        // Range and symmetry invariants downstream ops rely on.
        assert_eq!(tanh_fast(0.0), 0.0);
        for x in [-100.0f32, -9.0, -1.3, 0.7, 9.0, 100.0] {
            assert!(tanh_fast(x).abs() <= 1.0, "tanh_fast({x}) out of range");
            assert!((0.0..=1.0).contains(&sigmoid_fast(x)), "sigmoid_fast({x}) out of range");
            assert_eq!(tanh_fast(x).to_bits(), (-tanh_fast(-x)).to_bits(), "tanh_fast asymmetric at {x}");
        }
    }

    #[test]
    fn fast_gate_sweep_matches_fast_scalar_activations() {
        for &n in &LENGTHS {
            let src_f = lcg(n, 55);
            let src_k1 = lcg(n, 66);
            let src_r = lcg(n, 77);
            let src_k2 = lcg(n, 88);
            let (mut f, mut k1, mut r, mut k2) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep_fast(&mut f, &mut k1, &mut r, &mut k2);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let sig = |v: &[f32]| v.iter().map(|&x| sigmoid_fast(x)).collect::<Vec<f32>>();
            let th = |v: &[f32]| v.iter().map(|&x| tanh_fast(x)).collect::<Vec<f32>>();
            assert_eq!(bits(&f), bits(&sig(&src_f)), "fast forget gate diverges at n={n}");
            assert_eq!(bits(&k1), bits(&sig(&src_k1)), "fast input gate diverges at n={n}");
            assert_eq!(bits(&r), bits(&th(&src_r)), "fast candidate diverges at n={n}");
            assert_eq!(bits(&k2), bits(&sig(&src_k2)), "fast output gate diverges at n={n}");
        }
    }

    #[test]
    fn fused_gate_sweep_matches_per_element_passes() {
        for &n in &LENGTHS {
            let src_f = lcg(n, 11);
            let src_k1 = lcg(n, 22);
            let src_r = lcg(n, 33);
            let src_k2 = lcg(n, 44);
            let (mut f, mut k1, mut r, mut k2) = (src_f.clone(), src_k1.clone(), src_r.clone(), src_k2.clone());
            lstm_gate_sweep(&mut f, &mut k1, &mut r, &mut k2);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let sig = |v: &[f32]| v.iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect::<Vec<f32>>();
            let th = |v: &[f32]| v.iter().map(|&x| x.tanh()).collect::<Vec<f32>>();
            assert_eq!(bits(&f), bits(&sig(&src_f)), "fused forget gate diverges at n={n}");
            assert_eq!(bits(&k1), bits(&sig(&src_k1)), "fused input gate diverges at n={n}");
            assert_eq!(bits(&r), bits(&th(&src_r)), "fused candidate diverges at n={n}");
            assert_eq!(bits(&k2), bits(&sig(&src_k2)), "fused output gate diverges at n={n}");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Dispatched and scalar f32 kernels agree bit-for-bit on random
        /// lengths (covering every remainder class) and values.
        #[test]
        fn dispatched_f32_kernels_bit_match_scalar(
            n in 0usize..70,
            seed in 0u32..1_000_000,
            a in -4.0f32..4.0,
        ) {
            let mk = |s: u32| -> Vec<f32> {
                let mut x = s;
                (0..n).map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
                }).collect()
            };
            let b = mk(seed);
            let c = mk(seed ^ 0xdead_beef);

            let mut out_dispatch = c.clone();
            let mut out_scalar = c.clone();
            axpy(a, &b, &mut out_dispatch);
            axpy_scalar(a, &b, &mut out_scalar);
            prop_assert_eq!(
                out_dispatch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(dot(&b, &c).to_bits(), dot_scalar(&b, &c).to_bits());
        }

        /// Dispatched and scalar int8 dot products agree exactly.
        #[test]
        fn dispatched_i8_dot_matches_scalar(
            a in proptest::collection::vec(-127i8..=127i8, 0..80),
            seed in 0u32..1_000_000,
        ) {
            let mut s = seed;
            let b: Vec<i8> = a.iter().map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as i32 % 255 - 127) as i8
            }).collect();
            prop_assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b));
            let naive: i32 = a.iter().zip(b.iter()).map(|(&x, &y)| x as i32 * y as i32).sum();
            prop_assert_eq!(dot_i8(&a, &b), naive);
        }
    }
}
