//! Trainable layers built on top of the autodiff graph.

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamStore};
use crate::quant::QuantWeights;
use rand::Rng;

/// A fully-connected layer `y = W x + b`.
///
/// The weights live in a [`ParamStore`]; a `Linear` value is just the pair of
/// parameter ids plus the layer shape, so it can be applied inside any number
/// of per-plan graphs.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new layer's parameters in `store`.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = store.add_xavier(format!("{name}.w"), out_dim, in_dim, rng);
        let b = store.add_zeros(format!("{name}.b"), out_dim, 1);
        Linear { w, b, in_dim, out_dim }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply the affine map to a node holding an `in_dim x batch` matrix.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        debug_assert_eq!(g.value(x).rows(), self.in_dim, "Linear input dimension mismatch");
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let z = g.matmul(w, x);
        g.add_bias(z, b)
    }

    /// Apply the layer followed by a ReLU.
    pub fn forward_relu(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let z = self.forward(g, store, x);
        g.relu(z)
    }

    /// Apply the layer followed by a sigmoid.
    pub fn forward_sigmoid(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let z = self.forward(g, store, x);
        g.sigmoid(z)
    }

    /// Tier-aware affine map: when `quant` holds an int8 form of this
    /// layer's weight matrix, the matmul runs on the quantized tier
    /// (dequantizing into the f32 tape); otherwise this is exactly
    /// [`Linear::forward`].  The bias always stays f32.
    pub fn forward_q(&self, g: &mut Graph, store: &ParamStore, quant: Option<&QuantWeights>, x: NodeId) -> NodeId {
        match quant.and_then(|q| q.get(self.w)) {
            Some(qw) => {
                debug_assert_eq!(g.value(x).rows(), self.in_dim, "Linear input dimension mismatch");
                let z = g.matmul_quant(qw, x);
                let b = g.param(store, self.b);
                g.add_bias(z, b)
            }
            None => self.forward(g, store, x),
        }
    }

    /// Tier-aware [`Linear::forward_relu`].
    pub fn forward_relu_q(&self, g: &mut Graph, store: &ParamStore, quant: Option<&QuantWeights>, x: NodeId) -> NodeId {
        let z = self.forward_q(g, store, quant, x);
        g.relu(z)
    }

    /// Tier-aware [`Linear::forward_sigmoid`].  On the int8 tier the
    /// sigmoid is the fast approximation ([`Graph::sigmoid_approx`]),
    /// matching the tier's approximate-activation contract.
    pub fn forward_sigmoid_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        x: NodeId,
    ) -> NodeId {
        let z = self.forward_q(g, store, quant, x);
        if quant.is_some_and(|q| q.get(self.w).is_some()) {
            g.sigmoid_approx(z)
        } else {
            g.sigmoid(z)
        }
    }
}

/// A two-layer MLP with ReLU hidden activation: `out = W2 relu(W1 x + b1) + b2`.
#[derive(Debug, Clone, Copy)]
pub struct Mlp2 {
    pub l1: Linear,
    pub l2: Linear,
}

impl Mlp2 {
    /// Register the MLP's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Mlp2 {
            l1: Linear::new(store, &format!("{name}.l1"), in_dim, hidden, rng),
            l2: Linear::new(store, &format!("{name}.l2"), hidden, out_dim, rng),
        }
    }

    /// Forward pass (linear output, no final activation).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let h = self.l1.forward_relu(g, store, x);
        self.l2.forward(g, store, h)
    }

    /// Forward pass with a sigmoid output (the estimation layer of §4.2.3).
    pub fn forward_sigmoid(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let z = self.forward(g, store, x);
        g.sigmoid(z)
    }

    /// Tier-aware [`Mlp2::forward`].
    pub fn forward_q(&self, g: &mut Graph, store: &ParamStore, quant: Option<&QuantWeights>, x: NodeId) -> NodeId {
        let h = self.l1.forward_relu_q(g, store, quant, x);
        self.l2.forward_q(g, store, quant, h)
    }

    /// Tier-aware [`Mlp2::forward_sigmoid`].  On the int8 tier the sigmoid
    /// is the fast approximation, matching the tier's contract.
    pub fn forward_sigmoid_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        x: NodeId,
    ) -> NodeId {
        let z = self.forward_q(g, store, quant, x);
        if quant.is_some_and(|q| q.get(self.l2.w).is_some()) {
            g.sigmoid_approx(z)
        } else {
            g.sigmoid(z)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 4, 3, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[1.0, 2.0, 3.0, 4.0]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).rows(), 3);
        assert_eq!(g.value(y).cols(), 1);
    }

    #[test]
    fn linear_batched_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 2, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(2, 3, vec![1.0; 6]));
        let y = layer.forward_relu(&mut g, &store, x);
        assert_eq!(g.value(y).cols(), 3);
    }

    #[test]
    fn mlp_trains_toward_target() {
        // One gradient step must reduce the squared error on a fixed sample.
        use crate::optim::{Optimizer, Sgd};
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp2::new(&mut store, "mlp", 3, 8, 1, &mut rng);
        let input = Matrix::column(&[0.2, -0.4, 0.9]);
        let target = 0.7f32;

        let loss_of = |store: &ParamStore| {
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = mlp.forward_sigmoid(&mut g, store, x);
            (g.value(y).data()[0] - target).powi(2)
        };
        let before = loss_of(&store);

        let mut opt = Sgd::new(0.5);
        for _ in 0..20 {
            store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = mlp.forward_sigmoid(&mut g, &store, x);
            let out = g.value(y).data()[0];
            let seed = Matrix::from_vec(1, 1, vec![2.0 * (out - target)]);
            g.backward(y, seed, &mut store);
            opt.step(&mut store);
        }
        let after = loss_of(&store);
        assert!(after < before, "training did not reduce loss: {before} -> {after}");
    }

    #[test]
    fn sigmoid_output_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp2::new(&mut store, "mlp", 5, 4, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[10.0, -10.0, 3.0, 0.0, 5.0]));
        let y = mlp.forward_sigmoid(&mut g, &store, x);
        for &v in g.value(y).data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
