//! Dense row-major `f32` matrix.
//!
//! The autodiff graph stores every intermediate value as a `Matrix`.  Vectors
//! are represented as single-column matrices; a mini-batch of `n` vectors is
//! a matrix with `n` columns, which is how the level-wise batched inference
//! of Section 4.3 is implemented.

use std::fmt;

/// Dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix dimensions do not match data length");
        Matrix { rows, cols, data }
    }

    /// Create a column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch: {}x{} * {}x{}", self.rows, self.cols, other.rows, other.cols);
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in row_out.iter_mut().zip(row_b.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise maximum.
    pub fn emax(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a.max(b))
    }

    /// Element-wise minimum.
    pub fn emin(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a.min(b))
    }

    /// Apply a scalar function element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Multiply all elements by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Add a column-vector bias to every column of the matrix.
    ///
    /// # Panics
    /// Panics if `bias` is not a `rows x 1` column vector.
    pub fn add_bias(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.cols, 1, "bias must be a column vector");
        assert_eq!(bias.rows, self.rows, "bias rows must match matrix rows");
        let mut out = self.clone();
        for r in 0..self.rows {
            let b = bias.data[r];
            for c in 0..self.cols {
                out.data[r * self.cols + c] += b;
            }
        }
        out
    }

    /// Sum over columns, producing a `rows x 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            let mut s = 0.0;
            for c in 0..self.cols {
                s += self.data[r * self.cols + c];
            }
            out.data[r] = s;
        }
        out
    }

    /// Vertically stack matrices (concatenate along rows); all inputs must
    /// have the same number of columns.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows needs at least one matrix");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows requires equal column counts");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontal concatenation (stack along columns); all inputs must have
    /// the same number of rows.  Used to batch vectors of the same plan-tree
    /// level into one forward pass.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one matrix");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut col_off = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols requires equal row counts");
            for r in 0..rows {
                for c in 0..p.cols {
                    out.data[r * cols + col_off + c] = p.data[r * p.cols + c];
                }
            }
            col_off += p.cols;
        }
        out
    }

    /// Extract a contiguous block of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "row slice out of range");
        let mut data = Vec::with_capacity(len * self.cols);
        data.extend_from_slice(&self.data[start * self.cols..(start + len) * self.cols]);
        Matrix { rows: len, cols: self.cols, data }
    }

    /// Extract a single column as a `rows x 1` matrix.
    pub fn column_at(&self, c: usize) -> Matrix {
        assert!(c < self.cols, "column out of range");
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.data[r * self.cols + c];
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// In-place element-wise addition (gradient accumulation).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Set all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.rows, other.rows, "element-wise op: row mismatch");
        assert_eq!(self.cols, other.cols, "element-wise op: col mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_bias_broadcasts() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::column(&[10.0, 20.0]);
        assert_eq!(a.add_bias(&b), Matrix::from_vec(2, 2, vec![11.0, 12.0, 23.0, 24.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::column(&[1.0, 5.0]);
        let b = Matrix::column(&[3.0, 2.0]);
        assert_eq!(a.emax(&b), Matrix::column(&[3.0, 5.0]));
        assert_eq!(a.emin(&b), Matrix::column(&[1.0, 2.0]));
        assert_eq!(a.hadamard(&b), Matrix::column(&[3.0, 10.0]));
        assert_eq!(a.add(&b), Matrix::column(&[4.0, 7.0]));
        assert_eq!(a.sub(&b), Matrix::column(&[-2.0, 3.0]));
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Matrix::column(&[1.0, 2.0]);
        let b = Matrix::column(&[3.0]);
        let v = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(v, Matrix::column(&[1.0, 2.0, 3.0]));

        let c = Matrix::column(&[1.0, 2.0]);
        let d = Matrix::column(&[3.0, 4.0]);
        let h = Matrix::concat_cols(&[&c, &d]);
        assert_eq!(h, Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]));
    }

    #[test]
    fn slice_and_column_access() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_rows(1, 2), Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        assert_eq!(a.column_at(1), Matrix::column(&[2.0, 4.0, 6.0]));
    }

    #[test]
    fn sum_cols_and_mean() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_cols(), Matrix::column(&[6.0, 15.0]));
        assert!((a.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::column(&[1.0, 2.0]);
        a.add_assign(&Matrix::column(&[0.5, 0.5]));
        assert_eq!(a, Matrix::column(&[1.5, 2.5]));
        a.fill_zero();
        assert_eq!(a, Matrix::column(&[0.0, 0.0]));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        #[test]
        fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
            // (A B)^T == B^T A^T
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn add_commutative(a in arb_matrix(3, 3), b in arb_matrix(3, 3)) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn emax_ge_both(a in arb_matrix(2, 5), b in arb_matrix(2, 5)) {
            let m = a.emax(&b);
            for i in 0..m.len() {
                prop_assert!(m.data()[i] >= a.data()[i]);
                prop_assert!(m.data()[i] >= b.data()[i]);
            }
        }
    }
}
