//! Dense row-major `f32` matrix.
//!
//! The autodiff graph stores every intermediate value as a `Matrix`.  Vectors
//! are represented as single-column matrices; a mini-batch of `n` vectors is
//! a matrix with `n` columns, which is how the level-wise batched inference
//! of Section 4.3 is implemented.
//!
//! # Kernels
//!
//! The hot path of batched inference is matrix multiplication.  All three
//! matmul variants route through the runtime-dispatched GEMM kernels in
//! [`crate::simd`]: on AVX2+FMA hosts an explicit 8x8 register-blocked
//! `vfmadd` microkernel over a packed-B panel layout
//! ([`crate::simd::gemm_f32`]), otherwise the original cache-blocked 8-wide
//! unrolled scalar kernel (byte-for-byte, so forced-scalar results stay on
//! the recorded golden bits).  The two paths follow the f32 tier's
//! tolerance-plus-per-path-determinism contract documented in `crate::simd`
//! and `docs/perf.md`.  `matmul_nt` / `matmul_tn` multiply by a transposed
//! operand *without* materializing the transpose — they are what
//! `Graph::backward` uses for `dA = dC·Bᵀ` and `dB = Aᵀ·dC`.
//!
//! Every kernel also has a `*_into` variant writing into a caller-provided
//! matrix, and the element-wise operations have in-place (`*_assign`,
//! `*_inplace`, `*_into`) variants; together they let steady-state forward
//! passes reuse buffers instead of allocating per op (see `Graph`'s buffer
//! recycling).  `matmul_naive` keeps the textbook triple loop as the oracle
//! the property tests compare the dispatched kernels against.

use std::fmt;

/// Dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix dimensions do not match data length");
        Matrix { rows, cols, data }
    }

    /// Create a column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix multiplication `self * other` (cache-blocked kernel).
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix multiplication into a caller-provided output matrix
    /// (overwritten, so `out` may hold stale data from a recycled buffer).
    ///
    /// Routes through the runtime-dispatched GEMM ([`crate::simd::gemm_f32`]):
    /// explicit AVX2+FMA 8x8 microkernel over packed-B panels, or the
    /// original cache-blocked scalar kernel under `E2E_FORCE_SCALAR=1` / on
    /// hosts without AVX2.
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.rows, self.rows, "matmul output row mismatch");
        assert_eq!(out.cols, other.cols, "matmul output col mismatch");
        crate::simd::gemm_f32(&self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data);
    }

    /// Reference textbook matmul (unblocked).  Kept as the oracle the
    /// property tests compare the blocked kernel against; not used on the
    /// hot path.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose: rows of `self`
    /// dot rows of `other`.  Backward uses this for `dA = dC · Bᵀ`.
    ///
    /// # Panics
    /// Panics unless `self` is `m x k` and `other` is `n x k`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dimension mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.rows, self.rows, "matmul_nt output row mismatch");
        assert_eq!(out.cols, other.rows, "matmul_nt output col mismatch");
        crate::simd::gemm_f32_nt(&self.data, self.rows, self.cols, &other.data, other.rows, &mut out.data);
    }

    /// Allocating wrapper over [`Matrix::matmul_nt_into`].
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `selfᵀ * other` without materializing the transpose, via axpy over
    /// rows of both operands.  Backward uses this for `dB = Aᵀ · dC`.
    ///
    /// # Panics
    /// Panics unless `self` is `m x k` and `other` is `m x n`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dimension mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.rows, self.cols, "matmul_tn output row mismatch");
        assert_eq!(out.cols, other.cols, "matmul_tn output col mismatch");
        crate::simd::gemm_f32_tn(&self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data);
    }

    /// Allocating wrapper over [`Matrix::matmul_tn_into`].
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// Transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise maximum.
    pub fn emax(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a.max(b))
    }

    /// Element-wise minimum.
    pub fn emin(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a.min(b))
    }

    /// Apply a scalar function element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Multiply all elements by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Add a column-vector bias to every column of the matrix.
    ///
    /// # Panics
    /// Panics if `bias` is not a `rows x 1` column vector.
    pub fn add_bias(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.cols, 1, "bias must be a column vector");
        assert_eq!(bias.rows, self.rows, "bias rows must match matrix rows");
        let mut out = self.clone();
        for r in 0..self.rows {
            let b = bias.data[r];
            for c in 0..self.cols {
                out.data[r * self.cols + c] += b;
            }
        }
        out
    }

    /// Sum over columns, producing a `rows x 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            let mut s = 0.0;
            for c in 0..self.cols {
                s += self.data[r * self.cols + c];
            }
            out.data[r] = s;
        }
        out
    }

    /// Vertically stack matrices (concatenate along rows); all inputs must
    /// have the same number of columns.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows needs at least one matrix");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows requires equal column counts");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontal concatenation (stack along columns); all inputs must have
    /// the same number of rows.  Used to batch vectors of the same plan-tree
    /// level into one forward pass.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one matrix");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut col_off = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols requires equal row counts");
            for r in 0..rows {
                for c in 0..p.cols {
                    out.data[r * cols + col_off + c] = p.data[r * p.cols + c];
                }
            }
            col_off += p.cols;
        }
        out
    }

    /// Extract a contiguous block of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "row slice out of range");
        let mut data = Vec::with_capacity(len * self.cols);
        data.extend_from_slice(&self.data[start * self.cols..(start + len) * self.cols]);
        Matrix { rows: len, cols: self.cols, data }
    }

    /// Extract a single column as a `rows x 1` matrix.
    pub fn column_at(&self, c: usize) -> Matrix {
        assert!(c < self.cols, "column out of range");
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.data[r * self.cols + c];
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// In-place element-wise addition (gradient accumulation).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place element-wise product.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Apply a scalar function element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Multiply all elements by a scalar in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Add a column-vector bias to every column, in place.
    ///
    /// # Panics
    /// Panics if `bias` is not a `rows x 1` column vector.
    pub fn add_bias_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.cols, 1, "bias must be a column vector");
        assert_eq!(bias.rows, self.rows, "bias rows must match matrix rows");
        for r in 0..self.rows {
            let b = bias.data[r];
            for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
                *v += b;
            }
        }
    }

    /// Write `self` with a column-vector bias broadcast over its columns
    /// into `out` (same shape as `self`), in one fused pass — the serving
    /// forward path's form, replacing a copy-then-`add_bias_assign` pair so
    /// the GEMM kernels aren't fed by per-call allocations or extra sweeps.
    ///
    /// # Panics
    /// Panics if `bias` is not a `rows x 1` column vector or `out` doesn't
    /// match `self`'s shape.
    pub fn add_bias_into(&self, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(bias.cols, 1, "bias must be a column vector");
        assert_eq!(bias.rows, self.rows, "bias rows must match matrix rows");
        assert_eq!(self.rows, out.rows, "add_bias_into: row mismatch");
        assert_eq!(self.cols, out.cols, "add_bias_into: col mismatch");
        for r in 0..self.rows {
            let b = bias.data[r];
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            let dst = &mut out.data[r * self.cols..(r + 1) * self.cols];
            for (o, &x) in dst.iter_mut().zip(src.iter()) {
                *o = x + b;
            }
        }
    }

    /// Write `self + other` into `out` (all three must agree in shape).
    pub fn add_into(&self, other: &Matrix, out: &mut Matrix) {
        self.zip_into(other, out, |a, b| a + b);
    }

    /// Write the element-wise product into `out`.
    pub fn hadamard_into(&self, other: &Matrix, out: &mut Matrix) {
        self.zip_into(other, out, |a, b| a * b);
    }

    /// Write the element-wise minimum into `out`.
    pub fn emin_into(&self, other: &Matrix, out: &mut Matrix) {
        self.zip_into(other, out, |a, b| a.min(b));
    }

    /// Write the element-wise maximum into `out`.
    pub fn emax_into(&self, other: &Matrix, out: &mut Matrix) {
        self.zip_into(other, out, |a, b| a.max(b));
    }

    /// Write `f` applied element-wise into `out` (same shape as `self`).
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: &mut Matrix) {
        assert_eq!(self.rows, out.rows, "map_into: row mismatch");
        assert_eq!(self.cols, out.cols, "map_into: col mismatch");
        for (o, &x) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(x);
        }
    }

    /// Set all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Consume the matrix, returning its backing buffer (for buffer pools).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Rebuild a matrix from a pooled buffer, reusing its capacity, without
    /// zero-filling: element values are **unspecified** (stale pool
    /// contents).  Only for callers that overwrite every element before
    /// reading — the tape's op kernels do.
    pub fn from_pooled_uninit(rows: usize, cols: usize, mut buffer: Vec<f32>) -> Self {
        let n = rows * cols;
        if buffer.len() > n {
            buffer.truncate(n);
        } else {
            buffer.resize(n, 0.0);
        }
        Matrix { rows, cols, data: buffer }
    }

    /// Clone `src` into a pooled buffer, reusing its capacity (no zero-fill
    /// pass — the copy overwrites everything).
    pub fn from_pooled_copy(src: &Matrix, mut buffer: Vec<f32>) -> Self {
        buffer.clear();
        buffer.extend_from_slice(&src.data);
        Matrix { rows: src.rows, cols: src.cols, data: buffer }
    }

    fn zip_into(&self, other: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.rows, other.rows, "element-wise op: row mismatch");
        assert_eq!(self.cols, other.cols, "element-wise op: col mismatch");
        assert_eq!(self.rows, out.rows, "element-wise op: output row mismatch");
        assert_eq!(self.cols, out.cols, "element-wise op: output col mismatch");
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = f(a, b);
        }
    }

    fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.rows, other.rows, "element-wise op: row mismatch");
        assert_eq!(self.cols, other.cols, "element-wise op: col mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_bias_broadcasts() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::column(&[10.0, 20.0]);
        assert_eq!(a.add_bias(&b), Matrix::from_vec(2, 2, vec![11.0, 12.0, 23.0, 24.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::column(&[1.0, 5.0]);
        let b = Matrix::column(&[3.0, 2.0]);
        assert_eq!(a.emax(&b), Matrix::column(&[3.0, 5.0]));
        assert_eq!(a.emin(&b), Matrix::column(&[1.0, 2.0]));
        assert_eq!(a.hadamard(&b), Matrix::column(&[3.0, 10.0]));
        assert_eq!(a.add(&b), Matrix::column(&[4.0, 7.0]));
        assert_eq!(a.sub(&b), Matrix::column(&[-2.0, 3.0]));
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Matrix::column(&[1.0, 2.0]);
        let b = Matrix::column(&[3.0]);
        let v = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(v, Matrix::column(&[1.0, 2.0, 3.0]));

        let c = Matrix::column(&[1.0, 2.0]);
        let d = Matrix::column(&[3.0, 4.0]);
        let h = Matrix::concat_cols(&[&c, &d]);
        assert_eq!(h, Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]));
    }

    #[test]
    fn slice_and_column_access() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_rows(1, 2), Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        assert_eq!(a.column_at(1), Matrix::column(&[2.0, 4.0, 6.0]));
    }

    #[test]
    fn sum_cols_and_mean() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_cols(), Matrix::column(&[6.0, 15.0]));
        assert!((a.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::column(&[1.0, 2.0]);
        a.add_assign(&Matrix::column(&[0.5, 0.5]));
        assert_eq!(a, Matrix::column(&[1.5, 2.5]));
        a.fill_zero();
        assert_eq!(a, Matrix::column(&[0.0, 0.0]));
    }

    /// Deterministic pseudo-random matrix for kernel cross-checks.
    fn lcg_matrix(rows: usize, cols: usize, mut seed: u32) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                (seed >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Per-element tolerance scaled by the magnitude flowing into the sum.
    fn assert_close(a: &Matrix, b: &Matrix, scale: f32) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + scale), "{x} vs {y} (scale {scale})");
        }
    }

    #[test]
    fn blocked_matmul_crosses_tile_boundaries() {
        // Shapes straddling the KC/NC = 64 tile edges exercise the packed
        // multi-tile path the small property shapes never reach.
        for (m, k, n) in [(1, 1, 1), (3, 64, 64), (7, 65, 129), (130, 70, 100), (5, 200, 33)] {
            let a = lcg_matrix(m, k, (m * 31 + k) as u32);
            let b = lcg_matrix(k, n, (k * 17 + n) as u32);
            assert_close(&a.matmul(&b), &a.matmul_naive(&b), k as f32);
        }
    }

    #[test]
    fn transposed_kernels_match_explicit_transpose() {
        for (m, k, n) in [(3, 5, 4), (17, 66, 40), (64, 64, 64), (2, 130, 9)] {
            let a = lcg_matrix(m, k, 11);
            let b = lcg_matrix(n, k, 22);
            // A * Bᵀ
            assert_close(&a.matmul_nt(&b), &a.matmul_naive(&b.transpose()), k as f32);
            // Aᵀ * C
            let c = lcg_matrix(m, n, 33);
            assert_close(&a.matmul_tn(&c), &a.transpose().matmul_naive(&c), m as f32);
        }
    }

    #[test]
    fn matmul_into_overwrites_stale_buffer() {
        let a = lcg_matrix(4, 6, 1);
        let b = lcg_matrix(6, 5, 2);
        let mut out = Matrix::full(4, 5, 123.0);
        a.matmul_into(&b, &mut out);
        assert_close(&out, &a.matmul_naive(&b), 6.0);
    }

    #[test]
    fn inplace_variants_match_allocating_ops() {
        let a = lcg_matrix(5, 7, 3);
        let b = lcg_matrix(5, 7, 4);

        let mut h = a.clone();
        h.hadamard_assign(&b);
        assert_eq!(h, a.hadamard(&b));

        let mut s = a.clone();
        s.scale_inplace(2.5);
        assert_eq!(s, a.scale(2.5));

        let mut m = a.clone();
        m.map_inplace(|x| x.max(0.0));
        assert_eq!(m, a.map(|x| x.max(0.0)));

        let bias = Matrix::column(&[1.0, -2.0, 0.5, 3.0, -1.0]);
        let mut ab = a.clone();
        ab.add_bias_assign(&bias);
        assert_eq!(ab, a.add_bias(&bias));
    }

    #[test]
    fn into_variants_match_allocating_ops() {
        let a = lcg_matrix(6, 4, 9);
        let b = lcg_matrix(6, 4, 10);
        let mut out = Matrix::full(6, 4, 9.9);
        a.add_into(&b, &mut out);
        assert_eq!(out, a.add(&b));
        a.hadamard_into(&b, &mut out);
        assert_eq!(out, a.hadamard(&b));
        a.emin_into(&b, &mut out);
        assert_eq!(out, a.emin(&b));
        a.emax_into(&b, &mut out);
        assert_eq!(out, a.emax(&b));
        a.map_into(|x| x * x, &mut out);
        assert_eq!(out, a.map(|x| x * x));
        let bias = Matrix::column(&[1.0, -2.0, 0.5, 3.0, -1.0, 0.25]);
        a.add_bias_into(&bias, &mut out);
        assert_eq!(out, a.add_bias(&bias));
    }

    #[test]
    fn buffer_recycling_roundtrip() {
        // from_pooled_uninit reuses the recycled allocation and never
        // exposes lengths beyond rows*cols; contents are unspecified by
        // contract (beyond zero-filled growth past the old length).
        let buf = lcg_matrix(8, 8, 5).into_vec();
        let capacity = buf.capacity();
        let recycled = Matrix::from_pooled_uninit(4, 6, buf);
        assert_eq!((recycled.rows(), recycled.cols(), recycled.len()), (4, 6, 24));
        assert_eq!(recycled.into_vec().capacity(), capacity, "allocation was not reused");
        let grown = Matrix::from_pooled_uninit(4, 4, vec![1.0; 2]);
        assert_eq!(grown.len(), 16);

        let copied = Matrix::from_pooled_copy(&Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]), Vec::new());
        assert_eq!(copied, Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols).prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        #[test]
        fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
            // (A B)^T == B^T A^T
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn add_commutative(a in arb_matrix(3, 3), b in arb_matrix(3, 3)) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn emax_ge_both(a in arb_matrix(2, 5), b in arb_matrix(2, 5)) {
            let m = a.emax(&b);
            for i in 0..m.len() {
                prop_assert!(m.data()[i] >= a.data()[i]);
                prop_assert!(m.data()[i] >= b.data()[i]);
            }
        }

        #[test]
        fn blocked_matmul_matches_naive_random_shapes(
            m in 1usize..24, k in 1usize..24, n in 1usize..24,
            a_data in proptest::collection::vec(-1.0f32..1.0, 576),
            b_data in proptest::collection::vec(-1.0f32..1.0, 576),
        ) {
            let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            for (x, y) in blocked.data().iter().zip(naive.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4, "blocked {x} vs naive {y}");
            }
        }

        #[test]
        fn transposed_kernels_match_naive_random_shapes(
            m in 1usize..20, k in 1usize..20, n in 1usize..20,
            a_data in proptest::collection::vec(-1.0f32..1.0, 400),
            b_data in proptest::collection::vec(-1.0f32..1.0, 400),
        ) {
            let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
            let bt = Matrix::from_vec(n, k, b_data[..n * k].to_vec());
            let nt = a.matmul_nt(&bt);
            let reference = a.matmul_naive(&bt.transpose());
            for (x, y) in nt.data().iter().zip(reference.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4, "matmul_nt {x} vs naive {y}");
            }
            let c = Matrix::from_vec(m, n, b_data[..m * n].to_vec());
            let tn = a.matmul_tn(&c);
            let reference = a.transpose().matmul_naive(&c);
            for (x, y) in tn.data().iter().zip(reference.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4, "matmul_tn {x} vs naive {y}");
            }
        }

        /// Remainder shapes for the dispatched kernels: extents straddling
        /// the 8-wide vector boundary, single rows/columns, empty shapes,
        /// and multi-tile depths/widths — every `matmul_*_into` variant
        /// against the naive oracle.  The normal test lane exercises the
        /// AVX2 dispatch path (where the host has it); CI's forced-scalar
        /// lane re-runs this with `E2E_FORCE_SCALAR=1`, and `crate::simd`'s
        /// own property tests pin the two paths bit-identical.
        #[test]
        fn all_matmul_kernels_match_naive_at_remainder_shapes(
            m in proptest::sample::select(vec![0usize, 1, 2, 7, 8, 9, 15, 17, 65]),
            k in proptest::sample::select(vec![0usize, 1, 2, 7, 8, 9, 15, 17, 65, 100]),
            n in proptest::sample::select(vec![0usize, 1, 2, 7, 8, 9, 15, 17, 65, 100]),
            seed in 0u32..1_000_000,
        ) {
            let lcg = |len: usize, mut s: u32| -> Vec<f32> {
                (0..len).map(|_| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    // Small magnitudes keep accumulated rounding differences
                    // far inside the strict 1e-4 bound even at depth 100.
                    (s >> 8) as f32 / (1u32 << 24) as f32 * 0.5 - 0.25
                }).collect()
            };
            let close = |got: &Matrix, want: &Matrix, kernel: &str| -> Result<(), String> {
                prop_assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
                for (x, y) in got.data().iter().zip(want.data().iter()) {
                    prop_assert!((x - y).abs() < 1e-4, "{} {} vs naive {} at {}x{}x{}", kernel, x, y, m, k, n);
                }
                Ok(())
            };

            let a = Matrix::from_vec(m, k, lcg(m * k, seed ^ 0x51));
            let b = Matrix::from_vec(k, n, lcg(k * n, seed ^ 0xa7));
            let mut out = Matrix::full(m, n, f32::NAN);
            a.matmul_into(&b, &mut out);
            close(&out, &a.matmul_naive(&b), "matmul_into")?;

            let bt = Matrix::from_vec(n, k, lcg(n * k, seed ^ 0x1c3));
            let mut out = Matrix::full(m, n, f32::NAN);
            a.matmul_nt_into(&bt, &mut out);
            close(&out, &a.matmul_naive(&bt.transpose()), "matmul_nt_into")?;

            let c = Matrix::from_vec(m, n, lcg(m * n, seed ^ 0x2e5));
            let mut out = Matrix::full(k, n, f32::NAN);
            a.matmul_tn_into(&c, &mut out);
            close(&out, &a.transpose().matmul_naive(&c), "matmul_tn_into")?;
        }

        #[test]
        fn matmul_into_agrees_with_matmul(
            m in 1usize..16, k in 1usize..16, n in 1usize..16,
            a_data in proptest::collection::vec(-1.0f32..1.0, 256),
            b_data in proptest::collection::vec(-1.0f32..1.0, 256),
        ) {
            let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
            let mut out = Matrix::full(m, n, f32::NAN);
            a.matmul_into(&b, &mut out);
            prop_assert_eq!(out, a.matmul(&b));
        }
    }
}
