//! Target normalization and the q-error training loss (Section 4.3).
//!
//! The estimation layer outputs sigmoid values in `[0, 1]`; targets (true
//! cost / cardinality) are mapped into that range by min-max normalizing
//! their natural logarithm over the training set.  With that mapping,
//! `|out - target| * (log_max - log_min)` is exactly `ln(q-error)`, so the
//! training loss is the log of the paper's q-error — monotone in it and
//! numerically stable — and the reported metric is the q-error itself.

use serde::{Deserialize, Serialize};

/// Min-max statistics of `ln(value)` over a training set, used to normalize
/// targets into `[0, 1]` and denormalize model outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizationStats {
    pub log_min: f64,
    pub log_max: f64,
}

impl NormalizationStats {
    /// Fit the statistics over raw (unnormalized) values; values are clamped
    /// to at least 1.0 before taking logs.
    pub fn fit(values: &[f64]) -> Self {
        let mut log_min = f64::INFINITY;
        let mut log_max = f64::NEG_INFINITY;
        for &v in values {
            let lv = v.max(1.0).ln();
            log_min = log_min.min(lv);
            log_max = log_max.max(lv);
        }
        if !log_min.is_finite() || !log_max.is_finite() {
            log_min = 0.0;
            log_max = 1.0;
        }
        if (log_max - log_min) < 1e-9 {
            log_max = log_min + 1.0;
        }
        NormalizationStats { log_min, log_max }
    }

    /// Map a raw value to `[0, 1]`.
    pub fn normalize(&self, value: f64) -> f32 {
        let lv = value.max(1.0).ln();
        (((lv - self.log_min) / (self.log_max - self.log_min)).clamp(0.0, 1.0)) as f32
    }

    /// Map a normalized model output back to a raw value.
    pub fn denormalize(&self, normalized: f32) -> f64 {
        let n = normalized.clamp(0.0, 1.0) as f64;
        (self.log_min + n * (self.log_max - self.log_min)).exp()
    }

    /// Width of the log range; scales normalized differences to log q-errors.
    pub fn log_range(&self) -> f64 {
        self.log_max - self.log_min
    }

    /// Training loss and output-gradient for one (output, target) pair in
    /// normalized space.  Returns `(loss, dloss/doutput)` where the loss is
    /// `ln(q-error) = |out - target| * log_range`, smoothed around zero to
    /// keep the gradient finite.
    pub fn loss_and_grad(&self, output: f32, target: f32) -> (f64, f32) {
        let range = self.log_range() as f32;
        let diff = output - target;
        let delta = 0.01f32;
        if diff.abs() <= delta {
            // Quadratic region (Huber-style smoothing).
            let loss = 0.5 * (diff * diff / delta) * range;
            (loss as f64, range * diff / delta)
        } else {
            let loss = (diff.abs() - 0.5 * delta) * range;
            (loss as f64, range * diff.signum())
        }
    }
}

/// Convert a normalized (output, target) pair into a q-error given the
/// normalization statistics used during training.
pub fn qerror_from_normalized(stats: &NormalizationStats, output: f32, target: f32) -> f64 {
    let est = stats.denormalize(output);
    let real = stats.denormalize(target);
    metrics_qerror(est, real)
}

fn metrics_qerror(est: f64, real: f64) -> f64 {
    let e = est.max(1.0);
    let r = real.max(1.0);
    if e > r {
        e / r
    } else {
        r / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_roundtrip() {
        let stats = NormalizationStats::fit(&[1.0, 10.0, 100.0, 100000.0]);
        for v in [1.0, 57.0, 4242.0, 100000.0] {
            let n = stats.normalize(v);
            let back = stats.denormalize(n);
            assert!((back.ln() - v.ln()).abs() < 1e-3, "{v} -> {n} -> {back}");
        }
    }

    #[test]
    fn normalize_clamps_outside_range() {
        let stats = NormalizationStats::fit(&[10.0, 1000.0]);
        assert_eq!(stats.normalize(1.0), 0.0);
        assert_eq!(stats.normalize(1e9), 1.0);
    }

    #[test]
    fn degenerate_fit_does_not_divide_by_zero() {
        let stats = NormalizationStats::fit(&[5.0, 5.0, 5.0]);
        assert!(stats.log_range() > 0.0);
        let n = stats.normalize(5.0);
        assert!(n.is_finite());
    }

    #[test]
    fn empty_fit_is_sane() {
        let stats = NormalizationStats::fit(&[]);
        assert!(stats.log_range() > 0.0);
    }

    #[test]
    fn loss_zero_at_target() {
        let stats = NormalizationStats::fit(&[1.0, 1e6]);
        let (loss, grad) = stats.loss_and_grad(0.4, 0.4);
        assert_eq!(loss, 0.0);
        assert_eq!(grad, 0.0);
    }

    #[test]
    fn loss_increases_with_distance() {
        let stats = NormalizationStats::fit(&[1.0, 1e6]);
        let (l1, _) = stats.loss_and_grad(0.5, 0.4);
        let (l2, _) = stats.loss_and_grad(0.7, 0.4);
        assert!(l2 > l1);
    }

    #[test]
    fn gradient_sign_points_toward_target() {
        let stats = NormalizationStats::fit(&[1.0, 1e6]);
        let (_, g_over) = stats.loss_and_grad(0.9, 0.2);
        let (_, g_under) = stats.loss_and_grad(0.1, 0.8);
        assert!(g_over > 0.0);
        assert!(g_under < 0.0);
    }

    #[test]
    fn qerror_matches_log_distance() {
        let stats = NormalizationStats::fit(&[1.0, (1e6_f64).exp()]);
        // log range is about 13.8; a normalized distance d corresponds to
        // q-error exp(d * range).
        let q = qerror_from_normalized(&stats, 0.6, 0.5);
        let expected = (0.1 * stats.log_range()).exp();
        assert!((q.ln() - expected.ln()).abs() < 0.05, "{q} vs {expected}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_within_range(vals in proptest::collection::vec(1.0f64..1e9, 2..50), idx in 0usize..50) {
            let stats = NormalizationStats::fit(&vals);
            let v = vals[idx % vals.len()];
            let back = stats.denormalize(stats.normalize(v));
            prop_assert!((back.ln() - v.ln()).abs() < 1e-2);
        }

        #[test]
        fn normalized_in_unit_interval(vals in proptest::collection::vec(1.0f64..1e9, 2..50), probe in 0.0f64..1e12) {
            let stats = NormalizationStats::fit(&vals);
            let n = stats.normalize(probe);
            prop_assert!((0.0..=1.0).contains(&n));
        }

        #[test]
        fn qerror_ge_one_from_normalized(a in 0.0f32..1.0, b in 0.0f32..1.0) {
            let stats = NormalizationStats::fit(&[1.0, 1e8]);
            prop_assert!(qerror_from_normalized(&stats, a, b) >= 1.0);
        }
    }
}
