//! Per-channel symmetric int8 weight quantization for the tiered
//! (approximate-first) inference path.
//!
//! The estimator's inference cost is dominated by `Linear` matmuls whose
//! left operand is a trained weight matrix.  Those weights are static after
//! training, so they can be quantized **once at checkpoint-publish time**:
//! each output channel (weight-matrix row) gets its own symmetric scale
//! `s_i = maxabs(row_i) / 127` and the row is stored as `i8` codes
//! `q = round(v / s_i)`.  Activations are quantized *dynamically* per
//! forward pass (per input column, since the level-batched layout puts one
//! plan-tree node per column), the inner product runs over the int8 codes
//! through the runtime-dispatched [`crate::simd::dot_i8`] kernel — twice
//! the SIMD product width of f32 — and the i32 result is dequantized by
//! `s_i * s_col` straight into the caller's f32 output matrix.  Everything
//! downstream (bias add, activations, the tape, `SubtreeStateCache`
//! entries) stays plain f32, which is what lets the quantized tier share
//! state layouts with the full-precision tier.
//!
//! Biases and 1-column parameters are never quantized — they are O(dim)
//! per layer and contribute nothing to the matmul cost.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::simd;

/// A weight matrix stored as per-row symmetric int8 codes plus one f32
/// scale per output channel (row).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    /// Row-major int8 codes, `rows * cols` of them.
    data: Vec<i8>,
    /// One dequantization scale per row; `1.0` for all-zero rows.
    scales: Vec<f32>,
    /// The codes re-packed for [`simd::gemm_i8_pairs`]: `rows * pairs` i32
    /// words, each holding a depth pair `(data[i][2p], data[i][2p+1])` in
    /// its low/high i16 halves (zero pad for odd depth).  Derived from
    /// `data` at construction; never serialized.
    packed_w: Vec<i32>,
}

/// `depth` packed into madd pairs.
#[inline]
fn pair_count(depth: usize) -> usize {
    depth.div_ceil(2)
}

/// Build the pair-packed i32 form of row-major i8 codes.
fn pack_weight_pairs(rows: usize, depth: usize, data: &[i8]) -> Vec<i32> {
    let pairs = pair_count(depth);
    let mut packed = vec![0i32; rows * pairs];
    for i in 0..rows {
        let row = &data[i * depth..(i + 1) * depth];
        for p in 0..pairs {
            let lo = row[2 * p] as i16 as u16 as u32;
            let hi = if 2 * p + 1 < depth { row[2 * p + 1] as i16 as u16 as u32 } else { 0 };
            packed[i * pairs + p] = (lo | (hi << 16)) as i32;
        }
    }
    packed
}

/// Activations of one forward-pass matrix, quantized per column and laid
/// out for [`simd::gemm_i8_pairs`]: interleaved i16 code pairs plus the
/// per-column dequantization scales.  Packing costs one pass over the
/// matrix and is **reused across every weight matrix multiplying the same
/// activations** — the four LSTM gate matmuls of a cell application share
/// one pack (see `Graph::matmul_quant`'s cache).
#[derive(Debug, Clone)]
pub struct PackedActivations {
    depth: usize,
    n: usize,
    /// `n` rounded up to a multiple of 8 (the GEMM's column block).
    n_pad: usize,
    /// Interleaved codes, `pair_count(depth) * n_pad * 2` of them.
    codes: Vec<i16>,
    /// Per-column symmetric scales (`1.0` for all-zero and pad columns).
    scales: Vec<f32>,
}

impl PackedActivations {
    /// Quantize a `depth x n` activation matrix, one symmetric scale per
    /// column: `s_j = maxabs(col_j) / 127`, codes
    /// `round_ties_even(v * (127 / maxabs)).clamp(-127, 127)`.
    ///
    /// Reciprocal multiply and even-ties rounding (instead of divide and
    /// away-ties `round`) keep every inner loop branch-free vectorizable
    /// arithmetic — this pass runs on every quantized matmul's activations,
    /// so it must not cost what the GEMM saves.  All-zero columns get a
    /// zero reciprocal, which quantizes them to exact-zero codes with the
    /// neutral scale `1.0`.  Deterministic: plain f32 arithmetic, identical
    /// on every dispatch path.
    pub fn pack(x: &Matrix) -> Self {
        let (depth, n) = (x.rows(), x.cols());
        let pairs = pair_count(depth);
        let n_pad = n.next_multiple_of(8);
        let mut maxabs = vec![0.0f32; n];
        // Row-major maxabs sweep: contiguous reads, per-column maxima.
        for k in 0..depth {
            let row = &x.data()[k * n..(k + 1) * n];
            for (m, &v) in maxabs.iter_mut().zip(row.iter()) {
                *m = m.max(v.abs());
            }
        }
        let mut scales = vec![1.0f32; n_pad];
        let mut inv = vec![0.0f32; n];
        for j in 0..n {
            if maxabs[j] != 0.0 {
                scales[j] = maxabs[j] / 127.0;
                inv[j] = 127.0 / maxabs[j];
            }
        }
        // Quantize and interleave through the dispatched kernel (both
        // paths produce identical codes; see `simd::quantize_interleave`).
        let mut codes = vec![0i16; pairs * n_pad * 2];
        simd::quantize_interleave(x.data(), depth, n, n_pad, &inv, &mut codes);
        PackedActivations { depth, n, n_pad, codes, scales }
    }

    /// Depth (rows of the packed activation matrix).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of activation columns.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl QuantMatrix {
    /// Quantize an f32 matrix with one symmetric scale per row.
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &m.data()[r * cols..(r + 1) * cols];
            let maxabs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
            scales.push(scale);
            for &v in row {
                data.push((v / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        let packed_w = pack_weight_pairs(rows, cols, &data);
        QuantMatrix { rows, cols, data, scales, packed_w }
    }

    /// Rebuild from checkpoint-deserialized parts.
    ///
    /// # Panics
    /// Panics if `data` / `scales` lengths disagree with the shape.
    pub fn from_parts(rows: usize, cols: usize, scales: Vec<f32>, data: Vec<i8>) -> Self {
        assert_eq!(data.len(), rows * cols, "quantized data length mismatch");
        assert_eq!(scales.len(), rows, "quantized scale count mismatch");
        let packed_w = pack_weight_pairs(rows, cols, &data);
        QuantMatrix { rows, cols, data, scales, packed_w }
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major int8 codes (for checkpoint serialization).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row dequantization scales (for checkpoint serialization).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Expand back to f32 (`q * scale` per element).  Test/debug helper —
    /// the inference path never materializes this.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for c in 0..self.cols {
                out.set(r, c, self.data[r * self.cols + c] as f32 * s);
            }
        }
        out
    }

    /// Quantized matmul `self * x` into a caller-provided f32 output
    /// (overwritten).  Activations are quantized dynamically per column of
    /// `x` with their own symmetric scale ([`PackedActivations::pack`]),
    /// the int8 inner products run through the pair-packed
    /// [`simd::gemm_i8_pairs`] GEMM and dequantize directly into `out`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_into(&self, x: &Matrix, out: &mut Matrix) {
        self.matmul_packed(&PackedActivations::pack(x), out);
    }

    /// [`QuantMatrix::matmul_into`] over pre-packed activations, so callers
    /// multiplying several weight matrices against the same activations
    /// (the four LSTM gates) pay the quantize-and-pack pass once.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_packed(&self, xp: &PackedActivations, out: &mut Matrix) {
        assert_eq!(
            self.cols, xp.depth,
            "quant matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, xp.depth, xp.n
        );
        assert_eq!(out.rows(), self.rows, "quant matmul output row mismatch");
        assert_eq!(out.cols(), xp.n, "quant matmul output col mismatch");
        simd::gemm_i8_pairs(
            &self.packed_w,
            self.rows,
            pair_count(self.cols),
            &xp.codes,
            xp.n_pad,
            &self.scales,
            &xp.scales,
            out.data_mut(),
            xp.n,
        );
    }

    /// Allocating wrapper over [`QuantMatrix::matmul_into`].
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.matmul_into(x, &mut out);
        out
    }
}

/// Quantized companions for a [`ParamStore`]'s weight matrices, indexed by
/// [`ParamId`].  Only 2-D weights (more than one column) are quantized;
/// biases and column vectors stay f32 and slot `None`.
#[derive(Debug, Clone, Default)]
pub struct QuantWeights {
    mats: Vec<Option<QuantMatrix>>,
}

impl QuantWeights {
    /// Quantize every 2-D weight matrix in the store.
    pub fn from_store(store: &ParamStore) -> Self {
        let mats = store
            .params()
            .iter()
            .map(|p| if p.value.cols() > 1 { Some(QuantMatrix::quantize(&p.value)) } else { None })
            .collect();
        QuantWeights { mats }
    }

    /// Rebuild an empty table sized for `n_params` slots (checkpoint load).
    pub fn with_slots(n_params: usize) -> Self {
        QuantWeights { mats: (0..n_params).map(|_| None).collect() }
    }

    /// Install a deserialized matrix at a parameter slot.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn set_slot(&mut self, index: usize, m: QuantMatrix) {
        self.mats[index] = Some(m);
    }

    /// The quantized form of a parameter, if that parameter was quantized.
    pub fn get(&self, id: ParamId) -> Option<&QuantMatrix> {
        self.mats.get(id.0).and_then(|m| m.as_ref())
    }

    /// Iterate `(param index, quantized matrix)` over populated slots, in
    /// slot order (checkpoint save).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &QuantMatrix)> {
        self.mats.iter().enumerate().filter_map(|(i, m)| m.as_ref().map(|q| (i, q)))
    }

    /// Number of populated (quantized) slots.
    pub fn n_quantized(&self) -> usize {
        self.mats.iter().filter(|m| m.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_matrix(rows: usize, cols: usize, mut seed: u32) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                (seed >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_a_step() {
        let m = lcg_matrix(9, 13, 77);
        let q = QuantMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            let step = q.scales()[r];
            for c in 0..m.cols() {
                let err = (m.get(r, c) - back.get(r, c)).abs();
                assert!(err <= step * 0.5 + 1e-7, "row {r}: err {err} > half-step {}", step * 0.5);
            }
        }
    }

    #[test]
    fn zero_rows_and_extreme_rows_quantize_safely() {
        let m = Matrix::from_vec(3, 4, vec![0.0, 0.0, 0.0, 0.0, 1000.0, -1000.0, 500.0, 0.25, -1e-6, 1e-6, 0.0, 0.0]);
        let q = QuantMatrix::quantize(&m);
        assert_eq!(q.scales()[0], 1.0, "all-zero row gets the neutral scale");
        assert!(q.data()[..4].iter().all(|&v| v == 0));
        assert_eq!(q.data()[4], 127);
        assert_eq!(q.data()[5], -127);
        let back = q.dequantize();
        assert!((back.get(1, 0) - 1000.0).abs() < 1e-3);
        // Tiny-magnitude rows keep finite scales and exact-zero codes.
        assert!(q.scales()[2] > 0.0 && q.scales()[2].is_finite());
    }

    #[test]
    fn quant_matmul_tracks_f32_matmul() {
        let w = lcg_matrix(12, 20, 5);
        let x = lcg_matrix(20, 7, 6);
        let q = QuantMatrix::quantize(&w);
        let approx = q.matmul(&x);
        let exact = w.matmul(&x);
        for i in 0..exact.len() {
            let (a, e) = (approx.data()[i], exact.data()[i]);
            // Two int8 quantizations: relative error stays within ~2%
            // of the column magnitude for well-scaled inputs.
            assert!((a - e).abs() < 0.05 * (1.0 + e.abs()), "quant {a} vs exact {e}");
        }
    }

    #[test]
    fn quant_matmul_zero_column_is_exactly_zero() {
        let w = lcg_matrix(4, 6, 9);
        let mut x = lcg_matrix(6, 3, 10);
        for k in 0..6 {
            x.set(k, 1, 0.0);
        }
        let q = QuantMatrix::quantize(&w);
        let out = q.matmul(&x);
        for i in 0..4 {
            assert_eq!(out.get(i, 1), 0.0);
        }
    }

    #[test]
    fn from_parts_roundtrips_serialization_accessors() {
        let m = lcg_matrix(5, 8, 3);
        let q = QuantMatrix::quantize(&m);
        let rebuilt = QuantMatrix::from_parts(q.rows(), q.cols(), q.scales().to_vec(), q.data().to_vec());
        assert_eq!(rebuilt, q);
    }

    #[test]
    fn quant_weights_skip_biases_and_serve_by_param_id() {
        let mut store = ParamStore::new();
        let w = store.add("layer.w", lcg_matrix(6, 10, 1));
        let b = store.add("layer.b", Matrix::zeros(6, 1));
        let qw = QuantWeights::from_store(&store);
        assert!(qw.get(w).is_some(), "2-D weight must be quantized");
        assert!(qw.get(b).is_none(), "bias column must stay f32");
        assert_eq!(qw.n_quantized(), 1);
        assert_eq!(qw.iter().count(), 1);

        let mut rebuilt = QuantWeights::with_slots(store.params().len());
        for (idx, m) in qw.iter() {
            rebuilt.set_slot(idx, m.clone());
        }
        assert_eq!(rebuilt.get(w), qw.get(w));
        assert_eq!(rebuilt.n_quantized(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The dispatched quantized matmul (whatever kernel path this host
        /// selected) agrees bit-for-bit with the scalar reference kernels
        /// on random shapes — the quant-tier determinism contract.
        #[test]
        fn dispatched_quant_matmul_bit_matches_scalar_kernels(
            rows in 1usize..20, depth in 1usize..50, n in 1usize..20,
            seed in 0u32..1_000_000,
        ) {
            let lcg = |len: usize, mut s: u32| -> Vec<f32> {
                (0..len).map(|_| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    (s >> 8) as f32 / (1u32 << 24) as f32 * 4.0 - 2.0
                }).collect()
            };
            let w = Matrix::from_vec(rows, depth, lcg(rows * depth, seed ^ 0x5a));
            let x = Matrix::from_vec(depth, n, lcg(depth * n, seed ^ 0xa5));
            let q = QuantMatrix::quantize(&w);
            let xp = PackedActivations::pack(&x);

            // Codes must match the scalar quantizer exactly.
            let mut codes = vec![0i16; pair_count(depth) * xp.n_pad * 2];
            simd::quantize_interleave_scalar(x.data(), depth, n, xp.n_pad, &{
                let mut inv = vec![0.0f32; n];
                for (j, slot) in inv.iter_mut().enumerate() {
                    let m = (0..depth).map(|k| x.get(k, j).abs()).fold(0.0f32, f32::max);
                    if m != 0.0 { *slot = 127.0 / m; }
                }
                inv
            }, &mut codes);
            prop_assert_eq!(&codes, &xp.codes);

            // And the dispatched GEMM must match the scalar GEMM bit-for-bit.
            let got = q.matmul(&x);
            let mut want = vec![0.0f32; rows * n];
            simd::gemm_i8_pairs_scalar(
                &q.packed_w, rows, pair_count(depth), &xp.codes, xp.n_pad,
                &q.scales, &xp.scales, &mut want, n,
            );
            prop_assert_eq!(
                got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// Quantized matmul stays within the analytic error bound of the
        /// f32 matmul on random shapes (including vector-width remainders)
        /// and values.
        #[test]
        fn quant_matmul_error_is_bounded(
            rows in 1usize..12, depth in 1usize..40, n in 1usize..6,
            seed in 0u32..1_000_000,
        ) {
            let lcg = |len: usize, mut s: u32| -> Vec<f32> {
                (0..len).map(|_| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    (s >> 8) as f32 / (1u32 << 24) as f32 * 4.0 - 2.0
                }).collect()
            };
            let w = Matrix::from_vec(rows, depth, lcg(rows * depth, seed ^ 0x11));
            let x = Matrix::from_vec(depth, n, lcg(depth * n, seed ^ 0x22));
            let q = QuantMatrix::quantize(&w);
            let approx = q.matmul(&x);
            let exact = w.matmul(&x);
            // Worst case: each of `depth` products carries half-step error
            // from both operands.
            for j in 0..n {
                let col_max = (0..depth).map(|k| x.get(k, j).abs()).fold(0.0f32, f32::max);
                let x_step = col_max / 127.0;
                for i in 0..rows {
                    let w_row_max = (0..depth).map(|k| w.get(i, k).abs()).fold(0.0f32, f32::max);
                    let w_step = q.scales()[i];
                    let bound = depth as f32 * 0.5 * (x_step * (w_row_max + w_step) + w_step * col_max) + 1e-5;
                    let err = (approx.get(i, j) - exact.get(i, j)).abs();
                    prop_assert!(err <= bound, "err {} > bound {} at ({}, {})", err, bound, i, j);
                }
            }
        }
    }
}
