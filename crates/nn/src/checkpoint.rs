//! Versioned binary checkpoint I/O.
//!
//! The wire format is deliberately tiny and dependency-free: every section
//! starts with an 8-byte magic, a `u32` version and a `u8` *kind* tag, and
//! all integers/floats are little-endian.  The parameter payload written by
//! [`crate::ParamStore::save_to`] is the raw `f32` bit pattern of every
//! tensor, so a save/load round trip is **bit-identical** — a reloaded model
//! produces exactly the estimates the saved one did.
//!
//! Versioning policy: the layout of a section may only change together with
//! a bump of [`FORMAT_VERSION`]; loaders reject any version they do not
//! know with [`CheckpointError::UnsupportedVersion`] instead of guessing.
//! Malformed input of any other sort (wrong magic, truncation, absurd
//! lengths, wrong kind tag) fails with the corresponding typed error —
//! never a panic and never a partially-applied load.

use std::fmt;
use std::io::{Read, Write};

/// Magic prefix of every checkpoint section written by this workspace.
pub const MAGIC: [u8; 8] = *b"E2ECKPT\0";

/// Current checkpoint format version.
///
/// * **v1** — model state only: config sections, vocab, raw-f32 parameter
///   values.
/// * **v2** — adds an optional trailing *training-state* block to the
///   tree-estimator and MSCN sections (Adam step count + first/second
///   moments, epochs completed, early-stop state) so training resumes
///   bit-identically from a checkpoint.  The shared header and every v1
///   section layout are unchanged; v1 files remain loadable.
/// * **v3** — adds an optional trailing *quantized-weights* block to the
///   tree-estimator section (per-channel symmetric int8 codes + f32 scales
///   for each 2-D weight matrix, produced at publish time) powering the
///   tiered inference path.  A presence flag makes the block optional: a
///   v3 file without it loads full-precision only.  v1/v2 files remain
///   loadable; [`MIN_FORMAT_VERSION`] is unchanged.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Section kind tag: a bare [`crate::ParamStore`] parameter payload.
pub const KIND_PARAMS: u8 = 0;
/// Section kind tag: a full tree-model estimator checkpoint.
pub const KIND_TREE_ESTIMATOR: u8 = 1;
/// Section kind tag: an MSCN estimator checkpoint.
pub const KIND_MSCN: u8 = 2;

/// Upper bound on any serialized string length (names, vocab keys).
const MAX_STRING_LEN: u32 = 1 << 16;
/// Upper bound on a single tensor's scalar count (~1 GiB of f32s).
const MAX_TENSOR_LEN: u64 = 1 << 28;
/// Upper bound on per-section element counts (params, vocab entries).
const MAX_COUNT: u64 = 1 << 24;

/// Why a checkpoint could not be written or read.
///
/// Every failure mode of a hostile or stale file maps to a variant here;
/// loading never panics and never leaves the target half-updated.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure (open, read, write, create).
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic { found: [u8; 8] },
    /// The file's format version is newer (or older) than this build knows.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The section is of a different kind than the loader expected
    /// (e.g. feeding an MSCN checkpoint to the tree estimator).
    WrongKind { found: u8, expected: u8 },
    /// The file ended in the middle of the named field.
    Truncated { while_reading: &'static str },
    /// A structurally invalid value (absurd length, bad enum tag, non-UTF-8
    /// name, ...).
    Corrupt(String),
    /// A tensor in the file does not match the model being restored.
    ShapeMismatch { name: String, expected: (usize, usize), found: (usize, usize) },
    /// Parameter order/name in the file does not match the model.
    NameMismatch { expected: String, found: String },
    /// The file holds a different number of tensors than the model.
    CountMismatch { expected: usize, found: usize },
    /// The checkpoint was produced under a different feature-extractor
    /// vocabulary than the estimator it is being loaded into.
    VocabMismatch(String),
    /// The operation is not available (backend cannot checkpoint, or the
    /// estimator has no fitted model to save).
    Unsupported(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:?}, expected {MAGIC:?})")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported checkpoint version {found} (this build reads version {supported})")
            }
            CheckpointError::WrongKind { found, expected } => {
                write!(f, "checkpoint kind {found} does not match the expected kind {expected}")
            }
            CheckpointError::Truncated { while_reading } => {
                write!(f, "checkpoint truncated while reading {while_reading}")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::ShapeMismatch { name, expected, found } => {
                write!(
                    f,
                    "parameter {name:?} has shape {}x{} in the checkpoint but {}x{} in the model",
                    found.0, found.1, expected.0, expected.1
                )
            }
            CheckpointError::NameMismatch { expected, found } => {
                write!(f, "parameter order mismatch: model expects {expected:?}, checkpoint holds {found:?}")
            }
            CheckpointError::CountMismatch { expected, found } => {
                write!(f, "checkpoint holds {found} tensors, the model has {expected}")
            }
            CheckpointError::VocabMismatch(what) => {
                write!(f, "checkpoint was saved under a different extractor vocabulary: {what}")
            }
            CheckpointError::Unsupported(what) => write!(f, "checkpoint operation unsupported: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Write the shared section header: magic, format version, kind tag.
pub fn write_header(w: &mut impl Write, kind: u8) -> Result<(), CheckpointError> {
    w.write_all(&MAGIC)?;
    write_u32(w, FORMAT_VERSION)?;
    w.write_all(&[kind])?;
    Ok(())
}

/// Read and validate a section header against the expected kind tag.
/// Returns the section's format version (any supported one — readers of
/// versioned sections branch on it for optional trailing blocks).
pub fn read_header(r: &mut impl Read, expected_kind: u8) -> Result<u32, CheckpointError> {
    let mut magic = [0u8; 8];
    read_exact(r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic { found: magic });
    }
    let version = read_u32(r, "format version")?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(CheckpointError::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
    }
    let mut kind = [0u8; 1];
    read_exact(r, &mut kind, "section kind")?;
    if kind[0] != expected_kind {
        return Err(CheckpointError::WrongKind { found: kind[0], expected: expected_kind });
    }
    Ok(version)
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated { while_reading: what }
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// Write a `u8`.
pub fn write_u8(w: &mut impl Write, v: u8) -> Result<(), CheckpointError> {
    Ok(w.write_all(&[v])?)
}

/// Read a `u8`; `what` names the field in truncation errors.
pub fn read_u8(r: &mut impl Read, what: &'static str) -> Result<u8, CheckpointError> {
    let mut b = [0u8; 1];
    read_exact(r, &mut b, what)?;
    Ok(b[0])
}

/// Write a little-endian `u32`.
pub fn write_u32(w: &mut impl Write, v: u32) -> Result<(), CheckpointError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

/// Read a little-endian `u32`.
pub fn read_u32(r: &mut impl Read, what: &'static str) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

/// Write a little-endian `u64`.
pub fn write_u64(w: &mut impl Write, v: u64) -> Result<(), CheckpointError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

/// Read a little-endian `u64`.
pub fn read_u64(r: &mut impl Read, what: &'static str) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

/// Read a `u64` element/entry count, bounding it against absurd values so a
/// corrupt file cannot drive a huge allocation.
pub fn read_count(r: &mut impl Read, what: &'static str) -> Result<usize, CheckpointError> {
    let n = read_u64(r, what)?;
    if n > MAX_COUNT {
        return Err(CheckpointError::Corrupt(format!("{what} of {n} exceeds the sanity bound {MAX_COUNT}")));
    }
    Ok(n as usize)
}

/// Write a little-endian `f64` (exact bit pattern).
pub fn write_f64(w: &mut impl Write, v: f64) -> Result<(), CheckpointError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

/// Read a little-endian `f64` (exact bit pattern).
pub fn read_f64(r: &mut impl Read, what: &'static str) -> Result<f64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(f64::from_le_bytes(b))
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str(w: &mut impl Write, s: &str) -> Result<(), CheckpointError> {
    let bytes = s.as_bytes();
    if bytes.len() as u64 > MAX_STRING_LEN as u64 {
        return Err(CheckpointError::Corrupt(format!("string of {} bytes exceeds the format bound", bytes.len())));
    }
    write_u32(w, bytes.len() as u32)?;
    Ok(w.write_all(bytes)?)
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str(r: &mut impl Read, what: &'static str) -> Result<String, CheckpointError> {
    let len = read_u32(r, what)?;
    if len > MAX_STRING_LEN {
        return Err(CheckpointError::Corrupt(format!("{what} length {len} exceeds the sanity bound {MAX_STRING_LEN}")));
    }
    let mut buf = vec![0u8; len as usize];
    read_exact(r, &mut buf, what)?;
    String::from_utf8(buf).map_err(|_| CheckpointError::Corrupt(format!("{what} is not valid UTF-8")))
}

/// Write an `f32` slice as its exact little-endian bit patterns.
pub fn write_f32_slice(w: &mut impl Write, data: &[f32]) -> Result<(), CheckpointError> {
    let mut buf = Vec::with_capacity(data.len() * 4);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    Ok(w.write_all(&buf)?)
}

/// Read `len` little-endian `f32`s, bounding `len` against corrupt headers.
pub fn read_f32_vec(r: &mut impl Read, len: u64, what: &'static str) -> Result<Vec<f32>, CheckpointError> {
    if len > MAX_TENSOR_LEN {
        return Err(CheckpointError::Corrupt(format!("{what} of {len} scalars exceeds the sanity bound")));
    }
    let mut buf = vec![0u8; (len as usize) * 4];
    read_exact(r, &mut buf, what)?;
    Ok(buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Write an `i8` slice as raw bytes (the v3 quantized-weights payload).
pub fn write_i8_slice(w: &mut impl Write, data: &[i8]) -> Result<(), CheckpointError> {
    // i8 -> u8 is a bit-preserving reinterpretation.
    let bytes: Vec<u8> = data.iter().map(|&v| v as u8).collect();
    Ok(w.write_all(&bytes)?)
}

/// Read `len` raw `i8`s, bounding `len` against corrupt headers.
pub fn read_i8_vec(r: &mut impl Read, len: u64, what: &'static str) -> Result<Vec<i8>, CheckpointError> {
    if len > MAX_TENSOR_LEN {
        return Err(CheckpointError::Corrupt(format!("{what} of {len} codes exceeds the sanity bound")));
    }
    let mut buf = vec![0u8; len as usize];
    read_exact(r, &mut buf, what)?;
    Ok(buf.into_iter().map(|b| b as i8).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn header_roundtrip_and_rejections() {
        let mut buf = Vec::new();
        write_header(&mut buf, KIND_PARAMS).unwrap();
        assert_eq!(read_header(&mut Cursor::new(&buf), KIND_PARAMS).unwrap(), FORMAT_VERSION);
        // A v1 header is still accepted and reported as such.
        let mut v1 = buf.clone();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(read_header(&mut Cursor::new(&v1), KIND_PARAMS).unwrap(), 1);
        // Version 0 predates the format and is rejected like a future one.
        let mut v0 = buf.clone();
        v0[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_header(&mut Cursor::new(&v0), KIND_PARAMS),
            Err(CheckpointError::UnsupportedVersion { found: 0, .. })
        ));
        // Wrong kind.
        match read_header(&mut Cursor::new(&buf), KIND_MSCN) {
            Err(CheckpointError::WrongKind { found, expected }) => {
                assert_eq!((found, expected), (KIND_PARAMS, KIND_MSCN));
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(read_header(&mut Cursor::new(&bad), KIND_PARAMS), Err(CheckpointError::BadMagic { .. })));
        // Future version.
        let mut future = buf.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_header(&mut Cursor::new(&future), KIND_PARAMS),
            Err(CheckpointError::UnsupportedVersion { found: 99, supported: FORMAT_VERSION })
        ));
        // Truncation inside the header.
        assert!(matches!(
            read_header(&mut Cursor::new(&buf[..5]), KIND_PARAMS),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn scalar_roundtrips_are_bit_exact() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX - 7).unwrap();
        write_f64(&mut buf, -0.0f64).unwrap();
        write_f64(&mut buf, f64::NAN).unwrap();
        write_str(&mut buf, "repr.lstm.w").unwrap();
        write_f32_slice(&mut buf, &[1.5, -0.0, f32::MIN_POSITIVE]).unwrap();
        let mut c = Cursor::new(&buf);
        assert_eq!(read_u64(&mut c, "x").unwrap(), u64::MAX - 7);
        assert_eq!(read_f64(&mut c, "x").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(read_f64(&mut c, "x").unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(read_str(&mut c, "x").unwrap(), "repr.lstm.w");
        let v = read_f32_vec(&mut c, 3, "x").unwrap();
        assert_eq!(v[0].to_bits(), 1.5f32.to_bits());
        assert_eq!(v[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(v[2].to_bits(), f32::MIN_POSITIVE.to_bits());
    }

    #[test]
    fn absurd_lengths_are_corrupt_not_oom() {
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert!(matches!(read_str(&mut Cursor::new(&buf), "name"), Err(CheckpointError::Corrupt(_))));
        assert!(matches!(
            read_f32_vec(&mut Cursor::new(Vec::new()), u64::MAX, "payload"),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut cnt = Vec::new();
        write_u64(&mut cnt, u64::MAX / 2).unwrap();
        assert!(matches!(read_count(&mut Cursor::new(&cnt), "count"), Err(CheckpointError::Corrupt(_))));
    }
}
