//! Recurrent cells used by the representation layer (Section 4.2.2).
//!
//! The paper compares two joint networks for combining a node's embedded
//! features with its children's representations:
//!
//! * [`TreeLstmCell`] — the LSTM-style cell with a long-memory channel `G`
//!   and a representation channel `R` (the paper's main design), and
//! * [`TreeNnCell`] — a plain fully-connected cell ("tree-NN", the `TNN*`
//!   baselines of Table 6).
//!
//! Both cells share their weights across all nodes of all plans.

use crate::graph::{Graph, NodeId};
use crate::layers::Linear;
use crate::matrix::Matrix;
use crate::params::ParamStore;
use crate::quant::QuantWeights;
use rand::Rng;

/// Output of a representation cell: the long-memory channel `G` and the
/// representation `R` of the sub-plan rooted at the node.
#[derive(Debug, Clone, Copy)]
pub struct CellOutput {
    pub g: NodeId,
    pub r: NodeId,
}

/// The LSTM-style representation cell of Section 4.2.2.
///
/// ```text
/// G_{t-1} = (G^l + G^r) / 2          R_{t-1} = (R^l + R^r) / 2
/// f   = sigmoid(W_f  [R_{t-1}, x] + b_f)
/// k1  = sigmoid(W_k1 [R_{t-1}, x] + b_k1)
/// r   = tanh   (W_r  [R_{t-1}, x] + b_r)
/// k2  = sigmoid(W_k2 [R_{t-1}, x] + b_k2)
/// G_t = f ⊙ G_{t-1} + k1 ⊙ r
/// R_t = k2 ⊙ tanh(G_t)
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TreeLstmCell {
    forget: Linear,
    input_gate: Linear,
    candidate: Linear,
    output_gate: Linear,
    input_dim: usize,
    hidden_dim: usize,
}

impl TreeLstmCell {
    /// Register the cell's parameters.  `input_dim` is the size of the
    /// embedded node feature `x`, `hidden_dim` the size of `G`/`R`.
    pub fn new(store: &mut ParamStore, name: &str, input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        let joint = input_dim + hidden_dim;
        TreeLstmCell {
            forget: Linear::new(store, &format!("{name}.f"), joint, hidden_dim, rng),
            input_gate: Linear::new(store, &format!("{name}.k1"), joint, hidden_dim, rng),
            candidate: Linear::new(store, &format!("{name}.r"), joint, hidden_dim, rng),
            output_gate: Linear::new(store, &format!("{name}.k2"), joint, hidden_dim, rng),
            input_dim,
            hidden_dim,
        }
    }

    /// Size of the embedded feature input.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Size of the hidden state.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Zero child state for leaf nodes, shaped for a batch of `batch` columns.
    pub fn zero_state(&self, g: &mut Graph, batch: usize) -> CellOutput {
        let zg = g.input(Matrix::zeros(self.hidden_dim, batch));
        let zr = g.input(Matrix::zeros(self.hidden_dim, batch));
        CellOutput { g: zg, r: zr }
    }

    /// Apply the cell to an embedded feature `x` and the two children states.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        self.forward_impl(g, store, None, x, left, right)
    }

    /// Tier-aware [`TreeLstmCell::forward`]: gate matmuls run on the int8
    /// tier for every weight present in `quant`.
    pub fn forward_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        self.forward_impl(g, store, quant, x, left, right)
    }

    fn forward_impl(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        let g_prev = g.mean2(left.g, right.g);
        let r_prev = g.mean2(left.r, right.r);
        let joint = g.concat_rows(&[r_prev, x]);

        // All four gate pre-activations first, then one fused activation
        // sweep (`Graph::lstm_gates`; per-element training fallback keeps
        // backward intact and values bit-identical either way).  On the
        // int8 tier the sweep and the state tanh use the fast approximate
        // activations — the tier is approximate by contract, and exact
        // libm transcendentals would dominate once the matmuls are int8.
        let quantized = quant.is_some_and(|q| q.n_quantized() > 0);
        let zf = self.forget.forward_q(g, store, quant, joint);
        let zk1 = self.input_gate.forward_q(g, store, quant, joint);
        let zr = self.candidate.forward_q(g, store, quant, joint);
        let zk2 = self.output_gate.forward_q(g, store, quant, joint);
        let (f, k1, r, k2) =
            if quantized { g.lstm_gates_approx(zf, zk1, zr, zk2) } else { g.lstm_gates(zf, zk1, zr, zk2) };

        let keep = g.hadamard(f, g_prev);
        let write = g.hadamard(k1, r);
        let g_t = g.add(keep, write);
        let g_act = if quantized { g.tanh_approx(g_t) } else { g.tanh(g_t) };
        let r_t = g.hadamard(k2, g_act);
        CellOutput { g: g_t, r: r_t }
    }
}

/// A plain fully-connected representation cell (the `TNN*` baselines):
/// `R_t = relu(W [R^l, R^r, x] + b)`, `G_t = R_t`.
#[derive(Debug, Clone, Copy)]
pub struct TreeNnCell {
    layer: Linear,
    input_dim: usize,
    hidden_dim: usize,
}

impl TreeNnCell {
    /// Register the cell's parameters.
    pub fn new(store: &mut ParamStore, name: &str, input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        let joint = input_dim + 2 * hidden_dim;
        TreeNnCell { layer: Linear::new(store, &format!("{name}.fc"), joint, hidden_dim, rng), input_dim, hidden_dim }
    }

    /// Size of the embedded feature input.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Size of the hidden state.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Zero child state for leaf nodes.
    pub fn zero_state(&self, g: &mut Graph, batch: usize) -> CellOutput {
        let zg = g.input(Matrix::zeros(self.hidden_dim, batch));
        let zr = g.input(Matrix::zeros(self.hidden_dim, batch));
        CellOutput { g: zg, r: zr }
    }

    /// Apply the cell.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        self.forward_q(g, store, None, x, left, right)
    }

    /// Tier-aware [`TreeNnCell::forward`].
    pub fn forward_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        let joint = g.concat_rows(&[left.r, right.r, x]);
        let r_t = self.layer.forward_relu_q(g, store, quant, joint);
        CellOutput { g: r_t, r: r_t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn leaf_input(dim: usize, seed: f32) -> Matrix {
        Matrix::column(&(0..dim).map(|i| ((i as f32) * 0.13 + seed).sin()).collect::<Vec<_>>())
    }

    #[test]
    fn lstm_cell_output_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cell = TreeLstmCell::new(&mut store, "cell", 6, 4, &mut rng);
        let mut g = Graph::new();
        let x = g.input(leaf_input(6, 0.5));
        let zero = cell.zero_state(&mut g, 1);
        let out = cell.forward(&mut g, &store, x, zero, zero);
        assert_eq!(g.value(out.r).rows(), 4);
        assert_eq!(g.value(out.g).rows(), 4);
        assert_eq!(cell.hidden_dim(), 4);
        assert_eq!(cell.input_dim(), 6);
    }

    #[test]
    fn lstm_cell_batched_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = TreeLstmCell::new(&mut store, "cell", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(3, 4, vec![0.1; 12]));
        let zero = cell.zero_state(&mut g, 4);
        let out = cell.forward(&mut g, &store, x, zero, zero);
        assert_eq!(g.value(out.r).cols(), 4);
    }

    #[test]
    fn nn_cell_output_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = TreeNnCell::new(&mut store, "cell", 6, 4, &mut rng);
        let mut g = Graph::new();
        let x = g.input(leaf_input(6, 0.1));
        let zero = cell.zero_state(&mut g, 1);
        let out = cell.forward(&mut g, &store, x, zero, zero);
        assert_eq!(g.value(out.r).rows(), 4);
    }

    /// Build a depth-2 tree with shared cell weights, train against a scalar
    /// target and check the loss decreases — exercises weight sharing across
    /// tree positions, exactly how the representation layer uses the cell.
    #[test]
    fn tree_with_shared_weights_trains() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cell = TreeLstmCell::new(&mut store, "cell", 4, 6, &mut rng);
        let head = Linear::new(&mut store, "head", 6, 1, &mut rng);
        let target = 0.8f32;

        let forward = |store: &ParamStore| -> (Graph, NodeId) {
            let mut g = Graph::new();
            let zero = cell.zero_state(&mut g, 1);
            let xl = g.input(leaf_input(4, 0.2));
            let xr = g.input(leaf_input(4, 0.9));
            let xroot = g.input(leaf_input(4, 1.7));
            let left = cell.forward(&mut g, store, xl, zero, zero);
            let right = cell.forward(&mut g, store, xr, zero, zero);
            let root = cell.forward(&mut g, store, xroot, left, right);
            let out = head.forward_sigmoid(&mut g, store, root.r);
            (g, out)
        };

        let (g0, o0) = forward(&store);
        let before = (g0.value(o0).data()[0] - target).powi(2);

        let mut opt = Adam::new(0.01);
        for _ in 0..50 {
            store.zero_grad();
            let (mut g, out) = forward(&store);
            let v = g.value(out).data()[0];
            let seed = Matrix::from_vec(1, 1, vec![2.0 * (v - target)]);
            g.backward(out, seed, &mut store);
            opt.step(&mut store);
        }
        let (g1, o1) = forward(&store);
        let after = (g1.value(o1).data()[0] - target).powi(2);
        assert!(after < before * 0.5, "tree training did not converge: {before} -> {after}");
    }
}
