//! A small, self-contained neural-network substrate used by the learned cost
//! estimator reproduction.
//!
//! The paper's models (tree-structured LSTM over query plans, min/max tree
//! pooling over predicate trees, multitask estimation heads) build a *new*
//! computation graph for every query plan, because the graph topology follows
//! the plan.  Frameworks with static graphs are a poor fit and the usual Rust
//! bindings (tch-rs / burn) are not available offline, so this crate provides
//! a minimal reverse-mode automatic-differentiation engine over dense `f32`
//! matrices, plus the layers, cells, optimizers and losses the estimator
//! needs:
//!
//! * [`Matrix`] — dense row-major matrix with the usual BLAS-1/2 helpers.
//! * [`Graph`] — a tape of operations supporting backward propagation.
//! * [`ParamStore`] / [`ParamId`] — model parameters shared across graphs
//!   (the tree model re-uses the same cell weights at every plan node).
//! * [`Linear`], activation ops, element-wise min/max pooling (the AND/OR
//!   predicate pooling of Section 4.2.1), and the LSTM-style representation
//!   cell of Section 4.2.2 ([`cells::TreeLstmCell`]).
//! * [`Adam`] and [`Sgd`] optimizers and the q-error-based loss of
//!   Section 4.3 ([`loss`]).
//! * [`simd`] — runtime-dispatched (AVX2 / scalar) microkernels behind the
//!   matrix hot loops, and [`quant`] — per-channel symmetric int8 weight
//!   quantization for the tiered (approximate-first) inference path.

pub mod cells;
pub mod checkpoint;
pub mod graph;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod quant;
pub mod schedule;
pub mod simd;

pub use cells::{TreeLstmCell, TreeNnCell};
pub use checkpoint::CheckpointError;
pub use graph::{Graph, Mode, NodeId};
pub use layers::Linear;
pub use loss::{qerror_from_normalized, NormalizationStats};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use quant::{QuantMatrix, QuantWeights};
pub use schedule::{EarlyStop, MiniBatchSchedule};
pub use simd::DispatchPath;
