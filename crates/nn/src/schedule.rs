//! Training-schedule helpers shared by every trainable backend.
//!
//! The tree-model trainer and the MSCN trainer used to carry their own
//! copies of the same scaffolding: seed an RNG, shuffle once to carve a
//! validation split off the samples, re-shuffle the training indices every
//! epoch and walk them in mini-batches.  [`MiniBatchSchedule`] is that
//! scaffolding, written once; [`EarlyStop`] is the matching
//! patience-on-validation-metric stopping policy.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic validation split + per-epoch shuffled mini-batches.
#[derive(Debug)]
pub struct MiniBatchSchedule {
    rng: ChaCha8Rng,
    train: Vec<usize>,
    validation: Vec<usize>,
    batch_size: usize,
}

impl MiniBatchSchedule {
    /// Split `n_samples` indices into a validation head of
    /// `validation_fraction` (rounded, capped so at least one training
    /// sample remains) and a training tail, deterministically from `seed`.
    pub fn new(n_samples: usize, validation_fraction: f64, batch_size: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n_samples).collect();
        order.shuffle(&mut rng);
        let n_val = ((n_samples as f64) * validation_fraction.clamp(0.0, 1.0)).round() as usize;
        let n_val = n_val.min(n_samples.saturating_sub(1));
        let (validation, train) = order.split_at(n_val);
        MiniBatchSchedule { rng, train: train.to_vec(), validation: validation.to_vec(), batch_size: batch_size.max(1) }
    }

    /// The held-out validation sample indices (stable across epochs).
    pub fn validation(&self) -> &[usize] {
        &self.validation
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Re-shuffle the training indices and return this epoch's mini-batches.
    pub fn epoch_batches(&mut self) -> std::slice::Chunks<'_, usize> {
        self.train.shuffle(&mut self.rng);
        self.train.chunks(self.batch_size)
    }
}

/// Patience-based early stopping on a validation metric (lower is better).
///
/// `None` patience disables the policy (the hook is always present, the
/// trigger is opt-in), and non-finite metrics — a backend that measured no
/// validation error this epoch — never count against the patience.
#[derive(Debug, Clone, Copy)]
pub struct EarlyStop {
    patience: Option<usize>,
    best: f64,
    epochs_since_best: usize,
}

impl EarlyStop {
    /// A policy stopping after `patience` epochs without improvement.
    pub fn new(patience: Option<usize>) -> Self {
        EarlyStop { patience, best: f64::INFINITY, epochs_since_best: 0 }
    }

    /// `(best metric, epochs since best)` — the state a resumable-training
    /// checkpoint persists so a restored run stops exactly where an
    /// uninterrupted one would.
    pub fn state(&self) -> (f64, usize) {
        (self.best, self.epochs_since_best)
    }

    /// Rebuild a policy from checkpointed [`EarlyStop::state`].
    pub fn from_state(patience: Option<usize>, best: f64, epochs_since_best: usize) -> Self {
        EarlyStop { patience, best, epochs_since_best }
    }

    /// Record this epoch's validation metric; returns `true` when training
    /// should stop now.
    pub fn observe(&mut self, metric: f64) -> bool {
        let Some(patience) = self.patience else { return false };
        if !metric.is_finite() {
            return false;
        }
        if metric < self.best {
            self.best = metric;
            self.epochs_since_best = 0;
            false
        } else {
            self.epochs_since_best += 1;
            self.epochs_since_best >= patience
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_disjoint_exhaustive_and_deterministic() {
        let a = MiniBatchSchedule::new(100, 0.1, 16, 7);
        let b = MiniBatchSchedule::new(100, 0.1, 16, 7);
        assert_eq!(a.validation(), b.validation());
        assert_eq!(a.validation().len(), 10);
        assert_eq!(a.train_len(), 90);
        let mut all: Vec<usize> = a.validation().to_vec();
        all.extend_from_slice(&a.train);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batches_cover_every_training_sample() {
        let mut s = MiniBatchSchedule::new(50, 0.2, 8, 3);
        let mut seen: Vec<usize> = s.epoch_batches().flatten().copied().collect();
        assert_eq!(seen.len(), 40);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40, "an epoch must visit each training sample once");
    }

    #[test]
    fn validation_never_swallows_all_samples() {
        let s = MiniBatchSchedule::new(3, 1.0, 4, 0);
        assert!(s.train_len() >= 1);
        let empty = MiniBatchSchedule::new(0, 0.5, 4, 0);
        assert_eq!(empty.train_len(), 0);
        assert!(empty.validation().is_empty());
    }

    #[test]
    fn early_stop_waits_for_patience() {
        let mut es = EarlyStop::new(Some(2));
        assert!(!es.observe(10.0));
        assert!(!es.observe(8.0)); // improvement resets
        assert!(!es.observe(9.0)); // 1 epoch without improvement
        assert!(es.observe(9.5)); // 2 epochs -> stop
    }

    #[test]
    fn early_stop_disabled_and_nan_metrics() {
        let mut off = EarlyStop::new(None);
        for _ in 0..50 {
            assert!(!off.observe(1.0));
        }
        let mut es = EarlyStop::new(Some(1));
        assert!(!es.observe(f64::NAN));
        assert!(!es.observe(5.0));
        assert!(es.observe(5.0));
    }
}
