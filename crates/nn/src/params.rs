//! Model parameters shared across computation graphs.
//!
//! The tree-structured model applies the *same* representation cell at every
//! node of every plan (Section 4.2.2: "all the units in this layer are neural
//! networks in the same structure and share common parameters").  Parameters
//! therefore live outside the per-plan [`crate::Graph`] in a [`ParamStore`];
//! graphs reference them by [`ParamId`] and accumulate gradients back into
//! the store after each backward pass.

use crate::checkpoint::{self, CheckpointError};
use crate::init;
use crate::matrix::Matrix;
use rand::Rng;
use std::io::{Read, Write};
use std::path::Path;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// A single trainable tensor together with its gradient accumulator and the
/// Adam moment estimates.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub value: Matrix,
    pub grad: Matrix,
    pub(crate) m: Matrix,
    pub(crate) v: Matrix,
}

/// Container for all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Register an explicitly-initialized parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        let m = Matrix::zeros(value.rows(), value.cols());
        let v = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad, m, v });
        ParamId(self.params.len() - 1)
    }

    /// Register a weight matrix with Xavier/Glorot uniform initialization.
    pub fn add_xavier(&mut self, name: impl Into<String>, rows: usize, cols: usize, rng: &mut impl Rng) -> ParamId {
        self.add(name, init::xavier_uniform(rows, cols, rng))
    }

    /// Register a zero-initialized bias vector.
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::zeros(rows, cols))
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value (used by gradient-check tests and optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Current accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Accumulate a gradient contribution for a parameter.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Matrix) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Reset all gradients to zero (called once per mini-batch).
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Iterate over all parameters mutably (used by optimizers).
    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Iterate over all parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Serialize every parameter tensor into `w`: the shared section header
    /// ([`checkpoint::MAGIC`], [`checkpoint::FORMAT_VERSION`],
    /// [`checkpoint::KIND_PARAMS`]), a tensor count, then per tensor its
    /// name, shape and raw little-endian `f32` payload.  Values only —
    /// gradients and Adam moments are training state, not model state.
    pub fn save_to(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, checkpoint::KIND_PARAMS)?;
        checkpoint::write_u64(w, self.params.len() as u64)?;
        for p in &self.params {
            checkpoint::write_str(w, &p.name)?;
            checkpoint::write_u64(w, p.value.rows() as u64)?;
            checkpoint::write_u64(w, p.value.cols() as u64)?;
            checkpoint::write_f32_slice(w, p.value.data())?;
        }
        Ok(())
    }

    /// Deserialize a parameter section written by [`ParamStore::save_to`]
    /// into a fresh store (gradients and moments zeroed).
    pub fn load_from(r: &mut impl Read) -> Result<ParamStore, CheckpointError> {
        checkpoint::read_header(r, checkpoint::KIND_PARAMS)?;
        let count = checkpoint::read_count(r, "parameter count")?;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let (name, value) = Self::read_tensor(r)?;
            store.add(name, value);
        }
        Ok(store)
    }

    /// Deserialize a parameter section into an **existing** store, verifying
    /// that every tensor matches the store's registration order, name and
    /// shape — the restore path for a freshly-constructed model.  Values are
    /// overwritten, gradients and moments reset.  On any error the store is
    /// left untouched (the section is validated in full first).
    pub fn load_values_from(&mut self, r: &mut impl Read) -> Result<(), CheckpointError> {
        checkpoint::read_header(r, checkpoint::KIND_PARAMS)?;
        let count = checkpoint::read_count(r, "parameter count")?;
        if count != self.params.len() {
            return Err(CheckpointError::CountMismatch { expected: self.params.len(), found: count });
        }
        let mut loaded = Vec::with_capacity(count);
        for p in &self.params {
            let (name, value) = Self::read_tensor(r)?;
            if name != p.name {
                return Err(CheckpointError::NameMismatch { expected: p.name.clone(), found: name });
            }
            if (value.rows(), value.cols()) != (p.value.rows(), p.value.cols()) {
                return Err(CheckpointError::ShapeMismatch {
                    name,
                    expected: (p.value.rows(), p.value.cols()),
                    found: (value.rows(), value.cols()),
                });
            }
            loaded.push(value);
        }
        for (p, value) in self.params.iter_mut().zip(loaded) {
            p.value = value;
            p.grad.fill_zero();
            p.m.fill_zero();
            p.v.fill_zero();
        }
        Ok(())
    }

    /// Serialize the Adam moment estimates (`m`, `v` per tensor, in
    /// registration order, raw `f32` bit patterns) — the per-parameter half
    /// of the optimizer state a v2 checkpoint persists for resumable
    /// training.  Shapes are implied by the value tensors, so the payload is
    /// just a count guard followed by the raw moments.
    pub fn save_moments_to(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_u64(w, self.params.len() as u64)?;
        for p in &self.params {
            checkpoint::write_f32_slice(w, p.m.data())?;
            checkpoint::write_f32_slice(w, p.v.data())?;
        }
        Ok(())
    }

    /// Restore moment estimates written by [`ParamStore::save_moments_to`]
    /// into this store's tensors (which define the expected shapes).  On any
    /// error the store is left untouched.
    pub fn load_moments_from(&mut self, r: &mut impl Read) -> Result<(), CheckpointError> {
        let count = checkpoint::read_count(r, "moment tensor count")?;
        if count != self.params.len() {
            return Err(CheckpointError::CountMismatch { expected: self.params.len(), found: count });
        }
        let mut loaded = Vec::with_capacity(count * 2);
        for p in &self.params {
            let len = p.value.len() as u64;
            loaded.push(checkpoint::read_f32_vec(r, len, "first-moment payload")?);
            loaded.push(checkpoint::read_f32_vec(r, len, "second-moment payload")?);
        }
        let mut it = loaded.into_iter();
        for p in self.params.iter_mut() {
            let (rows, cols) = (p.value.rows(), p.value.cols());
            p.m = Matrix::from_vec(rows, cols, it.next().expect("moment pair"));
            p.v = Matrix::from_vec(rows, cols, it.next().expect("moment pair"));
        }
        Ok(())
    }

    fn read_tensor(r: &mut impl Read) -> Result<(String, Matrix), CheckpointError> {
        let name = checkpoint::read_str(r, "parameter name")?;
        let rows = checkpoint::read_u64(r, "parameter rows")? as usize;
        let cols = checkpoint::read_u64(r, "parameter cols")? as usize;
        let len = (rows as u64)
            .checked_mul(cols as u64)
            .ok_or_else(|| CheckpointError::Corrupt(format!("parameter {name:?} shape {rows}x{cols} overflows")))?;
        let data = checkpoint::read_f32_vec(r, len, "parameter payload")?;
        Ok((name, Matrix::from_vec(rows, cols, data)))
    }

    /// [`ParamStore::save_to`] into a file (buffered, created/truncated).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save_to(&mut w)?;
        Ok(w.flush()?)
    }

    /// [`ParamStore::load_from`] out of a file (buffered).
    pub fn load(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
        Self::load_from(&mut std::io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Global L2 norm of all gradients (for gradient clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params.iter().map(|p| p.grad.norm().powi(2)).sum::<f32>().sqrt()
    }

    /// Scale all gradients by a constant (gradient clipping helper).
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            p.grad = p.grad.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::column(&[1.0, 2.0]));
        assert_eq!(store.value(id), &Matrix::column(&[1.0, 2.0]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("b", 2, 1);
        store.accumulate_grad(id, &Matrix::column(&[1.0, 1.0]));
        store.accumulate_grad(id, &Matrix::column(&[0.5, 0.5]));
        assert_eq!(store.grad(id), &Matrix::column(&[1.5, 1.5]));
        store.zero_grad();
        assert_eq!(store.grad(id), &Matrix::column(&[0.0, 0.0]));
    }

    #[test]
    fn xavier_init_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let id = store.add_xavier("w", 16, 32, &mut rng);
        let bound = (6.0f32 / (16.0 + 32.0)).sqrt();
        for &x in store.value(id).data() {
            assert!(x.abs() <= bound + 1e-6);
        }
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut store = ParamStore::new();
        store.add_xavier("a.w", 7, 5, &mut rng);
        store.add_zeros("a.b", 7, 1);
        store.add("odd", Matrix::from_vec(1, 3, vec![-0.0, f32::MIN_POSITIVE, 3.25]));
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();

        let loaded = ParamStore::load_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (a, b) in store.params().iter().zip(loaded.params().iter()) {
            assert_eq!(a.name, b.name);
            let bits = |m: &Matrix| m.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.value), bits(&b.value), "payload must round-trip bit-identically");
            assert!(b.grad.data().iter().all(|&g| g == 0.0));
        }

        // load_values_from into a differently-initialized same-shape store.
        let mut rng2 = ChaCha8Rng::seed_from_u64(999);
        let mut other = ParamStore::new();
        other.add_xavier("a.w", 7, 5, &mut rng2);
        other.add_zeros("a.b", 7, 1);
        other.add("odd", Matrix::zeros(1, 3));
        other.load_values_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(other.value(ParamId(0)), store.value(ParamId(0)));
        assert_eq!(other.value(ParamId(2)), store.value(ParamId(2)));
    }

    #[test]
    fn load_rejects_malformed_sections_with_typed_errors() {
        use crate::checkpoint::CheckpointError;
        let mut store = ParamStore::new();
        store.add("w", Matrix::column(&[1.0, 2.0, 3.0]));
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();

        // Truncated mid-payload.
        let cut = &buf[..buf.len() - 5];
        assert!(matches!(
            ParamStore::load_from(&mut std::io::Cursor::new(cut)),
            Err(CheckpointError::Truncated { .. })
        ));
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            ParamStore::load_from(&mut std::io::Cursor::new(&bad)),
            Err(CheckpointError::BadMagic { .. })
        ));
        // Future version.
        let mut future = buf.clone();
        future[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            ParamStore::load_from(&mut std::io::Cursor::new(&future)),
            Err(CheckpointError::UnsupportedVersion { found: 7, .. })
        ));

        // Mismatched target store: wrong count, wrong name, wrong shape.
        let mut empty = ParamStore::new();
        assert!(matches!(
            empty.load_values_from(&mut std::io::Cursor::new(&buf)),
            Err(CheckpointError::CountMismatch { expected: 0, found: 1 })
        ));
        let mut renamed = ParamStore::new();
        renamed.add("v", Matrix::column(&[0.0, 0.0, 0.0]));
        assert!(matches!(
            renamed.load_values_from(&mut std::io::Cursor::new(&buf)),
            Err(CheckpointError::NameMismatch { .. })
        ));
        let mut reshaped = ParamStore::new();
        reshaped.add("w", Matrix::zeros(2, 2));
        let before = reshaped.value(ParamId(0)).clone();
        assert!(matches!(
            reshaped.load_values_from(&mut std::io::Cursor::new(&buf)),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        assert_eq!(reshaped.value(ParamId(0)), &before, "failed load must not partially apply");
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("b", 2, 1);
        store.accumulate_grad(id, &Matrix::column(&[3.0, 4.0]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.scale_grads(0.5);
        assert!((store.grad_norm() - 2.5).abs() < 1e-6);
    }
}
