//! Model parameters shared across computation graphs.
//!
//! The tree-structured model applies the *same* representation cell at every
//! node of every plan (Section 4.2.2: "all the units in this layer are neural
//! networks in the same structure and share common parameters").  Parameters
//! therefore live outside the per-plan [`crate::Graph`] in a [`ParamStore`];
//! graphs reference them by [`ParamId`] and accumulate gradients back into
//! the store after each backward pass.

use crate::init;
use crate::matrix::Matrix;
use rand::Rng;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// A single trainable tensor together with its gradient accumulator and the
/// Adam moment estimates.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub value: Matrix,
    pub grad: Matrix,
    pub(crate) m: Matrix,
    pub(crate) v: Matrix,
}

/// Container for all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Register an explicitly-initialized parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        let m = Matrix::zeros(value.rows(), value.cols());
        let v = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad, m, v });
        ParamId(self.params.len() - 1)
    }

    /// Register a weight matrix with Xavier/Glorot uniform initialization.
    pub fn add_xavier(&mut self, name: impl Into<String>, rows: usize, cols: usize, rng: &mut impl Rng) -> ParamId {
        self.add(name, init::xavier_uniform(rows, cols, rng))
    }

    /// Register a zero-initialized bias vector.
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::zeros(rows, cols))
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value (used by gradient-check tests and optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Current accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Accumulate a gradient contribution for a parameter.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Matrix) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Reset all gradients to zero (called once per mini-batch).
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Iterate over all parameters mutably (used by optimizers).
    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Iterate over all parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Global L2 norm of all gradients (for gradient clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params.iter().map(|p| p.grad.norm().powi(2)).sum::<f32>().sqrt()
    }

    /// Scale all gradients by a constant (gradient clipping helper).
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            p.grad = p.grad.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::column(&[1.0, 2.0]));
        assert_eq!(store.value(id), &Matrix::column(&[1.0, 2.0]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("b", 2, 1);
        store.accumulate_grad(id, &Matrix::column(&[1.0, 1.0]));
        store.accumulate_grad(id, &Matrix::column(&[0.5, 0.5]));
        assert_eq!(store.grad(id), &Matrix::column(&[1.5, 1.5]));
        store.zero_grad();
        assert_eq!(store.grad(id), &Matrix::column(&[0.0, 0.0]));
    }

    #[test]
    fn xavier_init_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let id = store.add_xavier("w", 16, 32, &mut rng);
        let bound = (6.0f32 / (16.0 + 32.0)).sqrt();
        for &x in store.value(id).data() {
            assert!(x.abs() <= bound + 1e-6);
        }
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("b", 2, 1);
        store.accumulate_grad(id, &Matrix::column(&[3.0, 4.0]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.scale_grads(0.5);
        assert!((store.grad_norm() - 2.5).abs() < 1e-6);
    }
}
