//! Reverse-mode automatic differentiation over a tape of matrix operations.
//!
//! Every query plan produces its own dynamically-shaped computation graph
//! (the tree model mirrors the plan tree), so the tape is rebuilt per forward
//! pass: cheap to construct, trivially correct to differentiate.  Parameters
//! live in a [`ParamStore`] outside the graph and receive accumulated
//! gradients when [`Graph::backward`] runs.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Handle to a node (an intermediate value) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input (feature vector); receives no gradient.
    Input,
    /// Copy of a trainable parameter; gradient is accumulated into the store.
    Param(ParamId),
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    /// `x + bias` where `bias` is a column vector broadcast over columns.
    AddBias(NodeId, NodeId),
    Hadamard(NodeId, NodeId),
    EMin(NodeId, NodeId),
    EMax(NodeId, NodeId),
    /// `(a + b) / 2` — the children-averaging of the representation layer.
    Mean2(NodeId, NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Scale(NodeId, f32),
    ConcatRows(Vec<NodeId>),
    SliceRows(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    ColumnAt(NodeId, usize),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
}

/// A tape of matrix operations supporting a single backward pass.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.nodes.push(Node { value, grad, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Current forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Gradient of the loss with respect to a node (valid after `backward`).
    pub fn grad(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].grad
    }

    /// Record a constant input.
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Record (a copy of) a trainable parameter.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a, b))
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(value, Op::Add(a, b))
    }

    /// Add a column-vector bias, broadcast over all columns of `x`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let value = self.nodes[x.0].value.add_bias(&self.nodes[bias.0].value);
        self.push(value, Op::AddBias(x, bias))
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(value, Op::Hadamard(a, b))
    }

    /// Element-wise minimum — the AND pooling of the predicate tree (§4.2.1).
    pub fn emin(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.emin(&self.nodes[b.0].value);
        self.push(value, Op::EMin(a, b))
    }

    /// Element-wise maximum — the OR pooling of the predicate tree (§4.2.1).
    pub fn emax(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.emax(&self.nodes[b.0].value);
        self.push(value, Op::EMax(a, b))
    }

    /// `(a + b) / 2` — averaging of the two children representations (§4.2.2).
    pub fn mean2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value).scale(0.5);
        self.push(value, Op::Mean2(a, b))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let value = self.nodes[x.0].value.map(|v| v.max(0.0));
        self.push(value, Op::Relu(x))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let value = self.nodes[x.0].value.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let value = self.nodes[x.0].value.map(|v| v.tanh());
        self.push(value, Op::Tanh(x))
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, x: NodeId, s: f32) -> NodeId {
        let value = self.nodes[x.0].value.scale(s);
        self.push(value, Op::Scale(x, s))
    }

    /// Vertical concatenation of feature vectors.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        let values: Vec<&Matrix> = parts.iter().map(|id| &self.nodes[id.0].value).collect();
        let value = Matrix::concat_rows(&values);
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Horizontal concatenation (batching of same-shaped vectors).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let values: Vec<&Matrix> = parts.iter().map(|id| &self.nodes[id.0].value).collect();
        let value = Matrix::concat_cols(&values);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Take a contiguous block of rows `[start, start+len)`.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let value = self.nodes[x.0].value.slice_rows(start, len);
        self.push(value, Op::SliceRows(x, start, len))
    }

    /// Take a single column of a batched matrix.
    pub fn column_at(&mut self, x: NodeId, c: usize) -> NodeId {
        let value = self.nodes[x.0].value.column_at(c);
        self.push(value, Op::ColumnAt(x, c))
    }

    /// Backward pass: seed `root` with `seed_grad` (dLoss/dRoot), propagate
    /// gradients to all ancestors and accumulate parameter gradients into
    /// `store`.
    ///
    /// # Panics
    /// Panics if the seed gradient shape does not match the root value shape.
    pub fn backward(&mut self, root: NodeId, seed_grad: Matrix, store: &mut ParamStore) {
        assert_eq!(seed_grad.rows(), self.nodes[root.0].value.rows(), "seed grad row mismatch");
        assert_eq!(seed_grad.cols(), self.nodes[root.0].value.cols(), "seed grad col mismatch");
        self.nodes[root.0].grad.add_assign(&seed_grad);

        for i in (0..=root.0).rev() {
            // Split borrows: take the grad out, read the op, write to parents.
            let grad = self.nodes[i].grad.clone();
            if grad.data().iter().all(|&x| x == 0.0) {
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(pid, &grad),
                Op::MatMul(a, b) => {
                    let da = grad.matmul(&self.nodes[b.0].value.transpose());
                    let db = self.nodes[a.0].value.transpose().matmul(&grad);
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Add(a, b) => {
                    self.nodes[a.0].grad.add_assign(&grad);
                    self.nodes[b.0].grad.add_assign(&grad);
                }
                Op::AddBias(x, bias) => {
                    self.nodes[x.0].grad.add_assign(&grad);
                    let db = grad.sum_cols();
                    self.nodes[bias.0].grad.add_assign(&db);
                }
                Op::Hadamard(a, b) => {
                    let da = grad.hadamard(&self.nodes[b.0].value);
                    let db = grad.hadamard(&self.nodes[a.0].value);
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::EMin(a, b) | Op::EMax(a, b) => {
                    let take_a_on_min = matches!(self.nodes[i].op, Op::EMin(_, _));
                    let va = self.nodes[a.0].value.clone();
                    let vb = self.nodes[b.0].value.clone();
                    let mut da = Matrix::zeros(va.rows(), va.cols());
                    let mut db = Matrix::zeros(vb.rows(), vb.cols());
                    for idx in 0..grad.len() {
                        let g = grad.data()[idx];
                        let pick_a = if take_a_on_min {
                            va.data()[idx] <= vb.data()[idx]
                        } else {
                            va.data()[idx] >= vb.data()[idx]
                        };
                        if pick_a {
                            da.data_mut()[idx] = g;
                        } else {
                            db.data_mut()[idx] = g;
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Mean2(a, b) => {
                    let half = grad.scale(0.5);
                    self.nodes[a.0].grad.add_assign(&half);
                    self.nodes[b.0].grad.add_assign(&half);
                }
                Op::Relu(x) => {
                    let vx = &self.nodes[x.0].value;
                    let mut dx = grad.clone();
                    for (g, &v) in dx.data_mut().iter_mut().zip(vx.data().iter()) {
                        if v <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::Sigmoid(x) => {
                    let s = &self.nodes[i].value;
                    let ds = s.map(|v| v * (1.0 - v));
                    let dx = grad.hadamard(&ds);
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::Tanh(x) => {
                    let t = &self.nodes[i].value;
                    let dt = t.map(|v| 1.0 - v * v);
                    let dx = grad.hadamard(&dt);
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::Scale(x, s) => {
                    let dx = grad.scale(s);
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for pid in parts {
                        let rows = self.nodes[pid.0].value.rows();
                        let piece = grad.slice_rows(offset, rows);
                        self.nodes[pid.0].grad.add_assign(&piece);
                        offset += rows;
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for pid in parts {
                        let cols = self.nodes[pid.0].value.cols();
                        let rows = self.nodes[pid.0].value.rows();
                        let mut piece = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            for c in 0..cols {
                                piece.set(r, c, grad.get(r, offset + c));
                            }
                        }
                        self.nodes[pid.0].grad.add_assign(&piece);
                        offset += cols;
                    }
                }
                Op::SliceRows(x, start, len) => {
                    let parent = &self.nodes[x.0].value;
                    let mut dx = Matrix::zeros(parent.rows(), parent.cols());
                    for r in 0..len {
                        for c in 0..grad.cols() {
                            dx.set(start + r, c, grad.get(r, c));
                        }
                    }
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::ColumnAt(x, col) => {
                    let parent = &self.nodes[x.0].value;
                    let mut dx = Matrix::zeros(parent.rows(), parent.cols());
                    for r in 0..grad.rows() {
                        dx.set(r, col, grad.get(r, 0));
                    }
                    self.nodes[x.0].grad.add_assign(&dx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check of a scalar function of a parameter.
    fn grad_check(
        build: impl Fn(&mut Graph, &ParamStore) -> NodeId,
        store: &mut ParamStore,
        pid: ParamId,
        eps: f32,
        tol: f32,
    ) {
        // Analytical gradient.
        store.zero_grad();
        let mut g = Graph::new();
        let out = build(&mut g, store);
        assert_eq!(g.value(out).len(), 1, "grad_check requires a scalar output");
        g.backward(out, Matrix::from_vec(1, 1, vec![1.0]), store);
        let analytic = store.grad(pid).clone();

        // Numerical gradient.
        let n = store.value(pid).len();
        for i in 0..n {
            let orig = store.value(pid).data()[i];
            store.value_mut(pid).data_mut()[i] = orig + eps;
            let mut g1 = Graph::new();
            let o1 = build(&mut g1, store);
            let f1 = g1.value(o1).data()[0];
            store.value_mut(pid).data_mut()[i] = orig - eps;
            let mut g2 = Graph::new();
            let o2 = build(&mut g2, store);
            let f2 = g2.value(o2).data()[0];
            store.value_mut(pid).data_mut()[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tol,
                "gradient mismatch at {}: analytic {} vs numeric {}",
                i,
                a,
                numeric
            );
        }
    }

    #[test]
    fn matmul_forward_and_backward() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[1.0, 4.0]));
        let wp = g.param(&store, w);
        let y = g.matmul(wp, x);
        assert_eq!(g.value(y).data()[0], 14.0);
        g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        // dy/dw = x^T = [1, 4]
        assert_eq!(store.grad(w), &Matrix::from_vec(1, 2, vec![1.0, 4.0]));
    }

    #[test]
    fn gradient_check_linear_sigmoid() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]));
        grad_check(
            |g, s| {
                let x = g.input(Matrix::column(&[0.7, -1.3, 0.4]));
                let wp = g.param(s, w);
                let z = g.matmul(wp, x);
                g.sigmoid(z)
            },
            &mut store,
            w,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn gradient_check_relu_tanh_chain() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.4, 0.1, -0.3, 0.8]));
        let v = store.add("v", Matrix::from_vec(1, 2, vec![0.5, -0.7]));
        for pid in [w, v] {
            grad_check(
                |g, s| {
                    let x = g.input(Matrix::column(&[1.2, -0.4]));
                    let wp = g.param(s, w);
                    let vp = g.param(s, v);
                    let h = g.matmul(wp, x);
                    let h = g.relu(h);
                    let h = g.tanh(h);
                    g.matmul(vp, h)
                },
                &mut store,
                pid,
                1e-3,
                1e-2,
            );
        }
    }

    #[test]
    fn gradient_check_min_max_pooling() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![0.9, -0.2]));
        grad_check(
            |g, s| {
                let a = g.input(Matrix::column(&[0.3, 0.8]));
                let b = g.input(Matrix::column(&[0.5, 0.2]));
                let mn = g.emin(a, b);
                let mx = g.emax(a, b);
                let both = g.mean2(mn, mx);
                let wp = g.param(s, w);
                g.matmul(wp, both)
            },
            &mut store,
            w,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn gradient_check_concat_and_bias() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 4, vec![0.3, -0.1, 0.6, 0.2]));
        let b = store.add("b", Matrix::column(&[0.05]));
        for pid in [w, b] {
            grad_check(
                |g, s| {
                    let x1 = g.input(Matrix::column(&[0.4, -0.9]));
                    let x2 = g.input(Matrix::column(&[1.1, 0.3]));
                    let x = g.concat_rows(&[x1, x2]);
                    let wp = g.param(s, w);
                    let bp = g.param(s, b);
                    let z = g.matmul(wp, x);
                    let z = g.add_bias(z, bp);
                    g.tanh(z)
                },
                &mut store,
                pid,
                1e-3,
                1e-2,
            );
        }
    }

    #[test]
    fn hadamard_and_scale_backward() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::column(&[2.0, 3.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[5.0, 7.0]));
        let wp = g.param(&store, w);
        let h = g.hadamard(wp, x);
        let h = g.scale(h, 2.0);
        let ones = g.input(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let y = g.matmul(ones, h);
        g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        assert_eq!(store.grad(w), &Matrix::column(&[10.0, 14.0]));
    }

    #[test]
    fn batched_columns_shapes() {
        let mut g = Graph::new();
        let a = g.input(Matrix::column(&[1.0, 2.0]));
        let b = g.input(Matrix::column(&[3.0, 4.0]));
        let batch = g.concat_cols(&[a, b]);
        assert_eq!(g.value(batch).rows(), 2);
        assert_eq!(g.value(batch).cols(), 2);
        let col1 = g.column_at(batch, 1);
        assert_eq!(g.value(col1), &Matrix::column(&[3.0, 4.0]));
    }

    #[test]
    fn slice_rows_backward_places_gradient() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::column(&[1.0, 2.0, 3.0]));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let s = g.slice_rows(wp, 1, 2);
        let ones = g.input(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let y = g.matmul(ones, s);
        g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        assert_eq!(store.grad(w), &Matrix::column(&[0.0, 1.0, 1.0]));
    }
}
