//! Reverse-mode automatic differentiation over a tape of matrix operations.
//!
//! Every query plan produces its own dynamically-shaped computation graph
//! (the tree model mirrors the plan tree), so the tape is rebuilt per forward
//! pass: cheap to construct, trivially correct to differentiate.  Parameters
//! live in a [`ParamStore`] outside the graph and receive accumulated
//! gradients when [`Graph::backward`] runs.
//!
//! # Allocation discipline
//!
//! The tape is built for two very different workloads:
//!
//! * **Inference** ([`Graph::inference`]) — the estimator sits inside an
//!   optimizer loop, so the forward pass must not pay for training
//!   machinery.  No gradient matrix is ever allocated (gradients are
//!   `Option` and stay `None`), no operation metadata is recorded, and
//!   [`Graph::backward`] panics if called.
//! * **Training** ([`Graph::new`]) — gradients are still *lazy*: a node's
//!   gradient matrix is materialized only when the backward sweep first
//!   reaches it, so nodes outside the loss cone never allocate one.
//!
//! In both modes, node values are computed with the `_into` kernels of
//! [`Matrix`] into buffers drawn from an internal pool; [`Graph::reset`]
//! clears the tape but keeps the buffers, so steady-state forward passes
//! (one per plan, thousands per optimizer run) are allocation-free once the
//! pool is warm.  The backward pass multiplies by transposed operands with
//! [`Matrix::matmul_nt_into`]-style kernels instead of materializing
//! transposes.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::quant::QuantMatrix;
use crate::simd;

/// Handle to a node (an intermediate value) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Whether a graph records the metadata needed for a backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Record operations; `backward` is available.
    Train,
    /// Values only: no gradient slots, no op metadata, no backward.
    Inference,
}

#[derive(Debug, Clone)]
enum Op {
    /// Constant input (feature vector); receives no gradient.  Also used for
    /// every node of an inference-mode graph, where ops are never replayed.
    Input,
    /// Copy of a trainable parameter; gradient is accumulated into the store.
    Param(ParamId),
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    /// `x + bias` where `bias` is a column vector broadcast over columns.
    AddBias(NodeId, NodeId),
    Hadamard(NodeId, NodeId),
    EMin(NodeId, NodeId),
    EMax(NodeId, NodeId),
    /// `(a + b) / 2` — the children-averaging of the representation layer.
    Mean2(NodeId, NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Scale(NodeId, f32),
    ConcatRows(Vec<NodeId>),
    SliceRows(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    ColumnAt(NodeId, usize),
    /// Output column `j` is column `sources[j].1` of node `sources[j].0`.
    /// The batched gather that assembles children-state matrices from the
    /// per-level cell outputs without one tape node per column.
    GatherCols(Vec<(NodeId, usize)>),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    /// Materialized lazily by the backward sweep; `None` outside it.
    grad: Option<Matrix>,
    op: Op,
}

/// A tape of matrix operations supporting a single backward pass.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    inference: bool,
    /// Reproduce the original tape's allocation behavior (see
    /// [`Graph::seed_compat`]).
    eager: bool,
    /// Recycled value/grad buffers, refilled by [`Graph::reset`].
    pool: Vec<Vec<f32>>,
    /// Parameter id -> already-recorded node, so a tape copies each weight
    /// matrix once per forward pass no matter how many times the layer is
    /// applied (the shared-weight tree cell applies each one per node).
    param_cache: Vec<(ParamId, NodeId)>,
    /// Packed int8 activations of the most recent [`Graph::matmul_quant`]
    /// right-hand side, keyed by node index.  Consecutive quantized matmuls
    /// against the same activations (the four LSTM gate matmuls of one cell
    /// application) quantize and pack the columns once.
    quant_pack: Option<(usize, crate::quant::PackedActivations)>,
}

impl Graph {
    /// Create an empty training-mode graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Create an empty inference-mode graph: forward values only, no
    /// gradient bookkeeping of any kind.
    pub fn inference() -> Self {
        Graph { inference: true, ..Graph::default() }
    }

    /// Create a training-mode graph that reproduces the pre-optimization
    /// tape's allocation behavior: a zero gradient matrix is allocated
    /// eagerly for every node, and every `param` call records a fresh copy
    /// of the parameter.  Exists so the benchmarks can measure the original
    /// cost model faithfully (`batch::reference`); not for production use.
    pub fn seed_compat() -> Self {
        Graph { eager: true, ..Graph::default() }
    }

    /// The graph's mode.
    pub fn mode(&self) -> Mode {
        if self.inference {
            Mode::Inference
        } else {
            Mode::Train
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clear the tape for a fresh forward pass, keeping (and recycling) every
    /// buffer the previous pass allocated.  After a few passes the pool is
    /// warm and node values stop hitting the allocator.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.push(node.value.into_vec());
            if let Some(g) = node.grad {
                self.pool.push(g.into_vec());
            }
        }
        self.param_cache.clear();
        self.quant_pack = None;
    }

    fn take_buffer(&mut self) -> Vec<f32> {
        self.pool.pop().unwrap_or_default()
    }

    /// A `rows x cols` matrix backed by a recycled buffer if any.  Contents
    /// are unspecified: every op kernel writing into it either overwrites
    /// all elements or (matmul) zero-fills before accumulating.
    fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        let buf = self.take_buffer();
        Matrix::from_pooled_uninit(rows, cols, buf)
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        // Inference graphs never replay ops, so no metadata is kept.
        let op = if self.inference { Op::Input } else { op };
        let grad = if self.eager { Some(Matrix::zeros(value.rows(), value.cols())) } else { None };
        self.nodes.push(Node { value, grad, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Build a node-list op payload, skipping the `Vec` allocation entirely
    /// on inference tapes (where `push` discards the op anyway).
    fn list_op(&self, make: impl FnOnce() -> Op) -> Op {
        if self.inference {
            Op::Input
        } else {
            make()
        }
    }

    /// Current forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Pending (not yet swept) gradient of a node.  Node gradients are
    /// **consumed** by the backward sweep — after `backward` returns, every
    /// swept node's slot is `None` and the accumulated parameter gradients
    /// live in the [`ParamStore`].  `Some` is only observable for gradients
    /// seeded or propagated but not yet processed (i.e. mid-sweep, which no
    /// public API exposes), so this is primarily a debugging hook.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Record a constant input.
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Record (a copy of) a trainable parameter.  Repeated requests for the
    /// same parameter on one tape return the already-recorded node: values
    /// cannot change mid-forward, and gradient accumulation through a shared
    /// node is identical to summing over separate copies.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if self.eager {
            // seed_compat reproduces the original copy-per-application cost
            // and keeps no cache.
            let value = Matrix::from_pooled_copy(store.value(id), Vec::new());
            return self.push(value, Op::Param(id));
        }
        if let Some(&(_, node)) = self.param_cache.iter().find(|(pid, _)| *pid == id) {
            return node;
        }
        let buf = self.take_buffer();
        let value = Matrix::from_pooled_copy(store.value(id), buf);
        let node = self.push(value, Op::Param(id));
        self.param_cache.push((id, node));
        node
    }

    /// Matrix product (cache-blocked kernel).
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[a.0].value.matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::MatMul(a, b))
    }

    /// Matrix product of a **quantized** weight matrix and a node — the
    /// int8 tier of tiered inference.  The int8 inner products dequantize
    /// directly into an ordinary f32 tape node, so everything downstream
    /// (bias add, activations, state extraction) is tier-agnostic.
    ///
    /// Inference-only: the quantized weights are frozen publish-time
    /// artifacts with no gradient story.
    ///
    /// # Panics
    /// Panics on a training-mode graph or on dimension mismatch.
    pub fn matmul_quant(&mut self, w: &QuantMatrix, x: NodeId) -> NodeId {
        assert!(self.inference, "matmul_quant is an inference-only operation");
        let cols = self.nodes[x.0].value.cols();
        let mut out = self.alloc(w.rows(), cols);
        if self.quant_pack.as_ref().is_none_or(|(node, _)| *node != x.0) {
            self.quant_pack = Some((x.0, crate::quant::PackedActivations::pack(&self.nodes[x.0].value)));
        }
        let (_, pack) = self.quant_pack.as_ref().expect("activation pack was just installed");
        w.matmul_packed(pack, &mut out);
        self.push(out, Op::Input)
    }

    /// The four LSTM gate activations — sigmoid over the forget / input /
    /// output pre-activations, tanh over the candidate — as one fused
    /// operation.  On an inference tape all four output buffers are filled
    /// in a single [`simd::lstm_gate_sweep`] pass instead of four separate
    /// `map_into` column walks.  The sweep is runtime-dispatched: on the
    /// scalar path it applies the exact per-element formulas of
    /// [`Graph::sigmoid`] / [`Graph::tanh`] (bit-identical to the unfused
    /// ops); on the AVX2 path it runs the 8-wide FMA rational activations
    /// (`simd::tanh_fma` / `simd::sigmoid_fma`, abs error vs. libm < 1e-5 —
    /// inside the f32 tier's tolerance contract, see `docs/perf.md`).
    /// Training-mode tapes fall back to the four individual libm ops on
    /// every path, keeping the backward pass intact.
    pub fn lstm_gates(&mut self, zf: NodeId, zk1: NodeId, zr: NodeId, zk2: NodeId) -> (NodeId, NodeId, NodeId, NodeId) {
        if !self.inference {
            return (self.sigmoid(zf), self.sigmoid(zk1), self.tanh(zr), self.sigmoid(zk2));
        }
        for z in [zf, zk1, zr, zk2] {
            let buf = self.take_buffer();
            let value = Matrix::from_pooled_copy(&self.nodes[z.0].value, buf);
            self.push(value, Op::Input);
        }
        let n = self.nodes.len();
        match &mut self.nodes[n - 4..] {
            [nf, nk1, nr, nk2] => simd::lstm_gate_sweep(
                nf.value.data_mut(),
                nk1.value.data_mut(),
                nr.value.data_mut(),
                nk2.value.data_mut(),
            ),
            _ => unreachable!("four gate nodes were just pushed"),
        }
        (NodeId(n - 4), NodeId(n - 3), NodeId(n - 2), NodeId(n - 1))
    }

    /// [`Graph::lstm_gates`] with the fast approximate activations
    /// ([`simd::lstm_gate_sweep_fast`]) — the int8 tier's gate sweep.  Once
    /// the gate matmuls are int8, exact libm transcendentals dominate the
    /// forward pass; the tier is approximate by contract, so it trades
    /// their last ~1e-7 of accuracy (orders of magnitude below the
    /// weight-quantization error) for the rational-polynomial sweep.
    ///
    /// Deterministic — pure f32 arithmetic, identical on every dispatch
    /// path — so memoized int8-tier state stays bit-identical to fresh
    /// int8-tier computation.  Inference-only, like every quantized op.
    ///
    /// # Panics
    /// Panics on a training-mode graph.
    pub fn lstm_gates_approx(
        &mut self,
        zf: NodeId,
        zk1: NodeId,
        zr: NodeId,
        zk2: NodeId,
    ) -> (NodeId, NodeId, NodeId, NodeId) {
        assert!(self.inference, "lstm_gates_approx is an inference-only operation");
        for z in [zf, zk1, zr, zk2] {
            let buf = self.take_buffer();
            let value = Matrix::from_pooled_copy(&self.nodes[z.0].value, buf);
            self.push(value, Op::Input);
        }
        let n = self.nodes.len();
        match &mut self.nodes[n - 4..] {
            [nf, nk1, nr, nk2] => simd::lstm_gate_sweep_fast(
                nf.value.data_mut(),
                nk1.value.data_mut(),
                nr.value.data_mut(),
                nk2.value.data_mut(),
            ),
            _ => unreachable!("four gate nodes were just pushed"),
        }
        (NodeId(n - 4), NodeId(n - 3), NodeId(n - 2), NodeId(n - 1))
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[a.0].value.add_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::Add(a, b))
    }

    /// Add a column-vector bias, broadcast over all columns of `x`.  One
    /// fused [`Matrix::add_bias_into`] pass into a recycled buffer (no
    /// copy-then-add double sweep, no per-call allocation) — this sits
    /// directly after every GEMM in the forward path.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let src = &self.nodes[x.0].value;
        let (rows, cols) = (src.rows(), src.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.add_bias_into(&self.nodes[bias.0].value, &mut out);
        self.push(out, Op::AddBias(x, bias))
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[a.0].value.hadamard_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::Hadamard(a, b))
    }

    /// Element-wise minimum — the AND pooling of the predicate tree (§4.2.1).
    pub fn emin(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[a.0].value.emin_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::EMin(a, b))
    }

    /// Element-wise maximum — the OR pooling of the predicate tree (§4.2.1).
    pub fn emax(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[a.0].value.emax_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::EMax(a, b))
    }

    /// `(a + b) / 2` — averaging of the two children representations (§4.2.2).
    pub fn mean2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[a.0].value.add_into(&self.nodes[b.0].value, &mut out);
        out.scale_inplace(0.5);
        self.push(out, Op::Mean2(a, b))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.map_into(|v| v.max(0.0), &mut out);
        self.push(out, Op::Relu(x))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.map_into(|v| 1.0 / (1.0 + (-v).exp()), &mut out);
        self.push(out, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.map_into(|v| v.tanh(), &mut out);
        self.push(out, Op::Tanh(x))
    }

    /// Fast approximate tanh ([`simd::tanh_fast`]) — int8-tier companion of
    /// [`Graph::tanh`]; see [`Graph::lstm_gates_approx`] for the contract.
    ///
    /// # Panics
    /// Panics on a training-mode graph.
    pub fn tanh_approx(&mut self, x: NodeId) -> NodeId {
        assert!(self.inference, "tanh_approx is an inference-only operation");
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.map_into(simd::tanh_fast, &mut out);
        self.push(out, Op::Input)
    }

    /// Fast approximate sigmoid ([`simd::sigmoid_fast`]) — int8-tier
    /// companion of [`Graph::sigmoid`]; see [`Graph::lstm_gates_approx`]
    /// for the contract.
    ///
    /// # Panics
    /// Panics on a training-mode graph.
    pub fn sigmoid_approx(&mut self, x: NodeId) -> NodeId {
        assert!(self.inference, "sigmoid_approx is an inference-only operation");
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.map_into(simd::sigmoid_fast, &mut out);
        self.push(out, Op::Input)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, x: NodeId, s: f32) -> NodeId {
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        let mut out = self.alloc(rows, cols);
        self.nodes[x.0].value.map_into(|v| v * s, &mut out);
        self.push(out, Op::Scale(x, s))
    }

    /// Vertical concatenation of feature vectors.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one node");
        let cols = self.nodes[parts[0].0].value.cols();
        let rows: usize = parts.iter().map(|id| self.nodes[id.0].value.rows()).sum();
        let mut out = self.alloc(rows, cols);
        let mut offset = 0;
        for id in parts {
            let p = &self.nodes[id.0].value;
            assert_eq!(p.cols(), cols, "concat_rows requires equal column counts");
            out.data_mut()[offset..offset + p.len()].copy_from_slice(p.data());
            offset += p.len();
        }
        let op = self.list_op(|| Op::ConcatRows(parts.to_vec()));
        self.push(out, op)
    }

    /// Horizontal concatenation (batching of same-shaped vectors).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one node");
        let rows = self.nodes[parts[0].0].value.rows();
        let cols: usize = parts.iter().map(|id| self.nodes[id.0].value.cols()).sum();
        let mut out = self.alloc(rows, cols);
        let mut col_off = 0;
        for id in parts {
            let p = &self.nodes[id.0].value;
            assert_eq!(p.rows(), rows, "concat_cols requires equal row counts");
            let pc = p.cols();
            for r in 0..rows {
                out.data_mut()[r * cols + col_off..r * cols + col_off + pc]
                    .copy_from_slice(&p.data()[r * pc..(r + 1) * pc]);
            }
            col_off += pc;
        }
        let op = self.list_op(|| Op::ConcatCols(parts.to_vec()));
        self.push(out, op)
    }

    /// Take a contiguous block of rows `[start, start+len)`.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let src_cols = self.nodes[x.0].value.cols();
        assert!(start + len <= self.nodes[x.0].value.rows(), "row slice out of range");
        let mut out = self.alloc(len, src_cols);
        out.data_mut().copy_from_slice(&self.nodes[x.0].value.data()[start * src_cols..(start + len) * src_cols]);
        self.push(out, Op::SliceRows(x, start, len))
    }

    /// Gather one column per entry of `sources` into a new matrix: output
    /// column `j` is column `sources[j].1` of node `sources[j].0`.  All
    /// source nodes must share a row count.  One tape node assembles a whole
    /// children-state batch, where `column_at` + `concat_cols` would record
    /// a node per column.
    ///
    /// # Panics
    /// Panics if `sources` is empty, a column index is out of range, or the
    /// row counts differ.
    pub fn gather_cols(&mut self, sources: &[(NodeId, usize)]) -> NodeId {
        assert!(!sources.is_empty(), "gather_cols needs at least one column");
        let rows = self.nodes[sources[0].0 .0].value.rows();
        let n = sources.len();
        let mut out = self.alloc(rows, n);
        for (j, &(src, c)) in sources.iter().enumerate() {
            let v = &self.nodes[src.0].value;
            assert_eq!(v.rows(), rows, "gather_cols requires equal row counts");
            assert!(c < v.cols(), "gather_cols column out of range");
            let (vc, oc) = (v.cols(), n);
            for r in 0..rows {
                out.data_mut()[r * oc + j] = v.data()[r * vc + c];
            }
        }
        let op = self.list_op(|| Op::GatherCols(sources.to_vec()));
        self.push(out, op)
    }

    /// Copy column `col` of a node's value into `out` (cleared first) — the
    /// state-extraction half of subtree memoization: after a level's cell
    /// runs, each new sub-plan's `G`/`R` column is lifted off the tape into
    /// the cache without any tape node.
    ///
    /// # Panics
    /// Panics if `col` is out of range.
    pub fn extract_column(&self, id: NodeId, col: usize, out: &mut Vec<f32>) {
        let v = &self.nodes[id.0].value;
        assert!(col < v.cols(), "extract_column out of range");
        let (rows, cols) = (v.rows(), v.cols());
        out.clear();
        out.reserve(rows);
        for r in 0..rows {
            out.push(v.data()[r * cols + col]);
        }
    }

    /// Record an input assembled from column slices (all of length `rows`) —
    /// the state-injection half of subtree memoization: cached `G`/`R`
    /// vectors re-enter a fresh tape as one batched constant, drawn from the
    /// buffer pool like every other node value.
    ///
    /// # Panics
    /// Panics if `columns` is empty or a slice's length differs from `rows`.
    pub fn input_columns(&mut self, rows: usize, columns: &[&[f32]]) -> NodeId {
        assert!(!columns.is_empty(), "input_columns needs at least one column");
        let n = columns.len();
        let mut out = self.alloc(rows, n);
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "input_columns row-count mismatch");
            for (r, &v) in col.iter().enumerate() {
                out.data_mut()[r * n + j] = v;
            }
        }
        self.push(out, Op::Input)
    }

    /// Take a single column of a batched matrix.
    pub fn column_at(&mut self, x: NodeId, c: usize) -> NodeId {
        let (rows, cols) = (self.nodes[x.0].value.rows(), self.nodes[x.0].value.cols());
        assert!(c < cols, "column out of range");
        let mut out = self.alloc(rows, 1);
        for r in 0..rows {
            out.data_mut()[r] = self.nodes[x.0].value.data()[r * cols + c];
        }
        self.push(out, Op::ColumnAt(x, c))
    }

    /// Backward pass: seed `root` with `seed_grad` (dLoss/dRoot), propagate
    /// gradients to all ancestors and accumulate parameter gradients into
    /// `store`.
    ///
    /// # Panics
    /// Panics on an inference-mode graph or if the seed gradient shape does
    /// not match the root value shape.
    pub fn backward(&mut self, root: NodeId, seed_grad: Matrix, store: &mut ParamStore) {
        self.backward_multi(vec![(root, seed_grad)], store);
    }

    /// Backward pass seeded at several roots at once (e.g. the cost and
    /// cardinality heads of a multitask forward), sweeping the tape a single
    /// time.  Gradients are consumed by the sweep: each node's gradient is
    /// taken when processed, so repeated calls propagate only their own
    /// seeds and never double-count earlier contributions.
    ///
    /// # Panics
    /// Panics on an inference-mode graph or any seed shape mismatch.
    pub fn backward_multi(&mut self, seeds: Vec<(NodeId, Matrix)>, store: &mut ParamStore) {
        assert!(!self.inference, "backward called on an inference-mode graph");
        if seeds.is_empty() {
            return;
        }
        let mut highest = 0usize;
        for (root, seed) in seeds {
            let value = &self.nodes[root.0].value;
            assert_eq!(seed.rows(), value.rows(), "seed grad row mismatch");
            assert_eq!(seed.cols(), value.cols(), "seed grad col mismatch");
            accumulate(&mut self.nodes[root.0].grad, seed);
            highest = highest.max(root.0);
        }

        for i in (0..=highest).rev() {
            let Some(grad) = self.nodes[i].grad.take() else { continue };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(pid, &grad),
                Op::MatMul(a, b) => {
                    // dA = dC · Bᵀ and dB = Aᵀ · dC via the transposed
                    // kernels — no transpose matrix is materialized.
                    let da = grad.matmul_nt(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.matmul_tn(&grad);
                    accumulate(&mut self.nodes[a.0].grad, da);
                    accumulate(&mut self.nodes[b.0].grad, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut self.nodes[a.0].grad, grad.clone());
                    accumulate(&mut self.nodes[b.0].grad, grad);
                }
                Op::AddBias(x, bias) => {
                    let db = grad.sum_cols();
                    accumulate(&mut self.nodes[bias.0].grad, db);
                    accumulate(&mut self.nodes[x.0].grad, grad);
                }
                Op::Hadamard(a, b) => {
                    let mut da = grad.clone();
                    da.hadamard_assign(&self.nodes[b.0].value);
                    let mut db = grad;
                    db.hadamard_assign(&self.nodes[a.0].value);
                    accumulate(&mut self.nodes[a.0].grad, da);
                    accumulate(&mut self.nodes[b.0].grad, db);
                }
                ref op @ (Op::EMin(a, b) | Op::EMax(a, b)) => {
                    let take_a_on_min = matches!(op, Op::EMin(_, _));
                    let va = &self.nodes[a.0].value;
                    let vb = &self.nodes[b.0].value;
                    let mut da = Matrix::zeros(va.rows(), va.cols());
                    let mut db = Matrix::zeros(vb.rows(), vb.cols());
                    for idx in 0..grad.len() {
                        let g = grad.data()[idx];
                        let pick_a = if take_a_on_min {
                            va.data()[idx] <= vb.data()[idx]
                        } else {
                            va.data()[idx] >= vb.data()[idx]
                        };
                        if pick_a {
                            da.data_mut()[idx] = g;
                        } else {
                            db.data_mut()[idx] = g;
                        }
                    }
                    accumulate(&mut self.nodes[a.0].grad, da);
                    accumulate(&mut self.nodes[b.0].grad, db);
                }
                Op::Mean2(a, b) => {
                    let mut half = grad;
                    half.scale_inplace(0.5);
                    accumulate(&mut self.nodes[a.0].grad, half.clone());
                    accumulate(&mut self.nodes[b.0].grad, half);
                }
                Op::Relu(x) => {
                    let mut dx = grad;
                    for (g, &v) in dx.data_mut().iter_mut().zip(self.nodes[x.0].value.data().iter()) {
                        if v <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    accumulate(&mut self.nodes[x.0].grad, dx);
                }
                Op::Sigmoid(x) => {
                    let mut dx = grad;
                    for (g, &s) in dx.data_mut().iter_mut().zip(self.nodes[i].value.data().iter()) {
                        *g *= s * (1.0 - s);
                    }
                    accumulate(&mut self.nodes[x.0].grad, dx);
                }
                Op::Tanh(x) => {
                    let mut dx = grad;
                    for (g, &t) in dx.data_mut().iter_mut().zip(self.nodes[i].value.data().iter()) {
                        *g *= 1.0 - t * t;
                    }
                    accumulate(&mut self.nodes[x.0].grad, dx);
                }
                Op::Scale(x, s) => {
                    let mut dx = grad;
                    dx.scale_inplace(s);
                    accumulate(&mut self.nodes[x.0].grad, dx);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for pid in parts {
                        let rows = self.nodes[pid.0].value.rows();
                        let piece = grad.slice_rows(offset, rows);
                        accumulate(&mut self.nodes[pid.0].grad, piece);
                        offset += rows;
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for pid in parts {
                        let cols = self.nodes[pid.0].value.cols();
                        let rows = self.nodes[pid.0].value.rows();
                        let mut piece = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            for c in 0..cols {
                                piece.set(r, c, grad.get(r, offset + c));
                            }
                        }
                        accumulate(&mut self.nodes[pid.0].grad, piece);
                        offset += cols;
                    }
                }
                Op::SliceRows(x, start, len) => {
                    let parent = &self.nodes[x.0].value;
                    let mut dx = Matrix::zeros(parent.rows(), parent.cols());
                    for r in 0..len {
                        for c in 0..grad.cols() {
                            dx.set(start + r, c, grad.get(r, c));
                        }
                    }
                    accumulate(&mut self.nodes[x.0].grad, dx);
                }
                Op::ColumnAt(x, col) => {
                    let parent = &self.nodes[x.0].value;
                    let mut dx = Matrix::zeros(parent.rows(), parent.cols());
                    for r in 0..grad.rows() {
                        dx.set(r, col, grad.get(r, 0));
                    }
                    accumulate(&mut self.nodes[x.0].grad, dx);
                }
                Op::GatherCols(sources) => {
                    for (j, (src, c)) in sources.into_iter().enumerate() {
                        let parent = &self.nodes[src.0].value;
                        let (rows, cols) = (parent.rows(), parent.cols());
                        // Scatter-add column j of the gradient into column c
                        // of the source's (lazily materialized) gradient.
                        let slot = &mut self.nodes[src.0].grad;
                        let dst = slot.get_or_insert_with(|| Matrix::zeros(rows, cols));
                        for r in 0..rows {
                            let v = grad.get(r, j);
                            if v != 0.0 {
                                dst.data_mut()[r * cols + c] += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Accumulate a gradient contribution into a lazily-materialized slot: the
/// first contribution moves in without any zero-matrix allocation.
fn accumulate(slot: &mut Option<Matrix>, contribution: Matrix) {
    match slot {
        Some(g) => g.add_assign(&contribution),
        None => *slot = Some(contribution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check of a scalar function of a parameter.
    fn grad_check(
        build: impl Fn(&mut Graph, &ParamStore) -> NodeId,
        store: &mut ParamStore,
        pid: ParamId,
        eps: f32,
        tol: f32,
    ) {
        // Analytical gradient.
        store.zero_grad();
        let mut g = Graph::new();
        let out = build(&mut g, store);
        assert_eq!(g.value(out).len(), 1, "grad_check requires a scalar output");
        g.backward(out, Matrix::from_vec(1, 1, vec![1.0]), store);
        let analytic = store.grad(pid).clone();

        // Numerical gradient.
        let n = store.value(pid).len();
        for i in 0..n {
            let orig = store.value(pid).data()[i];
            store.value_mut(pid).data_mut()[i] = orig + eps;
            let mut g1 = Graph::new();
            let o1 = build(&mut g1, store);
            let f1 = g1.value(o1).data()[0];
            store.value_mut(pid).data_mut()[i] = orig - eps;
            let mut g2 = Graph::new();
            let o2 = build(&mut g2, store);
            let f2 = g2.value(o2).data()[0];
            store.value_mut(pid).data_mut()[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!((a - numeric).abs() < tol, "gradient mismatch at {}: analytic {} vs numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn matmul_forward_and_backward() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[1.0, 4.0]));
        let wp = g.param(&store, w);
        let y = g.matmul(wp, x);
        assert_eq!(g.value(y).data()[0], 14.0);
        g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        // dy/dw = x^T = [1, 4]
        assert_eq!(store.grad(w), &Matrix::from_vec(1, 2, vec![1.0, 4.0]));
    }

    #[test]
    fn gradient_check_linear_sigmoid() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]));
        grad_check(
            |g, s| {
                let x = g.input(Matrix::column(&[0.7, -1.3, 0.4]));
                let wp = g.param(s, w);
                let z = g.matmul(wp, x);
                g.sigmoid(z)
            },
            &mut store,
            w,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn gradient_check_relu_tanh_chain() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.4, 0.1, -0.3, 0.8]));
        let v = store.add("v", Matrix::from_vec(1, 2, vec![0.5, -0.7]));
        for pid in [w, v] {
            grad_check(
                |g, s| {
                    let x = g.input(Matrix::column(&[1.2, -0.4]));
                    let wp = g.param(s, w);
                    let vp = g.param(s, v);
                    let h = g.matmul(wp, x);
                    let h = g.relu(h);
                    let h = g.tanh(h);
                    g.matmul(vp, h)
                },
                &mut store,
                pid,
                1e-3,
                1e-2,
            );
        }
    }

    #[test]
    fn gradient_check_min_max_pooling() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![0.9, -0.2]));
        grad_check(
            |g, s| {
                let a = g.input(Matrix::column(&[0.3, 0.8]));
                let b = g.input(Matrix::column(&[0.5, 0.2]));
                let mn = g.emin(a, b);
                let mx = g.emax(a, b);
                let both = g.mean2(mn, mx);
                let wp = g.param(s, w);
                g.matmul(wp, both)
            },
            &mut store,
            w,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn gradient_check_concat_and_bias() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 4, vec![0.3, -0.1, 0.6, 0.2]));
        let b = store.add("b", Matrix::column(&[0.05]));
        for pid in [w, b] {
            grad_check(
                |g, s| {
                    let x1 = g.input(Matrix::column(&[0.4, -0.9]));
                    let x2 = g.input(Matrix::column(&[1.1, 0.3]));
                    let x = g.concat_rows(&[x1, x2]);
                    let wp = g.param(s, w);
                    let bp = g.param(s, b);
                    let z = g.matmul(wp, x);
                    let z = g.add_bias(z, bp);
                    g.tanh(z)
                },
                &mut store,
                pid,
                1e-3,
                1e-2,
            );
        }
    }

    #[test]
    fn hadamard_and_scale_backward() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::column(&[2.0, 3.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[5.0, 7.0]));
        let wp = g.param(&store, w);
        let h = g.hadamard(wp, x);
        let h = g.scale(h, 2.0);
        let ones = g.input(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let y = g.matmul(ones, h);
        g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        assert_eq!(store.grad(w), &Matrix::column(&[10.0, 14.0]));
    }

    #[test]
    fn batched_columns_shapes() {
        let mut g = Graph::new();
        let a = g.input(Matrix::column(&[1.0, 2.0]));
        let b = g.input(Matrix::column(&[3.0, 4.0]));
        let batch = g.concat_cols(&[a, b]);
        assert_eq!(g.value(batch).rows(), 2);
        assert_eq!(g.value(batch).cols(), 2);
        let col1 = g.column_at(batch, 1);
        assert_eq!(g.value(col1), &Matrix::column(&[3.0, 4.0]));
    }

    #[test]
    fn extract_and_inject_round_trip() {
        let mut g = Graph::inference();
        let m = g.input(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let mut c0 = Vec::new();
        let mut c2 = Vec::new();
        g.extract_column(m, 0, &mut c0);
        g.extract_column(m, 2, &mut c2);
        assert_eq!(c0, vec![1.0, 4.0]);
        assert_eq!(c2, vec![3.0, 6.0]);
        let injected = g.input_columns(2, &[&c2, &c0]);
        assert_eq!(g.value(injected), &Matrix::from_vec(2, 2, vec![3.0, 1.0, 6.0, 4.0]));
        // extract_column clears the destination before refilling.
        g.extract_column(injected, 0, &mut c0);
        assert_eq!(c0, vec![3.0, 6.0]);
    }

    #[test]
    fn slice_rows_backward_places_gradient() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::column(&[1.0, 2.0, 3.0]));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let s = g.slice_rows(wp, 1, 2);
        let ones = g.input(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let y = g.matmul(ones, s);
        g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        assert_eq!(store.grad(w), &Matrix::column(&[0.0, 1.0, 1.0]));
    }

    /// A small two-head forward shared by the mode/backward tests below.
    fn two_head_forward(g: &mut Graph, store: &ParamStore, w: ParamId, v: ParamId) -> (NodeId, NodeId) {
        let x = g.input(Matrix::column(&[0.4, -0.6]));
        let wp = g.param(store, w);
        let trunk = g.matmul(wp, x);
        let trunk = g.tanh(trunk);
        let vp = g.param(store, v);
        let head1 = g.matmul(vp, trunk);
        let head2 = g.scale(trunk, 2.0);
        let ones = g.input(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let head2 = g.matmul(ones, head2);
        (head1, head2)
    }

    fn two_params() -> (ParamStore, ParamId, ParamId) {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.3, -0.8, 0.5, 0.1]));
        let v = store.add("v", Matrix::from_vec(1, 2, vec![0.7, -0.4]));
        (store, w, v)
    }

    #[test]
    fn inference_forward_matches_train_forward() {
        let (store, w, v) = two_params();
        let mut train = Graph::new();
        let (t1, t2) = two_head_forward(&mut train, &store, w, v);
        let mut infer = Graph::inference();
        let (i1, i2) = two_head_forward(&mut infer, &store, w, v);
        assert_eq!(train.value(t1), infer.value(i1));
        assert_eq!(train.value(t2), infer.value(i2));
        assert_eq!(infer.mode(), Mode::Inference);
        assert_eq!(train.mode(), Mode::Train);
    }

    #[test]
    #[should_panic(expected = "inference-mode graph")]
    fn backward_on_inference_graph_panics() {
        let (mut store, w, v) = two_params();
        let mut g = Graph::inference();
        let (h1, _) = two_head_forward(&mut g, &store, w, v);
        g.backward(h1, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
    }

    #[test]
    fn sequential_backwards_do_not_double_count() {
        // Two backward calls on one tape must equal the sum of two fresh
        // single-head backwards: gradients are consumed by each sweep.
        let (mut store, w, v) = two_params();
        let seed = Matrix::from_vec(1, 1, vec![1.0]);

        let mut expected = ParamStore::new();
        let we = expected.add("w", store.value(w).clone());
        let ve = expected.add("v", store.value(v).clone());
        let mut g1 = Graph::new();
        let (h1, _) = two_head_forward(&mut g1, &expected, we, ve);
        g1.backward(h1, seed.clone(), &mut expected);
        let mut g2 = Graph::new();
        let (_, h2) = two_head_forward(&mut g2, &expected, we, ve);
        g2.backward(h2, seed.clone(), &mut expected);

        store.zero_grad();
        let mut g = Graph::new();
        let (h1, h2) = two_head_forward(&mut g, &store, w, v);
        g.backward(h1, seed.clone(), &mut store);
        g.backward(h2, seed.clone(), &mut store);

        for (pid, pe) in [(w, we), (v, ve)] {
            for (a, b) in store.grad(pid).data().iter().zip(expected.grad(pe).data().iter()) {
                assert!((a - b).abs() < 1e-6, "sequential backward grad mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn backward_multi_matches_sequential_backwards() {
        let (mut store, w, v) = two_params();
        let seed = Matrix::from_vec(1, 1, vec![1.0]);

        let mut g = Graph::new();
        let (h1, h2) = two_head_forward(&mut g, &store, w, v);
        g.backward(h1, seed.clone(), &mut store);
        g.backward(h2, seed.clone(), &mut store);
        let sequential_w = store.grad(w).clone();
        let sequential_v = store.grad(v).clone();

        store.zero_grad();
        let mut g = Graph::new();
        let (h1, h2) = two_head_forward(&mut g, &store, w, v);
        g.backward_multi(vec![(h1, seed.clone()), (h2, seed)], &mut store);

        for (multi, seq) in [(store.grad(w), &sequential_w), (store.grad(v), &sequential_v)] {
            for (a, b) in multi.data().iter().zip(seq.data().iter()) {
                assert!((a - b).abs() < 1e-6, "backward_multi grad mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_lstm_gates_match_unfused_ops_within_path_contract() {
        let pre = |g: &mut Graph| {
            let zf = g.input(Matrix::from_vec(3, 2, vec![0.4, -1.2, 0.0, 2.5, -0.3, 0.9]));
            let zk1 = g.input(Matrix::from_vec(3, 2, vec![-0.7, 0.1, 1.8, -2.2, 0.6, 0.0]));
            let zr = g.input(Matrix::from_vec(3, 2, vec![1.1, -0.5, 0.2, -1.9, 3.0, -0.1]));
            let zk2 = g.input(Matrix::from_vec(3, 2, vec![0.0, 0.8, -1.4, 0.3, -2.0, 1.6]));
            (zf, zk1, zr, zk2)
        };
        // Unfused reference on a training tape (where lstm_gates falls back
        // to the four individual libm ops by construction).
        let mut train = Graph::new();
        let (zf, zk1, zr, zk2) = pre(&mut train);
        let (tf, tk1, tr, tk2) = train.lstm_gates(zf, zk1, zr, zk2);
        // Fused path on an inference tape.  On the scalar dispatch path the
        // sweep is the same libm formulas, so bits must match; on the AVX2
        // path it is the FMA rational approximation, bound by the f32
        // tier's documented < 1e-5 activation tolerance.
        let mut infer = Graph::inference();
        let (zf, zk1, zr, zk2) = pre(&mut infer);
        let (if_, ik1, ir, ik2) = infer.lstm_gates(zf, zk1, zr, zk2);
        for (t, i) in [(tf, if_), (tk1, ik1), (tr, ir), (tk2, ik2)] {
            match simd::active_path() {
                simd::DispatchPath::Scalar => {
                    assert_eq!(train.value(t), infer.value(i), "fused gate sweep diverged from per-element ops");
                }
                simd::DispatchPath::Avx2 => {
                    for (a, b) in train.value(t).data().iter().zip(infer.value(i).data().iter()) {
                        assert!((a - b).abs() < 1e-5, "fused AVX2 gate sweep off-tolerance: {a} vs {b}");
                    }
                }
            }
        }
        // Either way the fused sweep must be deterministic: a second
        // inference tape reproduces the first bit-for-bit.
        let mut infer2 = Graph::inference();
        let (zf, zk1, zr, zk2) = pre(&mut infer2);
        let (jf, jk1, jr, jk2) = infer2.lstm_gates(zf, zk1, zr, zk2);
        for (i, j) in [(if_, jf), (ik1, jk1), (ir, jr), (ik2, jk2)] {
            assert_eq!(infer.value(i), infer2.value(j), "fused gate sweep is nondeterministic");
        }
    }

    #[test]
    fn lstm_gates_backward_matches_individual_activations() {
        // The train-mode fallback must leave gradients exactly as the four
        // separate activation ops would.
        let (mut store, w, v) = two_params();
        let run = |store: &mut ParamStore, fused: bool| -> Matrix {
            store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(Matrix::column(&[0.4, -0.6]));
            let wp = g.param(store, w);
            let z = g.matmul(wp, x);
            let (f, k1, r, k2) =
                if fused { g.lstm_gates(z, z, z, z) } else { (g.sigmoid(z), g.sigmoid(z), g.tanh(z), g.sigmoid(z)) };
            let fk = g.hadamard(f, k1);
            let rk = g.hadamard(r, k2);
            let sum = g.add(fk, rk);
            let vp = g.param(store, v);
            let y = g.matmul(vp, sum);
            g.backward(y, Matrix::from_vec(1, 1, vec![1.0]), store);
            store.grad(w).clone()
        };
        let unfused = run(&mut store, false);
        let fused = run(&mut store, true);
        assert_eq!(unfused, fused);
    }

    #[test]
    fn matmul_quant_tracks_f32_matmul_on_inference_tape() {
        let w = Matrix::from_vec(2, 3, vec![0.5, -1.0, 0.25, 2.0, 0.75, -0.5]);
        let qw = crate::quant::QuantMatrix::quantize(&w);
        let mut g = Graph::inference();
        let x = g.input(Matrix::from_vec(3, 2, vec![1.0, -0.5, 0.5, 2.0, -1.5, 0.0]));
        let exact = {
            let wn = g.input(w.clone());
            g.matmul(wn, x)
        };
        let approx = g.matmul_quant(&qw, x);
        for (a, e) in g.value(approx).data().iter().zip(g.value(exact).data().iter()) {
            assert!((a - e).abs() < 0.05 * (1.0 + e.abs()), "quant {a} vs exact {e}");
        }
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn matmul_quant_on_training_tape_panics() {
        let qw = crate::quant::QuantMatrix::quantize(&Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::column(&[1.0, 2.0]));
        let _ = g.matmul_quant(&qw, x);
    }

    #[test]
    fn matmul_quant_pack_cache_reuses_activations_across_weights() {
        // Four weight matrices against the same activations (the LSTM gate
        // pattern) must give the same values as four independent quantized
        // matmuls — the pack cache changes cost, never results.
        let x_val = Matrix::from_vec(3, 5, (0..15).map(|i| (i as f32 * 0.37).sin()).collect());
        let ws: Vec<_> = (0..4)
            .map(|s| {
                crate::quant::QuantMatrix::quantize(&Matrix::from_vec(
                    2,
                    3,
                    (0..6).map(|i| ((i + s * 7) as f32 * 0.21).cos()).collect(),
                ))
            })
            .collect();
        let mut shared = Graph::inference();
        let x = shared.input(x_val.clone());
        let cached: Vec<Matrix> = ws
            .iter()
            .map(|w| {
                let n = shared.matmul_quant(w, x);
                shared.value(n).clone()
            })
            .collect();
        for (w, want) in ws.iter().zip(cached.iter()) {
            let mut fresh = Graph::inference();
            let x = fresh.input(x_val.clone());
            let got = fresh.matmul_quant(w, x);
            assert_eq!(fresh.value(got), want, "pack cache changed a quantized matmul result");
        }
    }

    #[test]
    fn approx_activations_track_exact_ops_closely() {
        let vals = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32 - 6.0) * 0.8).collect());
        let mut g = Graph::inference();
        let x = g.input(vals);
        let (exact_t, exact_s) = (g.tanh(x), g.sigmoid(x));
        let (fast_t, fast_s) = (g.tanh_approx(x), g.sigmoid_approx(x));
        for (f, e) in g.value(fast_t).data().iter().zip(g.value(exact_t).data()) {
            assert!((f - e).abs() < 1e-5, "tanh_approx {f} vs {e}");
        }
        for (f, e) in g.value(fast_s).data().iter().zip(g.value(exact_s).data()) {
            assert!((f - e).abs() < 1e-5, "sigmoid_approx {f} vs {e}");
        }
    }

    #[test]
    fn lstm_gates_approx_matches_fast_sweep_values() {
        let pre = Matrix::from_vec(2, 3, vec![0.4, -1.2, 0.0, 2.5, -0.3, 0.9]);
        let mut g = Graph::inference();
        let z = g.input(pre.clone());
        let (f, k1, r, k2) = g.lstm_gates_approx(z, z, z, z);
        for (node, want) in [
            (f, pre.data().iter().map(|&v| simd::sigmoid_fast(v)).collect::<Vec<_>>()),
            (k1, pre.data().iter().map(|&v| simd::sigmoid_fast(v)).collect()),
            (r, pre.data().iter().map(|&v| simd::tanh_fast(v)).collect()),
            (k2, pre.data().iter().map(|&v| simd::sigmoid_fast(v)).collect()),
        ] {
            assert_eq!(
                g.value(node).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "approx gate sweep diverged from the fast scalar activations"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn lstm_gates_approx_on_training_tape_panics() {
        let mut g = Graph::new();
        let z = g.input(Matrix::column(&[0.1, 0.2]));
        let _ = g.lstm_gates_approx(z, z, z, z);
    }

    #[test]
    fn reset_reuses_tape_for_identical_results() {
        let (mut store, w, v) = two_params();
        let mut g = Graph::new();
        let (h1, _) = two_head_forward(&mut g, &store, w, v);
        let first = g.value(h1).clone();
        g.backward(h1, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
        let first_grad = store.grad(w).clone();

        for _ in 0..3 {
            g.reset();
            assert!(g.is_empty());
            store.zero_grad();
            let (h1, _) = two_head_forward(&mut g, &store, w, v);
            assert_eq!(g.value(h1), &first);
            g.backward(h1, Matrix::from_vec(1, 1, vec![1.0]), &mut store);
            assert_eq!(store.grad(w), &first_grad);
        }
    }
}
