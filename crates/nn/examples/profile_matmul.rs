//! Component-level profile of the f32 GEMM tier (B-pack, dispatched kernel,
//! scalar arm, transposed variants, gate sweeps) — the dev tool behind the
//! "f32 kernel contract" numbers in `docs/perf.md`.  Not a regression gate;
//! the end-to-end floors live in the `bench` crate's check mode.
//!
//! `cargo run -p nn --release --example profile_matmul`
//! (`E2E_FORCE_SCALAR=1` profiles the scalar fallbacks through the same
//! dispatch entry points.)

use nn::matrix::Matrix;
use nn::simd;
use std::time::Instant;

fn lcg(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            (seed >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
        })
        .collect()
}

fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    println!("f32 dispatch: {}", simd::f32_path_name());
    let (rows, depth) = (32usize, 48usize);
    for n in [1usize, 8, 16, 64] {
        let w = Matrix::from_vec(rows, depth, lcg(rows * depth, 1));
        let x = Matrix::from_vec(depth, n, lcg(depth * n, 2));
        let xt = Matrix::from_vec(n, depth, lcg(n * depth, 8));
        let wt = Matrix::from_vec(depth, rows, lcg(depth * rows, 9));
        let mut out = Matrix::zeros(rows, n);

        // Pack alone, then the dispatched kernel (pack included), then the
        // frozen scalar arm for the speedup denominator.
        let mut pack_buf: Vec<f32> = Vec::new();
        let pack_ns = time_ns(20000, || {
            std::hint::black_box(simd::pack_b_f32(x.data(), depth, n, &mut pack_buf));
        });
        let gemm_ns = time_ns(20000, || w.matmul_into(&x, &mut out));
        let scalar_ns = time_ns(20000, || {
            simd::gemm_f32_scalar(w.data(), rows, depth, x.data(), n, out.data_mut());
        });

        // Transposed variants at the same shapes (nt: B given row-major
        // transposed; tn: A given transposed — the backward-pass layouts).
        let nt_ns = time_ns(20000, || w.matmul_nt_into(&xt, &mut out));
        let mut out_tn = Matrix::zeros(rows, n);
        let tn_ns = time_ns(20000, || wt.matmul_tn_into(&x, &mut out_tn));

        // Fused gate activation sweep at gate shape (rows x n per gate).
        let mut g0 = lcg(rows * n, 3);
        let mut g1 = lcg(rows * n, 4);
        let mut g2 = lcg(rows * n, 5);
        let mut g3 = lcg(rows * n, 6);
        let gate_ns = time_ns(20000, || {
            simd::lstm_gate_sweep(&mut g0, &mut g1, &mut g2, &mut g3);
        });

        println!(
            "n={n:>3}  gemm {gemm_ns:>9.0} ns ({:.2}x scalar; pack {pack_ns:>7.0} ns = {:.0}%)   \
             nt {nt_ns:>9.0} ns   tn {tn_ns:>9.0} ns   gate sweep {gate_ns:>9.0} ns",
            scalar_ns / gemm_ns,
            100.0 * pack_ns / gemm_ns
        );
    }
}
