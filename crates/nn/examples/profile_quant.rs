//! Component-level profile of the int8 tier's building blocks (pack,
//! pair-GEMM, gate sweeps) against their f32 counterparts — the dev tool
//! behind the numbers in `docs/perf.md` §6.  Not a regression gate; the
//! end-to-end floors live in the `bench` crate's check mode.
//!
//! `cargo run -p nn --release --example profile_quant`

use nn::matrix::Matrix;
use nn::quant::QuantMatrix;
use nn::simd;
use std::time::Instant;

fn lcg(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            (seed >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
        })
        .collect()
}

fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let (rows, depth) = (32usize, 48usize);
    for n in [1usize, 8, 16, 64] {
        let w = Matrix::from_vec(rows, depth, lcg(rows * depth, 1));
        let x = Matrix::from_vec(depth, n, lcg(depth * n, 2));
        let q = QuantMatrix::quantize(&w);
        let mut out = Matrix::zeros(rows, n);

        let f32_ns = time_ns(20000, || w.matmul_into(&x, &mut out));
        let q8_ns = time_ns(20000, || q.matmul_into(&x, &mut out));
        let pack_ns = time_ns(20000, || {
            std::hint::black_box(nn::quant::PackedActivations::pack(&x));
        });
        let packed = nn::quant::PackedActivations::pack(&x);
        let gemm_ns = time_ns(20000, || q.matmul_packed(&packed, &mut out));

        // activation sweep at gate shape (rows x n per gate, 4 gates)
        let mut g0 = lcg(rows * n, 3);
        let mut g1 = lcg(rows * n, 4);
        let mut g2 = lcg(rows * n, 5);
        let mut g3 = lcg(rows * n, 6);
        let gate_ns = time_ns(20000, || {
            simd::lstm_gate_sweep(&mut g0, &mut g1, &mut g2, &mut g3);
        });
        let gate_fast_ns = time_ns(20000, || {
            simd::lstm_gate_sweep_fast(&mut g0, &mut g1, &mut g2, &mut g3);
        });

        // plain tanh pass at hidden-state shape
        let mut h = lcg(rows * n, 7);
        let tanh_ns = time_ns(20000, || {
            for v in h.iter_mut() {
                *v = v.tanh();
            }
        });

        println!(
            "n={n:>3}  f32 matmul {f32_ns:>9.0} ns   q8 matmul {q8_ns:>9.0} ns ({:.2}x f32; pack {pack_ns:>7.0} \
             gemm {gemm_ns:>7.0})   gate sweep {gate_ns:>9.0} ns (fast {gate_fast_ns:>8.0} ns)   tanh(32xN) {tanh_ns:>8.0} ns",
            q8_ns / f32_ns
        );
    }
}
