//! Sliding-window q-error aggregation for drift detection.
//!
//! A serving system cannot afford to recompute workload-wide statistics on
//! every request; what it needs is a cheap, bounded view of *recent* accuracy
//! that can be compared against a frozen baseline.  [`QErrorWindow`] keeps the
//! last `capacity` observed q-errors in a ring, exposes their mean, and flags
//! drift when the windowed mean degrades past a multiplicative threshold of
//! the recorded baseline.
//!
//! The window is deliberately estimator-agnostic: callers push raw q-errors
//! (see [`crate::q_error`]) obtained however they like — in the serving
//! runtime they come from sampled `ExecMode::Count` ground-truth executions
//! of recently served plans.

use std::collections::VecDeque;

/// A bounded sliding window over observed q-errors with a frozen baseline.
///
/// Lifecycle:
/// 1. push q-errors as ground-truth observations arrive;
/// 2. once the window has filled, [`QErrorWindow::freeze_baseline`] records
///    the current mean as the tenant's healthy reference point;
/// 3. keep pushing — old observations are evicted FIFO;
/// 4. [`QErrorWindow::is_drifted`] reports whether the current windowed mean
///    exceeds `baseline * factor`.
///
/// After a model refresh, call [`QErrorWindow::clear`] to discard
/// observations made by the stale model while keeping the baseline, so the
/// next drift decision is made on fresh evidence only.
#[derive(Debug, Clone)]
pub struct QErrorWindow {
    buf: VecDeque<f64>,
    capacity: usize,
    baseline: Option<f64>,
}

impl QErrorWindow {
    /// Create a window holding at most `capacity` observations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "QErrorWindow capacity must be positive");
        QErrorWindow { buf: VecDeque::with_capacity(capacity), capacity, baseline: None }
    }

    /// Push one observed q-error, evicting the oldest observation if the
    /// window is full.  Non-finite values are ignored (a q-error produced by
    /// [`crate::q_error`] is always finite and `>= 1`); values below 1.0 are
    /// clamped up to the metric's floor.
    pub fn push(&mut self, q: f64) {
        if !q.is_finite() {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(q.max(crate::qerror::Q_ERROR_FLOOR));
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when the window holds `capacity` observations.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Maximum number of observations the window holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean q-error over the current window, or `None` when empty.
    ///
    /// Windows are small (tens to a few thousand entries), so an O(n) sum is
    /// cheaper and more robust than maintaining an incremental sum that can
    /// accumulate floating-point cancellation under heavy eviction.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }

    /// The frozen baseline mean, if one has been recorded.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Set the baseline explicitly (e.g. restored from a checkpoint or
    /// computed on a held-out validation set at publish time).
    pub fn set_baseline(&mut self, baseline: f64) {
        if baseline.is_finite() {
            self.baseline = Some(baseline.max(crate::qerror::Q_ERROR_FLOOR));
        }
    }

    /// Freeze the current windowed mean as the baseline and return it.
    /// Returns `None` (and records nothing) when the window is empty.
    pub fn freeze_baseline(&mut self) -> Option<f64> {
        let m = self.mean()?;
        self.baseline = Some(m);
        Some(m)
    }

    /// Ratio of the current mean to the baseline (`> 1` means worse than
    /// baseline).  `None` until both a baseline and observations exist.
    pub fn degradation(&self) -> Option<f64> {
        Some(self.mean()? / self.baseline?)
    }

    /// True when the window is full, a baseline is frozen, and the windowed
    /// mean exceeds `baseline * factor`.
    ///
    /// Requiring a *full* window prevents a refresh from being triggered by
    /// the first unlucky observation after a [`QErrorWindow::clear`].
    pub fn is_drifted(&self, factor: f64) -> bool {
        if !self.is_full() {
            return false;
        }
        match (self.mean(), self.baseline) {
            (Some(m), Some(b)) => m > b * factor,
            _ => false,
        }
    }

    /// Drop all observations but keep the frozen baseline.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_partial_window() {
        let mut w = QErrorWindow::new(4);
        assert!(w.mean().is_none());
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.mean(), Some(2.0));
        assert!(!w.is_full());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut w = QErrorWindow::new(3);
        for q in [10.0, 20.0, 30.0] {
            w.push(q);
        }
        assert!(w.is_full());
        assert_eq!(w.mean(), Some(20.0));
        // Pushing a fourth value evicts the oldest (10.0), not the newest.
        w.push(60.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.mean(), Some((20.0 + 30.0 + 60.0) / 3.0));
        // Saturate with a constant: window must fully forget the past.
        for _ in 0..3 {
            w.push(2.0);
        }
        assert_eq!(w.mean(), Some(2.0));
    }

    #[test]
    fn threshold_crossing_fires_only_past_factor() {
        let mut w = QErrorWindow::new(4);
        for _ in 0..4 {
            w.push(2.0);
        }
        assert_eq!(w.freeze_baseline(), Some(2.0));
        // Mean equal to baseline: not drifted at any factor >= 1.
        assert!(!w.is_drifted(1.0));
        // Degrade to mean 3.0: 1.5x the baseline.
        for _ in 0..4 {
            w.push(3.0);
        }
        assert_eq!(w.degradation(), Some(1.5));
        assert!(w.is_drifted(1.2));
        assert!(w.is_drifted(1.49));
        assert!(!w.is_drifted(1.5)); // strict inequality at the threshold
        assert!(!w.is_drifted(2.0));
    }

    #[test]
    fn partial_window_never_drifts() {
        let mut w = QErrorWindow::new(8);
        w.set_baseline(1.0);
        for _ in 0..7 {
            w.push(100.0);
        }
        assert!(!w.is_drifted(1.1), "partial window must not trigger");
        w.push(100.0);
        assert!(w.is_drifted(1.1));
    }

    #[test]
    fn no_baseline_never_drifts() {
        let mut w = QErrorWindow::new(2);
        w.push(50.0);
        w.push(50.0);
        assert!(!w.is_drifted(1.0));
    }

    #[test]
    fn clear_keeps_baseline() {
        let mut w = QErrorWindow::new(2);
        w.push(2.0);
        w.push(2.0);
        w.freeze_baseline();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.baseline(), Some(2.0));
        assert!(!w.is_drifted(1.0));
    }

    #[test]
    fn non_finite_and_sub_floor_inputs_are_sanitised() {
        let mut w = QErrorWindow::new(4);
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        assert!(w.is_empty());
        w.push(0.25); // clamped to the q-error floor
        assert_eq!(w.mean(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = QErrorWindow::new(0);
    }
}
