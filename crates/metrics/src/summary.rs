//! Summary statistics over a vector of per-query errors.
//!
//! Mirrors the rows of Tables 7, 8, 10 and 11 of the paper:
//! median, 90th, 95th, 99th percentile, max and mean.

use serde::{Deserialize, Serialize};

/// Percentile summary of a set of per-query errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    pub median: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
    /// Number of samples the summary was computed over.
    pub count: usize,
}

impl ErrorSummary {
    /// Compute the summary of a slice of errors.
    ///
    /// Returns a summary full of zeros when the slice is empty.
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorSummary { median: 0.0, p90: 0.0, p95: 0.0, p99: 0.0, max: 0.0, mean: 0.0, count: 0 };
        }
        let mut sorted: Vec<f64> = errors.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if sorted.is_empty() {
            return ErrorSummary { median: 0.0, p90: 0.0, p95: 0.0, p99: 0.0, max: 0.0, mean: 0.0, count: 0 };
        }
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        ErrorSummary {
            median: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
            mean,
            count: sorted.len(),
        }
    }

    /// Additional percentile not stored in the struct (e.g. 25th/75th for the
    /// box plots of Figure 9).
    pub fn percentile_of(errors: &[f64], p: f64) -> f64 {
        let mut sorted: Vec<f64> = errors.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return 0.0;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        percentile(&sorted, p)
    }

    /// Render the summary in the layout of the paper's tables.
    pub fn as_row(&self, label: &str) -> String {
        format!(
            "{:<18} median {:>9.2}  90th {:>9.2}  95th {:>9.2}  99th {:>10.2}  max {:>11.2}  mean {:>9.2}",
            label, self.median, self.p90, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// Linear-interpolated percentile over an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 1.0);
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = ErrorSummary::from_errors(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_element() {
        let s = ErrorSummary::from_errors(&[5.0]);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn median_of_odd() {
        let s = ErrorSummary::from_errors(&[1.0, 100.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn max_and_mean() {
        let s = ErrorSummary::from_errors(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_monotone() {
        let errs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(&errs);
        assert!(s.median <= s.p90);
        assert!(s.p90 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn non_finite_filtered() {
        let s = ErrorSummary::from_errors(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn extra_percentile() {
        let errs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p25 = ErrorSummary::percentile_of(&errs, 0.25);
        assert!(p25 > 20.0 && p25 < 30.0);
    }

    #[test]
    fn row_contains_label() {
        let s = ErrorSummary::from_errors(&[1.0, 2.0]);
        assert!(s.as_row("PGCard").contains("PGCard"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn summary_within_min_max(errs in proptest::collection::vec(1.0f64..1e6, 1..200)) {
            let s = ErrorSummary::from_errors(&errs);
            let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = errs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(s.median >= min - 1e-9 && s.median <= max + 1e-9);
            prop_assert!(s.mean >= min - 1e-9 && s.mean <= max + 1e-9);
            prop_assert!((s.max - max).abs() < 1e-9);
        }

        #[test]
        fn percentiles_are_ordered(errs in proptest::collection::vec(1.0f64..1e6, 2..300)) {
            let s = ErrorSummary::from_errors(&errs);
            prop_assert!(s.median <= s.p90 + 1e-9);
            prop_assert!(s.p90 <= s.p95 + 1e-9);
            prop_assert!(s.p95 <= s.p99 + 1e-9);
            prop_assert!(s.p99 <= s.max + 1e-9);
        }
    }
}
