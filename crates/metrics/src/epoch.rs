//! Per-epoch training statistics shared by every trainable estimator
//! backend.
//!
//! The tree model (`estimator_core::Trainer`) and the MSCN baseline
//! (`mscn::MscnTrainer`) used to report training progress in incompatible
//! shapes (`Vec<EpochStats>` vs a bare `Vec<f64>` of losses), which made the
//! benches treat every backend as a special case.  [`EpochStats`] is the one
//! record both produce: the mean training loss, the mean validation q-error
//! per target, and the epoch's wall time.

use serde::{Deserialize, Serialize};

/// Statistics of one training epoch (the validation curves of Figures 7/8).
///
/// Single-task backends fill only the q-error field of the target they
/// train; the other field is `f64::NAN` ("not trained"), never silently 1.0.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch's mini-batches.
    pub train_loss: f64,
    /// Mean cardinality q-error on the held-out validation split
    /// (`f64::NAN` when the backend does not train a cardinality head).
    pub validation_card_qerror_mean: f64,
    /// Mean cost q-error on the held-out validation split (`f64::NAN` when
    /// the backend does not train a cost head).
    pub validation_cost_qerror_mean: f64,
    /// Wall time of the epoch (training + validation), in seconds.
    pub wall_time_secs: f64,
}

impl EpochStats {
    /// The validation metric an early-stop policy should track: the mean of
    /// whichever per-target q-errors were actually measured.
    pub fn validation_metric(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for q in [self.validation_card_qerror_mean, self.validation_cost_qerror_mean] {
            if q.is_finite() {
                sum += q;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_metric_averages_finite_targets() {
        let both = EpochStats {
            epoch: 0,
            train_loss: 1.0,
            validation_card_qerror_mean: 2.0,
            validation_cost_qerror_mean: 4.0,
            wall_time_secs: 0.1,
        };
        assert_eq!(both.validation_metric(), 3.0);
        let card_only = EpochStats { validation_cost_qerror_mean: f64::NAN, ..both };
        assert_eq!(card_only.validation_metric(), 2.0);
        let none = EpochStats { validation_card_qerror_mean: f64::NAN, ..card_only };
        assert!(none.validation_metric().is_nan());
    }
}
