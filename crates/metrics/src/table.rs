//! Plain-text report tables printed by the benchmark harnesses.
//!
//! Each reproduction bench prints the same rows as the corresponding table
//! in the paper (method name + median/90th/95th/99th/max/mean), so the
//! output can be compared side-by-side with the published numbers.

use crate::summary::ErrorSummary;

/// A table of error summaries, one row per method, as printed in the paper.
#[derive(Debug, Clone, Default)]
pub struct ReportTable {
    title: String,
    rows: Vec<(String, ErrorSummary)>,
}

impl ReportTable {
    /// Create an empty table with the given title (e.g. "Table 7: JOB-light").
    pub fn new(title: impl Into<String>) -> Self {
        ReportTable { title: title.into(), rows: Vec::new() }
    }

    /// Append a row computed from raw per-query errors.
    pub fn add_errors(&mut self, method: impl Into<String>, errors: &[f64]) -> &mut Self {
        self.rows.push((method.into(), ErrorSummary::from_errors(errors)));
        self
    }

    /// Append a precomputed summary row.
    pub fn add_summary(&mut self, method: impl Into<String>, summary: ErrorSummary) -> &mut Self {
        self.rows.push((method.into(), summary));
        self
    }

    /// Rows added so far.
    pub fn rows(&self) -> &[(String, ErrorSummary)] {
        &self.rows
    }

    /// Title of the table.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render the table as a multi-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!(
            "{:<18} {:>16} {:>14} {:>14} {:>15} {:>16} {:>14}\n",
            "method", "median", "90th", "95th", "99th", "max", "mean"
        ));
        for (name, s) in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>16.2} {:>14.2} {:>14.2} {:>15.2} {:>16.2} {:>14.2}\n",
                name, s.median, s.p90, s.p95, s.p99, s.max, s.mean
            ));
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows() {
        let mut t = ReportTable::new("Table X");
        t.add_errors("PGCard", &[1.0, 2.0, 3.0]);
        t.add_errors("TLSTMCard", &[1.0, 1.5]);
        let r = t.render();
        assert!(r.contains("Table X"));
        assert!(r.contains("PGCard"));
        assert!(r.contains("TLSTMCard"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn summary_row_roundtrip() {
        let mut t = ReportTable::new("t");
        let s = ErrorSummary::from_errors(&[2.0, 4.0]);
        t.add_summary("m", s);
        assert_eq!(t.rows()[0].1, s);
    }

    #[test]
    fn title_accessor() {
        let t = ReportTable::new("Table 12");
        assert_eq!(t.title(), "Table 12");
    }
}
