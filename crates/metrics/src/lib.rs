//! Evaluation metrics used throughout the reproduction of
//! "An End-to-End Learning-based Cost Estimator" (VLDB 2019).
//!
//! The paper evaluates estimators with the *q-error* metric and reports the
//! median / 90th / 95th / 99th percentile, maximum and mean over a workload
//! (Section 6.1).  This crate provides those statistics plus small helpers
//! for formatting the rows printed by the benchmark harnesses.

pub mod epoch;
pub mod qerror;
pub mod summary;
pub mod table;
pub mod window;

pub use epoch::EpochStats;
pub use qerror::{q_error, q_error_log};
pub use summary::ErrorSummary;
pub use table::ReportTable;
pub use window::QErrorWindow;
