//! The q-error metric.
//!
//! `qerror(est, real) = max(est, real) / min(est, real)`, with both values
//! clamped to a small positive floor so that empty results (cardinality 0)
//! do not produce infinite errors — the same convention used by the MSCN
//! and JOB evaluation scripts.

/// Smallest value an estimate or a true value is clamped to before the ratio
/// is computed.  Cardinalities of zero are mapped to one tuple.
pub const Q_ERROR_FLOOR: f64 = 1.0;

/// Compute the q-error between an estimate and the true value.
///
/// The result is always `>= 1.0`; `1.0` means a perfect estimate.
///
/// ```
/// use metrics::q_error;
/// assert_eq!(q_error(10.0, 100.0), 10.0);
/// assert_eq!(q_error(100.0, 10.0), 10.0);
/// assert_eq!(q_error(5.0, 5.0), 1.0);
/// ```
pub fn q_error(estimate: f64, real: f64) -> f64 {
    let e = if estimate.is_finite() { estimate.max(Q_ERROR_FLOOR) } else { Q_ERROR_FLOOR };
    let r = if real.is_finite() { real.max(Q_ERROR_FLOOR) } else { Q_ERROR_FLOOR };
    if e > r {
        e / r
    } else {
        r / e
    }
}

/// The natural logarithm of the q-error, `|ln est - ln real|` after clamping.
///
/// This is the quantity the training loss optimises (it is monotone in the
/// q-error and numerically better behaved).
pub fn q_error_log(estimate: f64, real: f64) -> f64 {
    q_error(estimate, real).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_is_one() {
        assert_eq!(q_error(42.0, 42.0), 1.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(q_error(2.0, 8.0), q_error(8.0, 2.0));
    }

    #[test]
    fn zero_real_is_clamped() {
        assert_eq!(q_error(10.0, 0.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn non_finite_inputs_do_not_poison() {
        assert!(q_error(f64::NAN, 10.0).is_finite());
        assert!(q_error(f64::INFINITY, 10.0).is_finite());
    }

    #[test]
    fn log_qerror_matches() {
        let q = q_error(3.0, 27.0);
        assert!((q_error_log(3.0, 27.0) - q.ln()).abs() < 1e-12);
    }

    #[test]
    fn always_at_least_one() {
        for (e, r) in [(0.1, 0.2), (1e-9, 1e9), (7.0, 7.0)] {
            assert!(q_error(e, r) >= 1.0);
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn qerror_ge_one(e in 0.0f64..1e12, r in 0.0f64..1e12) {
            prop_assert!(q_error(e, r) >= 1.0);
        }

        #[test]
        fn qerror_symmetric(e in 1.0f64..1e9, r in 1.0f64..1e9) {
            prop_assert!((q_error(e, r) - q_error(r, e)).abs() < 1e-9);
        }

        #[test]
        fn scaling_both_preserves_qerror(e in 1.0f64..1e6, r in 1.0f64..1e6, k in 1.0f64..1e3) {
            let a = q_error(e, r);
            let b = q_error(e * k, r * k);
            prop_assert!((a - b).abs() / a < 1e-6);
        }
    }
}
