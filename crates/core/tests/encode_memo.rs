//! Contract tests of the memoized featurization path: signature-memoized
//! `encode_plans` must be **bit-identical** to fresh `encode_plan` — cold
//! cache, warm cache, under eviction, and under concurrent sessions sharing
//! one [`EncodedSubtreeCache`].

use estimator_core::EncodedSubtreeCache;
use featurize::{EncodedPlan, EncodingConfig, FeatureExtractor};
use imdb::{generate_imdb, GeneratorConfig};
use proptest::prelude::*;
use query::PlanNode;
use std::sync::{Arc, OnceLock};
use strembed::HashBitmapEncoder;
use workloads::{generate_enumeration_workload, EnumerationConfig};

struct Fixture {
    db: Arc<imdb::Database>,
    fx: FeatureExtractor,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        Fixture { db, fx }
    })
}

proptest! {
    #[test]
    fn memoized_encode_is_bit_identical_on_randomized_planner_output(seed in 0u64..1_000_000) {
        let fixture = fixture();
        let workload = generate_enumeration_workload(
            &fixture.db,
            EnumerationConfig { num_queries: 1, min_joins: 1, max_joins: 3, max_candidates_per_query: 12, seed },
        );
        prop_assert!(!workload.is_empty(), "no enumerable query for seed {seed}");
        let candidates = &workload[0].candidates;
        let fresh: Vec<EncodedPlan> = candidates.iter().map(|c| fixture.fx.encode_plan(c)).collect();

        // Cold shared cache: every plan bit-identical to fresh encoding.
        let cache = EncodedSubtreeCache::new();
        let cold = fixture.fx.encode_plans_cached(candidates, &cache);
        prop_assert_eq!(cold.len(), fresh.len());
        for (c, f) in cold.iter().zip(&fresh) {
            prop_assert_eq!(c.as_ref(), f);
        }
        // Candidates of one enumeration share their leaf scans, so the
        // batch itself must have deduplicated (cache hits within one pass).
        let (hits, misses) = cache.stats();
        prop_assert!(hits > 0, "candidate join orders share scans; expected intra-batch hits");
        prop_assert!(misses as usize >= cache.len());

        // Warm cache: still bit-identical, now served from memo entries.
        let warm = fixture.fx.encode_plans_cached(candidates, &cache);
        for (w, f) in warm.iter().zip(&fresh) {
            prop_assert_eq!(w.as_ref(), f);
        }

        // The allocation-local batch front door agrees too.
        let local = fixture.fx.encode_plans(candidates);
        prop_assert_eq!(&local, &fresh);

        // Eviction can only cost re-encodes, never change results: a
        // one-entry-per-shard cache thrashes constantly and must still be
        // bit-identical.
        let tiny = EncodedSubtreeCache::with_shard_capacity(1);
        let evicted = fixture.fx.encode_plans_cached(candidates, &tiny);
        for (e, f) in evicted.iter().zip(&fresh) {
            prop_assert_eq!(e.as_ref(), f);
        }
    }
}

#[test]
fn concurrent_sessions_share_the_encode_cache_without_lost_updates() {
    let fixture = fixture();
    let workload = generate_enumeration_workload(
        &fixture.db,
        EnumerationConfig { num_queries: 6, min_joins: 2, max_joins: 3, max_candidates_per_query: 40, seed: 11 },
    );
    let stream: Vec<PlanNode> = workload.into_iter().flat_map(|s| s.candidates).collect();
    let total_nodes: usize = stream.iter().map(|p| p.size()).sum();
    let fresh: Vec<EncodedPlan> = stream.iter().map(|p| fixture.fx.encode_plan(p)).collect();

    const THREADS: usize = 8;
    let cache = Arc::new(EncodedSubtreeCache::new());
    let results: Vec<Vec<Arc<EncodedPlan>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let stream = &stream;
                let fx = &fixture.fx;
                scope.spawn(move || fx.encode_plans_cached(stream, cache.as_ref()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("encode thread")).collect()
    });

    // Every session's output is bit-identical to single-threaded fresh
    // encoding — concurrent insert races can duplicate work but never
    // surface a wrong or partially-written entry.
    for per_thread in &results {
        assert_eq!(per_thread.len(), fresh.len());
        for (got, want) in per_thread.iter().zip(&fresh) {
            assert_eq!(got.as_ref(), want, "shared-cache encode must match fresh encoding");
        }
    }

    // Counters balance: one probe per plan node per session, every probe
    // either hit or missed, and no insert was lost (every resident entry
    // traces back to a miss).
    let (hits, misses) = cache.stats();
    assert_eq!(hits + misses, (THREADS * total_nodes) as u64, "every node probes the cache exactly once");
    assert!(misses as usize >= cache.len(), "every resident entry stems from a miss");
    assert!(!cache.is_empty(), "the shared cache must retain the workload's distinct subtrees");
    // Sessions after the first mostly hit: the workload has far fewer
    // distinct subtrees than 8x its node count.
    assert!(hits > misses, "warm sessions must be dominated by hits");
}
