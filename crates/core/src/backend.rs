//! The pluggable estimator-backend layer.
//!
//! The paper's evaluation is comparative: the tree-structured model against
//! the MSCN set model and a traditional histogram estimator, on the same
//! workloads.  [`Estimator`] and [`TrainableEstimator`] are the contract
//! all three families implement, so the planner, the benches and the
//! serving layer drive any backend generically:
//!
//! * `CostEstimator` (this crate) — the tree model, both targets,
//!   checkpointable;
//! * `mscn::MscnEstimator` — single-target learned baseline,
//!   checkpointable;
//! * `pgest::TraditionalEstimator` — both targets from `ANALYZE`
//!   statistics, nothing to fit or checkpoint.
//!
//! Capability flags ([`EstimatorCapabilities`]) say which targets a backend
//! actually models and whether it can persist itself; estimates come back
//! as [`PlanEstimate`] with `None` in the slots the backend cannot fill, so
//! a cost-less backend never smuggles a fake number into a report.

use crate::trainer::EpochStats;
use nn::checkpoint::CheckpointError;
use query::PlanNode;
use std::path::Path;

/// What an estimator backend can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorCapabilities {
    /// The backend models plan **cost**.
    pub cost: bool,
    /// The backend models plan **cardinality**.
    pub cardinality: bool,
    /// The backend supports `save_checkpoint_to` / `load_checkpoint_from`.
    pub checkpointable: bool,
}

/// One backend's estimate for one plan; `None` in a slot the backend does
/// not model (see [`EstimatorCapabilities`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    pub cost: Option<f64>,
    pub cardinality: Option<f64>,
}

impl PlanEstimate {
    /// An estimate carrying both targets.
    pub fn both(cost: f64, cardinality: f64) -> Self {
        PlanEstimate { cost: Some(cost), cardinality: Some(cardinality) }
    }
}

/// A fitted (or statistics-backed) estimator over physical plans.
pub trait Estimator {
    /// Stable backend identifier (used by registries and reports).
    fn backend_name(&self) -> &str;

    /// Which targets this backend models and whether it checkpoints.
    fn capabilities(&self) -> EstimatorCapabilities;

    /// Estimate one plan.
    ///
    /// # Panics
    /// May panic if the backend requires fitting and has not been fitted;
    /// use [`TrainableEstimator::is_fitted`] to check first.
    fn estimate_one(&self, plan: &PlanNode) -> PlanEstimate;

    /// Estimate many plans; backends override this with their batched
    /// inference paths.
    fn estimate_many(&self, plans: &[PlanNode]) -> Vec<PlanEstimate> {
        plans.iter().map(|p| self.estimate_one(p)).collect()
    }

    /// Persist the fitted model (versioned binary checkpoint).
    fn save_checkpoint_to(&self, _path: &Path) -> Result<(), CheckpointError> {
        Err(CheckpointError::Unsupported("this backend does not checkpoint"))
    }

    /// Restore a fitted model saved by `save_checkpoint_to`, replacing any
    /// current fit and invalidating every estimate cache.
    fn load_checkpoint_from(&mut self, _path: &Path) -> Result<(), CheckpointError> {
        Err(CheckpointError::Unsupported("this backend does not checkpoint"))
    }
}

/// An estimator trained from executed (annotated) plans.
pub trait TrainableEstimator: Estimator {
    /// Fit the backend on annotated plans, returning the shared per-epoch
    /// statistics (empty for backends with nothing iterative to train).
    fn fit_plans(&mut self, plans: &[PlanNode]) -> Vec<EpochStats>;

    /// True once the backend can serve estimates.
    fn is_fitted(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl Estimator for Fixed {
        fn backend_name(&self) -> &str {
            "fixed"
        }
        fn capabilities(&self) -> EstimatorCapabilities {
            EstimatorCapabilities { cost: false, cardinality: true, checkpointable: false }
        }
        fn estimate_one(&self, _plan: &PlanNode) -> PlanEstimate {
            PlanEstimate { cost: None, cardinality: Some(42.0) }
        }
    }

    #[test]
    fn default_batch_maps_single_and_checkpoint_is_typed_unsupported() {
        use query::{PhysicalOp, PlanNode};
        let mut est = Fixed;
        let plans = vec![PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: None }); 3];
        let out = est.estimate_many(&plans);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], PlanEstimate { cost: None, cardinality: Some(42.0) });
        assert!(matches!(est.save_checkpoint_to(Path::new("/nonexistent")), Err(CheckpointError::Unsupported(_))));
        assert!(matches!(est.load_checkpoint_from(Path::new("/nonexistent")), Err(CheckpointError::Unsupported(_))));
    }
}
