//! Level-wise batched inference (Section 4.3, "Batch Training").
//!
//! Instead of running the representation cell once per node per plan, all
//! nodes at the same tree level (height above the leaves) across a whole
//! batch of plans are packed into one matrix and the cell runs once per
//! level.  The model only needs `D` cell invocations for a batch (where `D`
//! is the maximum tree depth) instead of one per node — the speed-up that
//! Table 12 measures.

use crate::model::TreeModel;
use crate::trainer::TargetNormalization;
use featurize::EncodedPlan;
use nn::cells::CellOutput;
use nn::{Graph, NodeId, ParamStore};
use std::collections::HashMap;

/// Flattened view of one node of one plan in the batch.
struct FlatNode<'a> {
    height: usize,
    children: Vec<usize>,
    encoded: &'a EncodedPlan,
}

fn flatten<'a>(plan: &'a EncodedPlan, plan_idx: usize, out: &mut Vec<FlatNode<'a>>) -> (usize, usize) {
    let mut child_ids = Vec::new();
    let mut max_child_height = 0;
    // Reserve our slot first so parents precede children in `out` order is
    // irrelevant — we only need indices.
    let my_idx = out.len();
    let _ = plan_idx;
    out.push(FlatNode { height: 1, children: Vec::new(), encoded: plan });
    for c in &plan.children {
        let (cid, ch) = flatten(c, plan_idx, out);
        child_ids.push(cid);
        max_child_height = max_child_height.max(ch);
    }
    let height = 1 + max_child_height;
    out[my_idx].children = child_ids;
    out[my_idx].height = height;
    (my_idx, height)
}

/// Estimate a batch of encoded plans with level-wise batching.
///
/// Returns `(cost, cardinality)` per plan, in input order, denormalized with
/// `normalization`.
pub fn estimate_batch(
    model: &TreeModel,
    store: &ParamStore,
    normalization: &TargetNormalization,
    plans: &[EncodedPlan],
) -> Vec<(f64, f64)> {
    if plans.is_empty() {
        return Vec::new();
    }
    let mut flat: Vec<FlatNode> = Vec::new();
    let mut roots = Vec::with_capacity(plans.len());
    for (pi, p) in plans.iter().enumerate() {
        let (root_idx, _) = flatten(p, pi, &mut flat);
        roots.push(root_idx);
    }
    let max_height = flat.iter().map(|n| n.height).max().unwrap_or(1);

    let mut g = Graph::new();
    // Embed every node individually (feature widths differ per group), then
    // run the representation cell once per level over column-concatenated
    // embeddings.
    let embedded: Vec<NodeId> =
        flat.iter().map(|n| model.embed_node(&mut g, store, &n.encoded.features)).collect();

    // node index -> its computed (G, R) columns.
    let mut states: HashMap<usize, CellOutput> = HashMap::new();

    for level in 1..=max_height {
        let level_nodes: Vec<usize> =
            flat.iter().enumerate().filter(|(_, n)| n.height == level).map(|(i, _)| i).collect();
        if level_nodes.is_empty() {
            continue;
        }
        // Batched feature input for the level.
        let xs: Vec<NodeId> = level_nodes.iter().map(|&i| embedded[i]).collect();
        let x_batch = g.concat_cols(&xs);

        // Batched children states: for each node take its (left, right) child
        // state columns, using zero states for missing children.
        let zero = model.zero_state_batch(&mut g, 1);
        let mut left_cols = Vec::with_capacity(level_nodes.len());
        let mut right_cols = Vec::with_capacity(level_nodes.len());
        for &i in &level_nodes {
            let children = &flat[i].children;
            let left = children.first().and_then(|c| states.get(c)).copied().unwrap_or(zero);
            let right = children.get(1).and_then(|c| states.get(c)).copied().unwrap_or(zero);
            left_cols.push(left);
            right_cols.push(right);
        }
        let left_g = g.concat_cols(&left_cols.iter().map(|c| c.g).collect::<Vec<_>>());
        let left_r = g.concat_cols(&left_cols.iter().map(|c| c.r).collect::<Vec<_>>());
        let right_g = g.concat_cols(&right_cols.iter().map(|c| c.g).collect::<Vec<_>>());
        let right_r = g.concat_cols(&right_cols.iter().map(|c| c.r).collect::<Vec<_>>());

        let out = model.apply_cell(
            &mut g,
            store,
            x_batch,
            CellOutput { g: left_g, r: left_r },
            CellOutput { g: right_g, r: right_r },
        );
        // Split the batched output back into per-node columns.
        for (col, &i) in level_nodes.iter().enumerate() {
            let gi = g.column_at(out.g, col);
            let ri = g.column_at(out.r, col);
            states.insert(i, CellOutput { g: gi, r: ri });
        }
    }

    // Batched estimation heads over all roots at once.
    let root_rs: Vec<NodeId> = roots.iter().map(|r| states[r].r).collect();
    let r_batch = g.concat_cols(&root_rs);
    let (cost_out, card_out) = model.estimate_from_representation(&mut g, store, r_batch);
    let cost_vals = g.value(cost_out).clone();
    let card_vals = g.value(card_out).clone();

    (0..plans.len())
        .map(|i| {
            (
                normalization.cost.denormalize(cost_vals.get(0, i)),
                normalization.cardinality.denormalize(card_vals.get(0, i)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, TreeModel};
    use crate::trainer::{Trainer, TrainConfig};
    use featurize::{EncodingConfig, FeatureExtractor};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use std::sync::Arc;
    use strembed::HashBitmapEncoder;

    fn samples(n: usize) -> (Vec<EncodedPlan>, EncodingConfig) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg.clone(), Arc::new(HashBitmapEncoder::new(8)));
        let cost = engine::CostModel::default();
        let mut out = Vec::new();
        for i in 0..n {
            let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom(
                    "title",
                    "production_year",
                    CompareOp::Gt,
                    Operand::Num((1940 + i * 3) as f64),
                )),
            });
            let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
            let mut join = PlanNode::inner(
                PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
                vec![scan_t, scan_mc],
            );
            engine::execute_plan(&db, &mut join, &cost);
            out.push(fx.encode_plan(&join));
        }
        (out, cfg)
    }

    #[test]
    fn batched_estimates_match_one_by_one() {
        let (plans, cfg) = samples(10);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let batched = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        assert_eq!(batched.len(), plans.len());
        for (plan, (bcost, bcard)) in plans.iter().zip(batched.iter()) {
            let (cost, card) = trainer.estimate(plan);
            assert!((cost.ln() - bcost.ln()).abs() < 1e-3, "cost mismatch: {cost} vs {bcost}");
            assert!((card.ln() - bcard.ln()).abs() < 1e-3, "card mismatch: {card} vs {bcard}");
        }
    }

    #[test]
    fn empty_batch_returns_empty() {
        let (plans, cfg) = samples(2);
        let model = TreeModel::new(&cfg, ModelConfig::default());
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        assert!(estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &[]).is_empty());
    }

    #[test]
    fn single_leaf_plan_in_batch() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg.clone(), Arc::new(HashBitmapEncoder::new(8)));
        let mut scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "keyword".into(), predicate: None });
        engine::execute_plan(&db, &mut scan, &engine::CostModel::default());
        let plan = fx.encode_plan(&scan);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, std::slice::from_ref(&plan), TrainConfig::default());
        let out = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &[plan.clone()]);
        assert_eq!(out.len(), 1);
        assert!(out[0].0.is_finite() && out[0].1.is_finite());
    }
}
