//! Level-wise batched inference (Section 4.3, "Batch Training").
//!
//! Instead of running the representation cell once per node per plan, all
//! nodes at the same tree level (height above the leaves) across a whole
//! batch of plans are packed into one matrix and the cell runs once per
//! level.  The model only needs `D` cell invocations for a batch (where `D`
//! is the maximum tree depth) instead of one per node — the speed-up that
//! Table 12 measures.
//!
//! # Hot-path layout
//!
//! The implementation here is the optimized form (see `docs/perf.md`):
//!
//! * nodes are bucketed by level in **one pass** over the flattened batch
//!   (`O(N)`), not re-scanned once per level (`O(D·N)`);
//! * per-node cell state lives in a dense `Vec` indexed by flat-node id, not
//!   a `HashMap`;
//! * the feature embedding layers run once per level over column-stacked
//!   inputs ([`TreeModel::embed_nodes_batch`]) instead of once per node;
//! * inference runs on an inference-mode tape ([`Graph::inference`]): no
//!   gradient slots, no op metadata;
//! * tapes are **per-thread** (with a parking pool handing warm tapes from
//!   finished threads to new ones), so concurrent estimators never
//!   serialize on a shared tape lock;
//! * independent groups of plans are estimated in parallel with rayon.
//!
//! On top of the level batching, [`estimate_batch_memo`] adds **subtree
//! memoization** for optimizer-in-the-loop serving: per-node `(G, R)` cell
//! states are cached in a sharded [`SubtreeStateCache`] keyed by the 64-bit
//! sub-plan signature, so a DP enumeration embeds each distinct subtree once
//! and re-scores candidate plans by combining cached states at the fringe —
//! with bit-identical results to the memoization-free path.
//!
//! [`reference::estimate_batch_reference`] preserves the original
//! implementation as a correctness oracle and as the "pre-optimization
//! batched path" baseline of the Table-12 efficiency bench.

use crate::memory::{SubtreeState, SubtreeStateCache};
use crate::model::TreeModel;
use crate::trainer::TargetNormalization;
use featurize::EncodedPlan;
use nn::cells::CellOutput;
use nn::{Graph, NodeId, ParamStore, QuantWeights};
use rayon::prelude::*;

/// Plans per parallel group.  Large enough that the per-level matrices fill
/// the blocked-matmul tiles and the per-level tape overhead amortizes,
/// small enough that large batches still split across cores.  Public so
/// harnesses comparing against the batched path can chunk identically.
pub const GROUP_SIZE: usize = 64;

/// Flattened view of one node of one plan in the batch.
struct FlatNode<'a> {
    height: usize,
    children: Vec<usize>,
    encoded: &'a EncodedPlan,
}

/// Dense per-node cell state: a (level-output node, column) pair per channel
/// — columns are gathered lazily with one `gather_cols` tape node per
/// channel per level instead of one `column_at` node per plan node.
#[derive(Clone, Copy)]
struct StateRef {
    g: (NodeId, usize),
    r: (NodeId, usize),
}

/// Flatten `plan` into `out`, returning `(flat index of the root, height)`.
fn flatten<'a>(plan: &'a EncodedPlan, out: &mut Vec<FlatNode<'a>>) -> (usize, usize) {
    // Reserve our slot first; children are pushed after and linked by index.
    let my_idx = out.len();
    out.push(FlatNode { height: 1, children: Vec::new(), encoded: plan });
    let mut child_ids = Vec::new();
    let mut max_child_height = 0;
    for c in &plan.children {
        let (cid, ch) = flatten(c, out);
        child_ids.push(cid);
        max_child_height = max_child_height.max(ch);
    }
    let height = 1 + max_child_height;
    out[my_idx].children = child_ids;
    out[my_idx].height = height;
    (my_idx, height)
}

/// Estimate a batch of encoded plans with level-wise batching.
///
/// Returns `(cost, cardinality)` per plan, in input order, denormalized with
/// `normalization`.  Groups of [`GROUP_SIZE`] plans are estimated in
/// parallel.
pub fn estimate_batch(
    model: &TreeModel,
    store: &ParamStore,
    normalization: &TargetNormalization,
    plans: &[EncodedPlan],
) -> Vec<(f64, f64)> {
    let refs: Vec<&EncodedPlan> = plans.iter().collect();
    estimate_batch_refs(model, store, normalization, &refs)
}

/// [`estimate_batch`] over plan references (avoids cloning plans when the
/// caller batches a subset, e.g. the trainer's validation split).
pub fn estimate_batch_refs(
    model: &TreeModel,
    store: &ParamStore,
    normalization: &TargetNormalization,
    plans: &[&EncodedPlan],
) -> Vec<(f64, f64)> {
    if plans.is_empty() {
        return Vec::new();
    }
    if plans.len() <= GROUP_SIZE {
        return estimate_group(model, store, normalization, plans);
    }
    let groups: Vec<Vec<(f64, f64)>> =
        plans.par_chunks(GROUP_SIZE).map(|chunk| estimate_group(model, store, normalization, chunk)).collect();
    groups.concat()
}

/// Overflow pool that keeps warm tapes alive across *threads*: a worker
/// thread's tape is parked here when the thread exits (see [`TapeSlot`]) and
/// adopted by the next thread whose thread-local slot is still empty.  Only
/// touched on a thread's first and last use — never per estimate.
static PARKED_TAPES: std::sync::Mutex<Vec<Graph>> = std::sync::Mutex::new(Vec::new());

/// Thread-local tape holder whose `Drop` parks the tape in [`PARKED_TAPES`],
/// so short-lived worker threads (the vendored rayon spawns fresh scoped
/// threads per call) hand their warm buffer pools to their successors.
struct TapeSlot(Option<Graph>);

impl Drop for TapeSlot {
    fn drop(&mut self) {
        if let Some(g) = self.0.take() {
            if let Ok(mut pool) = PARKED_TAPES.lock() {
                pool.push(g);
            }
        }
    }
}

thread_local! {
    static INFERENCE_TAPE: std::cell::RefCell<TapeSlot> = const { std::cell::RefCell::new(TapeSlot(None)) };
}

/// Run `f` on this thread's warm inference tape (reset first).
///
/// Steady-state serving threads touch no lock at all here: the tape lives in
/// a thread-local slot, unlike the old process-wide `Mutex<Vec<Graph>>` pool
/// every concurrent estimator serialized on.  A thread's first call adopts a
/// parked tape from a finished thread (one mutex touch), and its last act is
/// parking the tape back (one more), so the warm buffer pools still survive
/// short-lived worker threads.
pub(crate) fn with_inference_tape<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    INFERENCE_TAPE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let g = slot
            .0
            .get_or_insert_with(|| PARKED_TAPES.lock().ok().and_then(|mut p| p.pop()).unwrap_or_else(Graph::inference));
        g.reset();
        f(g)
    })
}

/// Read the batched head outputs off a tape and denormalize them per plan.
fn denormalize_outputs(
    g: &Graph,
    normalization: &TargetNormalization,
    cost_out: NodeId,
    card_out: NodeId,
    n: usize,
) -> Vec<(f64, f64)> {
    let cost_vals = g.value(cost_out);
    let card_vals = g.value(card_out);
    (0..n)
        .map(|i| {
            (
                normalization.cost.denormalize(cost_vals.get(0, i)),
                normalization.cardinality.denormalize(card_vals.get(0, i)),
            )
        })
        .collect()
}

/// Estimate one group of plans on this thread's (recycled) inference tape.
fn estimate_group(
    model: &TreeModel,
    store: &ParamStore,
    normalization: &TargetNormalization,
    plans: &[&EncodedPlan],
) -> Vec<(f64, f64)> {
    with_inference_tape(|g| {
        let (cost_out, card_out) = forward_batch(model, store, g, plans);
        denormalize_outputs(g, normalization, cost_out, card_out, plans.len())
    })
}

/// Level-batched forward pass over `plans` on an existing tape, returning the
/// batched `(cost, cardinality)` head outputs (`1 x plans.len()` each, in
/// plan order, normalized space).
///
/// On a train-mode graph this is the forward half of mini-batch training
/// (`Trainer::train` seeds both heads and runs one backward sweep); on an
/// inference-mode graph it is the Table-12 batched estimation path.
///
/// # Panics
/// Panics if `plans` is empty.
pub fn forward_batch(model: &TreeModel, store: &ParamStore, g: &mut Graph, plans: &[&EncodedPlan]) -> (NodeId, NodeId) {
    forward_batch_q(model, store, None, g, plans)
}

/// Tier-aware [`forward_batch`]: every weight matrix present in `quant` runs
/// its matmuls on the int8 tier, dequantizing into the same f32 tape states
/// the full-precision path produces.  With `quant = None` this **is**
/// [`forward_batch`].
pub fn forward_batch_q(
    model: &TreeModel,
    store: &ParamStore,
    quant: Option<&QuantWeights>,
    g: &mut Graph,
    plans: &[&EncodedPlan],
) -> (NodeId, NodeId) {
    assert!(!plans.is_empty(), "forward_batch needs at least one plan");
    let mut flat: Vec<FlatNode> = Vec::new();
    let mut roots = Vec::with_capacity(plans.len());
    let mut max_height = 1;
    for p in plans {
        let (root_idx, h) = flatten(p, &mut flat);
        roots.push(root_idx);
        max_height = max_height.max(h);
    }

    // One-pass level bucketing: levels[h-1] holds the flat indices of all
    // nodes at height h, across every plan in the group.
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_height];
    for (i, n) in flat.iter().enumerate() {
        levels[n.height - 1].push(i);
    }

    let mut states: Vec<Option<StateRef>> = vec![None; flat.len()];
    let zero = model.zero_state_batch(g, 1);
    let zero_ref = StateRef { g: (zero.g, 0), r: (zero.r, 0) };

    for level_nodes in &levels {
        if level_nodes.is_empty() {
            continue;
        }
        // Batched feature embedding for the level: the op/meta/sample
        // embedding layers run once over column-stacked inputs.
        let feats: Vec<&featurize::NodeFeatures> = level_nodes.iter().map(|&i| &flat[i].encoded.features).collect();
        let x_batch = model.embed_nodes_batch_q(g, store, quant, &feats);

        // Batched children states: for each node take its (left, right) child
        // state columns, using zero states for missing children.
        let mut left_g = Vec::with_capacity(level_nodes.len());
        let mut left_r = Vec::with_capacity(level_nodes.len());
        let mut right_g = Vec::with_capacity(level_nodes.len());
        let mut right_r = Vec::with_capacity(level_nodes.len());
        for &i in level_nodes {
            let children = &flat[i].children;
            let left = children.first().and_then(|&c| states[c]).unwrap_or(zero_ref);
            let right = children.get(1).and_then(|&c| states[c]).unwrap_or(zero_ref);
            left_g.push(left.g);
            left_r.push(left.r);
            right_g.push(right.g);
            right_r.push(right.r);
        }
        let left = CellOutput { g: g.gather_cols(&left_g), r: g.gather_cols(&left_r) };
        let right = CellOutput { g: g.gather_cols(&right_g), r: g.gather_cols(&right_r) };

        let out = model.apply_cell_q(g, store, quant, x_batch, left, right);
        for (col, &i) in level_nodes.iter().enumerate() {
            states[i] = Some(StateRef { g: (out.g, col), r: (out.r, col) });
        }
    }

    // Batched estimation heads over all roots at once.
    let root_rs: Vec<(NodeId, usize)> = roots.iter().map(|&r| states[r].expect("root state computed").r).collect();
    let r_batch = g.gather_cols(&root_rs);
    model.estimate_from_representation_q(g, store, quant, r_batch)
}

/// Flattened view of one node in a memoized batch: either a fresh node to
/// embed (like [`FlatNode`]) or the root of a memoized subtree whose cached
/// `(G, R)` state is injected instead of recursing into its children.
struct MemoFlatNode<'a> {
    height: usize,
    children: Vec<usize>,
    encoded: &'a EncodedPlan,
    cached: Option<std::sync::Arc<SubtreeState>>,
    signature: u64,
}

/// Flatten `plan` into `out`, pruning at memoized subtrees and deduplicating
/// by signature within the batch (`seen`): a DP enumeration's candidates
/// share almost all of their subtrees, and each distinct subtree must enter
/// the level-batched forward exactly once.  Returns `(flat index, height)`
/// and counts, for the cache's node-level serving stats, how many plan nodes
/// were submitted (`seen_nodes`) vs. will actually be embedded (`computed`).
fn flatten_memo<'a>(
    plan: &'a EncodedPlan,
    cache: &SubtreeStateCache,
    dedup: &mut std::collections::HashMap<u64, usize>,
    out: &mut Vec<MemoFlatNode<'a>>,
    seen_nodes: &mut u64,
    computed: &mut u64,
) -> (usize, usize) {
    let signature = plan.signature;
    if let Some(&idx) = dedup.get(&signature) {
        // Already flattened for another candidate in this batch: the whole
        // subtree is served by the shared flat node.
        *seen_nodes += plan.size() as u64;
        return (idx, out[idx].height);
    }
    if let Some(state) = cache.get(signature) {
        let idx = out.len();
        out.push(MemoFlatNode { height: 1, children: Vec::new(), encoded: plan, cached: Some(state), signature });
        dedup.insert(signature, idx);
        *seen_nodes += plan.size() as u64;
        return (idx, 1);
    }
    *seen_nodes += 1;
    *computed += 1;
    let my_idx = out.len();
    out.push(MemoFlatNode { height: 1, children: Vec::new(), encoded: plan, cached: None, signature });
    dedup.insert(signature, my_idx);
    let mut child_ids = Vec::new();
    let mut max_child_height = 0;
    for c in &plan.children {
        let (cid, ch) = flatten_memo(c, cache, dedup, out, seen_nodes, computed);
        child_ids.push(cid);
        max_child_height = max_child_height.max(ch);
    }
    let height = 1 + max_child_height;
    out[my_idx].children = child_ids;
    out[my_idx].height = height;
    (my_idx, height)
}

/// [`forward_batch`] with subtree memoization — the serving-layer forward of
/// the optimizer loop.
///
/// Before embedding anything, every sub-plan is looked up in `cache` by its
/// 64-bit signature (and deduplicated against the rest of the batch): hits
/// re-enter the tape as injected `(G, R)` input columns
/// ([`Graph::input_columns`]), and only the fringe above them is embedded.
/// After each level's cell runs, the new sub-plans' state columns are lifted
/// off the tape ([`Graph::extract_column`]) and memoized, so a DP
/// enumeration embeds each distinct subtree once no matter how many
/// candidate plans contain it.
///
/// Estimates are **bit-identical** to the memoization-free [`forward_batch`]:
/// injected states are verbatim copies of previously computed columns, and
/// every kernel's per-column result is independent of which other columns
/// share its batch (`memoized_inference_is_bit_identical_*` pins this).
///
/// # Panics
/// Panics if `plans` is empty.
pub fn forward_batch_memo(
    model: &TreeModel,
    store: &ParamStore,
    g: &mut Graph,
    plans: &[&EncodedPlan],
    cache: &SubtreeStateCache,
) -> (NodeId, NodeId) {
    forward_batch_memo_q(model, store, None, g, plans, cache)
}

/// Tier-aware [`forward_batch_memo`].
///
/// The caller owns tier/cache separation: a quantized pass must use its own
/// [`SubtreeStateCache`] (never the full-precision one), because the states
/// it memoizes are computed through int8 matmuls and are **not**
/// bit-compatible with the f32 tier's entries.  Within one tier the usual
/// bit-identity guarantee holds unchanged.
pub fn forward_batch_memo_q(
    model: &TreeModel,
    store: &ParamStore,
    quant: Option<&QuantWeights>,
    g: &mut Graph,
    plans: &[&EncodedPlan],
    cache: &SubtreeStateCache,
) -> (NodeId, NodeId) {
    assert!(!plans.is_empty(), "forward_batch_memo needs at least one plan");
    let hidden = model.config.hidden_dim;
    let mut flat: Vec<MemoFlatNode> = Vec::new();
    let mut dedup = std::collections::HashMap::new();
    let mut roots = Vec::with_capacity(plans.len());
    let mut max_height = 1;
    let (mut seen_nodes, mut computed) = (0u64, 0u64);
    for p in plans {
        let (root_idx, h) = flatten_memo(p, cache, &mut dedup, &mut flat, &mut seen_nodes, &mut computed);
        roots.push(root_idx);
        max_height = max_height.max(h);
    }
    cache.record_nodes(seen_nodes, computed);

    // Cache-hit states re-enter the tape as two batched input columns.
    let mut states: Vec<Option<StateRef>> = vec![None; flat.len()];
    let cached_nodes: Vec<usize> =
        flat.iter().enumerate().filter(|(_, n)| n.cached.is_some()).map(|(i, _)| i).collect();
    if !cached_nodes.is_empty() {
        let g_cols: Vec<&[f32]> =
            cached_nodes.iter().map(|&i| flat[i].cached.as_ref().expect("cached").g.as_slice()).collect();
        let r_cols: Vec<&[f32]> =
            cached_nodes.iter().map(|&i| flat[i].cached.as_ref().expect("cached").r.as_slice()).collect();
        let inj_g = g.input_columns(hidden, &g_cols);
        let inj_r = g.input_columns(hidden, &r_cols);
        for (col, &i) in cached_nodes.iter().enumerate() {
            states[i] = Some(StateRef { g: (inj_g, col), r: (inj_r, col) });
        }
    }

    // Level-batched forward over the fresh fringe, exactly as in
    // `forward_batch`, with one extra step per level: extract the new state
    // columns off the tape and memoize them.
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_height];
    for (i, n) in flat.iter().enumerate() {
        if n.cached.is_none() {
            levels[n.height - 1].push(i);
        }
    }
    let zero = model.zero_state_batch(g, 1);
    let zero_ref = StateRef { g: (zero.g, 0), r: (zero.r, 0) };

    for level_nodes in &levels {
        if level_nodes.is_empty() {
            continue;
        }
        let feats: Vec<&featurize::NodeFeatures> = level_nodes.iter().map(|&i| &flat[i].encoded.features).collect();
        let x_batch = model.embed_nodes_batch_q(g, store, quant, &feats);

        let mut left_g = Vec::with_capacity(level_nodes.len());
        let mut left_r = Vec::with_capacity(level_nodes.len());
        let mut right_g = Vec::with_capacity(level_nodes.len());
        let mut right_r = Vec::with_capacity(level_nodes.len());
        for &i in level_nodes {
            let children = &flat[i].children;
            let left = children.first().and_then(|&c| states[c]).unwrap_or(zero_ref);
            let right = children.get(1).and_then(|&c| states[c]).unwrap_or(zero_ref);
            left_g.push(left.g);
            left_r.push(left.r);
            right_g.push(right.g);
            right_r.push(right.r);
        }
        let left = CellOutput { g: g.gather_cols(&left_g), r: g.gather_cols(&left_r) };
        let right = CellOutput { g: g.gather_cols(&right_g), r: g.gather_cols(&right_r) };

        let out = model.apply_cell_q(g, store, quant, x_batch, left, right);
        for (col, &i) in level_nodes.iter().enumerate() {
            states[i] = Some(StateRef { g: (out.g, col), r: (out.r, col) });
            let mut sg = Vec::with_capacity(hidden);
            let mut sr = Vec::with_capacity(hidden);
            g.extract_column(out.g, col, &mut sg);
            g.extract_column(out.r, col, &mut sr);
            cache.insert(flat[i].signature, std::sync::Arc::new(SubtreeState { g: sg, r: sr }));
        }
    }

    let root_rs: Vec<(NodeId, usize)> = roots.iter().map(|&r| states[r].expect("root state computed").r).collect();
    let r_batch = g.gather_cols(&root_rs);
    model.estimate_from_representation_q(g, store, quant, r_batch)
}

/// Memoized batched estimation: [`estimate_batch`] through
/// [`forward_batch_memo`], sharing `cache` across calls (and across
/// threads — the cache is sharded and the tape is thread-local, so
/// concurrent serving threads never serialize on a global lock).
///
/// Runs chunks of [`GROUP_SIZE`] plans sequentially on the calling thread:
/// in the serving layer, concurrency comes from the caller's worker threads,
/// and an internal fan-out per request would only fight them for cores.
pub fn estimate_batch_memo(
    model: &TreeModel,
    store: &ParamStore,
    normalization: &TargetNormalization,
    plans: &[&EncodedPlan],
    cache: &SubtreeStateCache,
) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(plans.len());
    for chunk in plans.chunks(GROUP_SIZE) {
        out.extend(with_inference_tape(|g| {
            let (cost_out, card_out) = forward_batch_memo(model, store, g, chunk, cache);
            denormalize_outputs(g, normalization, cost_out, card_out, chunk.len())
        }));
    }
    out
}

/// Quantized-tier batched estimation: [`estimate_batch_refs`] through
/// [`forward_batch_q`].  Approximate (int8 weight matmuls) but cheap — the
/// first pass of the two-tier serving path.
pub fn estimate_batch_quant(
    model: &TreeModel,
    store: &ParamStore,
    quant: &QuantWeights,
    normalization: &TargetNormalization,
    plans: &[&EncodedPlan],
) -> Vec<(f64, f64)> {
    if plans.is_empty() {
        return Vec::new();
    }
    let group = |chunk: &[&EncodedPlan]| {
        with_inference_tape(|g| {
            let (cost_out, card_out) = forward_batch_q(model, store, Some(quant), g, chunk);
            denormalize_outputs(g, normalization, cost_out, card_out, chunk.len())
        })
    };
    if plans.len() <= GROUP_SIZE {
        return group(plans);
    }
    let groups: Vec<Vec<(f64, f64)>> = plans.par_chunks(GROUP_SIZE).map(group).collect();
    groups.concat()
}

/// Quantized-tier memoized estimation: [`estimate_batch_memo`] on the int8
/// tier.  `qcache` must be a cache dedicated to this tier (see
/// [`forward_batch_memo_q`] on tier/cache separation).
pub fn estimate_batch_memo_quant(
    model: &TreeModel,
    store: &ParamStore,
    quant: &QuantWeights,
    normalization: &TargetNormalization,
    plans: &[&EncodedPlan],
    qcache: &SubtreeStateCache,
) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(plans.len());
    for chunk in plans.chunks(GROUP_SIZE) {
        out.extend(with_inference_tape(|g| {
            let (cost_out, card_out) = forward_batch_memo_q(model, store, Some(quant), g, chunk, qcache);
            denormalize_outputs(g, normalization, cost_out, card_out, chunk.len())
        }));
    }
    out
}

pub mod reference {
    //! The original (pre-optimization) batched implementation, kept as the
    //! correctness oracle for the optimized path and as the baseline the
    //! Table-12 efficiency bench reports the optimization speed-up against.
    //! Characteristics: seed-compat tape (eager zero-gradient allocation per
    //! node, a parameter copy per layer application), one `filter` scan over
    //! all flat nodes per level (`O(D·N)`), `HashMap` cell-state storage,
    //! per-node embedding invocations, no parallelism.

    use super::{flatten, FlatNode};
    use crate::model::TreeModel;
    use crate::trainer::TargetNormalization;
    use featurize::EncodedPlan;
    use nn::cells::CellOutput;
    use nn::{Graph, NodeId, ParamStore};
    use std::collections::HashMap;

    /// Unoptimized one-plan-at-a-time estimation: the per-node recursive
    /// forward on a seed-compat tape.  This is the "naive per-node path"
    /// Table 12 compares batched inference against.
    pub fn estimate_per_node_reference(
        model: &TreeModel,
        store: &ParamStore,
        normalization: &TargetNormalization,
        plan: &EncodedPlan,
    ) -> (f64, f64) {
        let mut g = Graph::seed_compat();
        let (cost_out, card_out) = model.forward(&mut g, store, plan);
        (
            normalization.cost.denormalize(g.value(cost_out).data()[0]),
            normalization.cardinality.denormalize(g.value(card_out).data()[0]),
        )
    }

    /// Unoptimized level-batched estimation (see module docs).
    pub fn estimate_batch_reference(
        model: &TreeModel,
        store: &ParamStore,
        normalization: &TargetNormalization,
        plans: &[EncodedPlan],
    ) -> Vec<(f64, f64)> {
        if plans.is_empty() {
            return Vec::new();
        }
        let mut flat: Vec<FlatNode> = Vec::new();
        let mut roots = Vec::with_capacity(plans.len());
        for p in plans.iter() {
            let (root_idx, _) = flatten(p, &mut flat);
            roots.push(root_idx);
        }
        let max_height = flat.iter().map(|n| n.height).max().unwrap_or(1);

        // A seed-compat tape reproduces the pre-optimization allocation
        // behavior: an eager zero gradient per node, a parameter copy per
        // layer application.
        let mut g = Graph::seed_compat();
        // Embed every node individually, then run the representation cell
        // once per level over column-concatenated embeddings.
        let embedded: Vec<NodeId> = flat.iter().map(|n| model.embed_node(&mut g, store, &n.encoded.features)).collect();

        // node index -> its computed (G, R) columns.
        let mut states: HashMap<usize, CellOutput> = HashMap::new();

        for level in 1..=max_height {
            let level_nodes: Vec<usize> =
                flat.iter().enumerate().filter(|(_, n)| n.height == level).map(|(i, _)| i).collect();
            if level_nodes.is_empty() {
                continue;
            }
            let xs: Vec<NodeId> = level_nodes.iter().map(|&i| embedded[i]).collect();
            let x_batch = g.concat_cols(&xs);

            let zero = model.zero_state_batch(&mut g, 1);
            let mut left_cols = Vec::with_capacity(level_nodes.len());
            let mut right_cols = Vec::with_capacity(level_nodes.len());
            for &i in &level_nodes {
                let children = &flat[i].children;
                let left = children.first().and_then(|c| states.get(c)).copied().unwrap_or(zero);
                let right = children.get(1).and_then(|c| states.get(c)).copied().unwrap_or(zero);
                left_cols.push(left);
                right_cols.push(right);
            }
            let left_g = g.concat_cols(&left_cols.iter().map(|c| c.g).collect::<Vec<_>>());
            let left_r = g.concat_cols(&left_cols.iter().map(|c| c.r).collect::<Vec<_>>());
            let right_g = g.concat_cols(&right_cols.iter().map(|c| c.g).collect::<Vec<_>>());
            let right_r = g.concat_cols(&right_cols.iter().map(|c| c.r).collect::<Vec<_>>());

            let out = model.apply_cell(
                &mut g,
                store,
                x_batch,
                CellOutput { g: left_g, r: left_r },
                CellOutput { g: right_g, r: right_r },
            );
            for (col, &i) in level_nodes.iter().enumerate() {
                let gi = g.column_at(out.g, col);
                let ri = g.column_at(out.r, col);
                states.insert(i, CellOutput { g: gi, r: ri });
            }
        }

        let root_rs: Vec<NodeId> = roots.iter().map(|r| states[r].r).collect();
        let r_batch = g.concat_cols(&root_rs);
        let (cost_out, card_out) = model.estimate_from_representation(&mut g, store, r_batch);
        let cost_vals = g.value(cost_out).clone();
        let card_vals = g.value(card_out).clone();

        (0..plans.len())
            .map(|i| {
                (
                    normalization.cost.denormalize(cost_vals.get(0, i)),
                    normalization.cardinality.denormalize(card_vals.get(0, i)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, TreeModel};
    use crate::trainer::{TrainConfig, Trainer};
    use featurize::{EncodingConfig, FeatureExtractor};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use std::sync::Arc;
    use strembed::HashBitmapEncoder;

    fn samples(n: usize) -> (Vec<EncodedPlan>, EncodingConfig) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg.clone(), Arc::new(HashBitmapEncoder::new(8)));
        let cost = engine::CostModel::default();
        let mut out = Vec::new();
        for i in 0..n {
            let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom(
                    "title",
                    "production_year",
                    CompareOp::Gt,
                    Operand::Num((1940 + i * 3) as f64),
                )),
            });
            let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
            let mut join = PlanNode::inner(
                PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
                vec![scan_t, scan_mc],
            );
            engine::execute_plan(&db, &mut join, &cost);
            out.push(fx.encode_plan(&join));
        }
        (out, cfg)
    }

    #[test]
    fn batched_estimates_match_one_by_one() {
        let (plans, cfg) = samples(10);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let batched = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        assert_eq!(batched.len(), plans.len());
        for (plan, (bcost, bcard)) in plans.iter().zip(batched.iter()) {
            let (cost, card) = trainer.estimate(plan);
            assert!((cost.ln() - bcost.ln()).abs() < 1e-3, "cost mismatch: {cost} vs {bcost}");
            assert!((card.ln() - bcard.ln()).abs() < 1e-3, "card mismatch: {card} vs {bcard}");
        }
    }

    #[test]
    fn optimized_batch_matches_reference_implementation() {
        let (plans, cfg) = samples(12);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let fast = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        let slow =
            reference::estimate_batch_reference(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        for ((fc, fk), (sc, sk)) in fast.iter().zip(slow.iter()) {
            assert!((fc.ln() - sc.ln()).abs() < 1e-3, "cost mismatch: {fc} vs {sc}");
            assert!((fk.ln() - sk.ln()).abs() < 1e-3, "card mismatch: {fk} vs {sk}");
        }
    }

    #[test]
    fn large_batch_crosses_parallel_group_boundary() {
        // More plans than GROUP_SIZE forces the parallel path; results must
        // stay in input order and match the one-by-one estimates.
        let (plans, cfg) = samples(GROUP_SIZE + 9);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let batched = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        assert_eq!(batched.len(), plans.len());
        for (plan, (bcost, bcard)) in plans.iter().zip(batched.iter()) {
            let (cost, card) = trainer.estimate(plan);
            assert!((cost.ln() - bcost.ln()).abs() < 1e-3, "cost mismatch: {cost} vs {bcost}");
            assert!((card.ln() - bcard.ln()).abs() < 1e-3, "card mismatch: {card} vs {bcard}");
        }
    }

    #[test]
    fn train_mode_forward_batch_matches_inference_mode() {
        let (plans, cfg) = samples(6);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        let mut train_g = Graph::new();
        let (tc, tk) = forward_batch(&model, &model.params, &mut train_g, &refs);
        let mut infer_g = Graph::inference();
        let (ic, ik) = forward_batch(&model, &model.params, &mut infer_g, &refs);
        // On the scalar path the fused gate sweep is bit-identical to the
        // train-mode libm activations; on the AVX2 path the FMA rational
        // sweep perturbs gate values at ulp level, so the heads only agree
        // within the f32 tier's tolerance contract (docs/perf.md).
        match nn::simd::active_path() {
            nn::simd::DispatchPath::Scalar => {
                assert_eq!(train_g.value(tc), infer_g.value(ic), "cost heads diverge across modes");
                assert_eq!(train_g.value(tk), infer_g.value(ik), "card heads diverge across modes");
            }
            _ => {
                for (head, (t, i)) in [("cost", (tc, ic)), ("card", (tk, ik))] {
                    for (a, b) in train_g.value(t).data().iter().zip(infer_g.value(i).data().iter()) {
                        assert!(
                            (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                            "{head} heads diverge across modes: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memoized_batch_is_bit_identical_to_fresh_and_warm() {
        let (plans, cfg) = samples(14);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        let fresh = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);

        let cache = crate::memory::SubtreeStateCache::new();
        let cold = estimate_batch_memo(&trainer.model, &trainer.model.params, &trainer.normalization, &refs, &cache);
        assert_eq!(fresh, cold, "cold memoized estimates must be bit-identical to the fresh path");
        assert!(!cache.is_empty(), "forward pass must populate the subtree cache");

        let warm = estimate_batch_memo(&trainer.model, &trainer.model.params, &trainer.normalization, &refs, &cache);
        assert_eq!(fresh, warm, "warm memoized estimates must be bit-identical to the fresh path");

        // The test plans share their join/scan structure heavily (only the
        // scan predicate constant varies), so the warm pass must serve the
        // bulk of the nodes from cache.
        let (seen, computed) = cache.node_stats();
        assert!(seen > computed, "no node was ever served from cache ({seen} seen, {computed} computed)");
        assert!(cache.node_hit_rate() > 0.0);
    }

    #[test]
    fn memoized_batch_combines_cached_subtrees_at_the_fringe() {
        // Score the two scan sub-plans first, then the joins over them: the
        // second call must only embed the join fringe, re-using both scans.
        let (plans, cfg) = samples(4);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let cache = crate::memory::SubtreeStateCache::new();

        let leaves: Vec<&EncodedPlan> = plans.iter().flat_map(|p| p.children.iter().map(|c| c.as_ref())).collect();
        estimate_batch_memo(&trainer.model, &trainer.model.params, &trainer.normalization, &leaves, &cache);
        let (_, computed_leaves) = cache.node_stats();

        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        let fresh = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        let memo = estimate_batch_memo(&trainer.model, &trainer.model.params, &trainer.normalization, &refs, &cache);
        assert_eq!(fresh, memo);
        let (_, computed_total) = cache.node_stats();
        // The second pass embeds exactly one new node per distinct plan (the
        // join root); every scan state is injected from the cache.
        assert_eq!(computed_total - computed_leaves, plans.len() as u64);
    }

    #[test]
    fn quantized_batch_tracks_full_precision_and_memoizes_bit_identically() {
        let (plans, cfg) = samples(12);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        let quant = QuantWeights::from_store(&trainer.model.params);
        assert!(quant.n_quantized() > 0, "model has weight matrices to quantize");

        let full = estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &plans);
        let quantized =
            estimate_batch_quant(&trainer.model, &trainer.model.params, &quant, &trainer.normalization, &refs);
        assert_eq!(quantized.len(), full.len());
        for ((fc, fk), (qc, qk)) in full.iter().zip(quantized.iter()) {
            // int8 weights are approximate; estimates must stay within a
            // modest log-space band of the f32 tier.
            assert!((fc.ln() - qc.ln()).abs() < 0.5, "quant cost diverged: {fc} vs {qc}");
            assert!((fk.ln() - qk.ln()).abs() < 0.5, "quant card diverged: {fk} vs {qk}");
        }

        // Within the quantized tier the memoized path keeps bit-identity,
        // against a cache dedicated to that tier.
        let qcache = crate::memory::SubtreeStateCache::new();
        let cold = estimate_batch_memo_quant(
            &trainer.model,
            &trainer.model.params,
            &quant,
            &trainer.normalization,
            &refs,
            &qcache,
        );
        assert_eq!(quantized, cold, "cold quant-memoized estimates must match the fresh quant path");
        let warm = estimate_batch_memo_quant(
            &trainer.model,
            &trainer.model.params,
            &quant,
            &trainer.normalization,
            &refs,
            &qcache,
        );
        assert_eq!(quantized, warm, "warm quant-memoized estimates must match the fresh quant path");
    }

    #[test]
    fn empty_batch_returns_empty() {
        let (plans, cfg) = samples(2);
        let model = TreeModel::new(&cfg, ModelConfig::default());
        let trainer = Trainer::new(model, &plans, TrainConfig::default());
        assert!(estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, &[]).is_empty());
    }

    mod memo_property {
        //! Satellite guard: on randomized planner output (generated queries
        //! expanded into candidate join orders), memoized subtree inference
        //! must be **bit-identical** to fresh inference — cold cache, warm
        //! cache, and across batch compositions.

        use super::*;
        use crate::memory::SubtreeStateCache;
        use proptest::prelude::*;
        use std::sync::OnceLock;
        use workloads::{generate_enumeration_workload, EnumerationConfig};

        struct Fixture {
            db: Arc<imdb::Database>,
            fx: FeatureExtractor,
            trainer: Trainer,
        }

        fn fixture() -> &'static Fixture {
            static FIX: OnceLock<Fixture> = OnceLock::new();
            FIX.get_or_init(|| {
                let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
                let cfg = EncodingConfig::from_database(&db, 8, 32);
                let fx = FeatureExtractor::new(db.clone(), cfg.clone(), Arc::new(HashBitmapEncoder::new(8)));
                let model = TreeModel::new(
                    &cfg,
                    ModelConfig {
                        feature_embed_dim: 8,
                        hidden_dim: 12,
                        estimation_hidden_dim: 8,
                        ..Default::default()
                    },
                );
                let samples = workloads::generate_workload(
                    &db,
                    workloads::WorkloadConfig { num_queries: 12, ..Default::default() },
                );
                let encoded: Vec<EncodedPlan> = samples.iter().map(|s| fx.encode_plan(&s.plan)).collect();
                let trainer = Trainer::new(model, &encoded, TrainConfig::default());
                Fixture { db, fx, trainer }
            })
        }

        proptest! {
            #[test]
            fn memoized_inference_is_bit_identical_on_randomized_planner_output(seed in 0u64..1_000_000) {
                let fixture = fixture();
                let workload = generate_enumeration_workload(
                    &fixture.db,
                    EnumerationConfig {
                        num_queries: 1,
                        min_joins: 1,
                        max_joins: 3,
                        max_candidates_per_query: 12,
                        seed,
                    },
                );
                prop_assert!(!workload.is_empty(), "no enumerable query for seed {seed}");
                let encoded: Vec<EncodedPlan> =
                    workload[0].candidates.iter().map(|c| fixture.fx.encode_plan(c)).collect();
                let refs: Vec<&EncodedPlan> = encoded.iter().collect();
                let t = &fixture.trainer;

                let fresh = estimate_batch(&t.model, &t.model.params, &t.normalization, &encoded);
                let cache = SubtreeStateCache::new();
                let cold = estimate_batch_memo(&t.model, &t.model.params, &t.normalization, &refs, &cache);
                prop_assert_eq!(&fresh, &cold);
                let warm = estimate_batch_memo(&t.model, &t.model.params, &t.normalization, &refs, &cache);
                prop_assert_eq!(&fresh, &warm);
                // One-at-a-time scoring against the warm cache must also be
                // bit-identical: batch composition cannot leak into columns.
                for (plan, expected) in refs.iter().zip(fresh.iter()) {
                    let single =
                        estimate_batch_memo(&t.model, &t.model.params, &t.normalization, &[plan], &cache);
                    prop_assert_eq!(&single[0], expected);
                }
            }
        }
    }

    #[test]
    fn single_leaf_plan_in_batch() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg.clone(), Arc::new(HashBitmapEncoder::new(8)));
        let mut scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "keyword".into(), predicate: None });
        engine::execute_plan(&db, &mut scan, &engine::CostModel::default());
        let plan = fx.encode_plan(&scan);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let trainer = Trainer::new(model, std::slice::from_ref(&plan), TrainConfig::default());
        let out =
            estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, std::slice::from_ref(&plan));
        assert_eq!(out.len(), 1);
        assert!(out[0].0.is_finite() && out[0].1.is_finite());
    }
}
