//! The tree-structured estimation model (Section 4.2).
//!
//! Three layers:
//!
//! 1. **Embedding layer** — one fully-connected embedding per feature group
//!    (Operation, Metadata, Sample Bitmap) plus a predicate model: either the
//!    min/max tree pooling of Section 4.2.1 (AND → min, OR → max over the
//!    embedded atoms) or a tree-LSTM over the predicate tree (the `TLSTM*`
//!    predicate variant of Table 6/9).
//! 2. **Representation layer** — a representation cell applied recursively
//!    over the plan tree: the LSTM-style cell (G/R channels) or a plain
//!    fully-connected cell (`TNN*`), with children states averaged.
//! 3. **Estimation layer** — two-layer heads with sigmoid outputs for cost
//!    and cardinality; multitask training shares layers 1–2.

use featurize::{EncodedPlan, EncodingConfig, NodeFeatures, PredicateEncoding};
use nn::cells::CellOutput;
use nn::{Graph, Linear, Matrix, NodeId, ParamStore, QuantWeights, TreeLstmCell, TreeNnCell};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which representation cell the representation layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepresentationCellKind {
    /// LSTM-style cell with the long-memory channel (the paper's design).
    Lstm,
    /// Plain fully-connected cell (`TNN*` baselines).
    Nn,
}

/// Which predicate embedding model is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateModelKind {
    /// Min/max tree pooling (AND → min, OR → max) — `TPool*`.
    MinMaxPool,
    /// Tree-LSTM over the predicate tree — `TLSTM*`.
    TreeLstm,
}

/// Which estimation targets are trained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskMode {
    CardinalityOnly,
    CostOnly,
    /// Multitask: cost and cardinality trained together (shared layers).
    Multitask,
}

/// Hyper-parameters of the tree model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    pub cell: RepresentationCellKind,
    pub predicate: PredicateModelKind,
    pub task: TaskMode,
    /// Weight ω of the cost term in the multitask loss.
    pub cost_loss_weight: f64,
    /// Per-feature embedding width.
    pub feature_embed_dim: usize,
    /// Representation (hidden) width.
    pub hidden_dim: usize,
    /// Hidden width of the estimation heads.
    pub estimation_hidden_dim: usize,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            cell: RepresentationCellKind::Lstm,
            predicate: PredicateModelKind::MinMaxPool,
            task: TaskMode::Multitask,
            cost_loss_weight: 1.0,
            feature_embed_dim: 16,
            hidden_dim: 64,
            estimation_hidden_dim: 32,
            seed: 42,
        }
    }
}

#[derive(Clone)]
enum RepresentationCell {
    Lstm(TreeLstmCell),
    Nn(TreeNnCell),
}

/// The assembled tree model: all parameters plus the layer definitions.
///
/// `Clone` exists for copy-on-write training: the trainer holds the model in
/// an `Arc`, and resuming training while an owned serving handle still pins
/// the weights clones the store once instead of mutating under the handle.
#[derive(Clone)]
pub struct TreeModel {
    pub config: ModelConfig,
    pub params: ParamStore,
    op_embed: Linear,
    meta_embed: Linear,
    sample_embed: Linear,
    pred_leaf: Linear,
    pred_lstm: TreeLstmCell,
    cell: RepresentationCell,
    cost_head: nn::layers::Mlp2,
    card_head: nn::layers::Mlp2,
    embed_dim: usize,
}

impl TreeModel {
    /// Build a model for the given encoding configuration.
    pub fn new(enc: &EncodingConfig, config: ModelConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let d = config.feature_embed_dim;
        let op_embed = Linear::new(&mut params, "embed.op", enc.operation_dim(), d, &mut rng);
        let meta_embed = Linear::new(&mut params, "embed.meta", enc.metadata_dim(), d, &mut rng);
        let sample_embed = Linear::new(&mut params, "embed.sample", enc.sample_dim(), d, &mut rng);
        let pred_leaf = Linear::new(&mut params, "embed.pred_leaf", enc.atom_dim(), d, &mut rng);
        let pred_lstm = TreeLstmCell::new(&mut params, "embed.pred_lstm", d, d, &mut rng);
        let embed_dim = 4 * d;
        let cell = match config.cell {
            RepresentationCellKind::Lstm => RepresentationCell::Lstm(TreeLstmCell::new(
                &mut params,
                "repr.lstm",
                embed_dim,
                config.hidden_dim,
                &mut rng,
            )),
            RepresentationCellKind::Nn => {
                RepresentationCell::Nn(TreeNnCell::new(&mut params, "repr.nn", embed_dim, config.hidden_dim, &mut rng))
            }
        };
        let cost_head = nn::layers::Mlp2::new(
            &mut params,
            "est.cost",
            config.hidden_dim,
            config.estimation_hidden_dim,
            1,
            &mut rng,
        );
        let card_head = nn::layers::Mlp2::new(
            &mut params,
            "est.card",
            config.hidden_dim,
            config.estimation_hidden_dim,
            1,
            &mut rng,
        );
        TreeModel {
            config,
            params,
            op_embed,
            meta_embed,
            sample_embed,
            pred_leaf,
            pred_lstm,
            cell,
            cost_head,
            card_head,
            embed_dim,
        }
    }

    /// Width of the concatenated node embedding `E`.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Embed a predicate tree into a `feature_embed_dim` vector node; weight
    /// matmuls run on the int8 tier for every weight present in `quant`.
    fn embed_predicate_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        pred: &PredicateEncoding,
    ) -> NodeId {
        let d = self.config.feature_embed_dim;
        match pred {
            PredicateEncoding::None => g.input(Matrix::zeros(d, 1)),
            PredicateEncoding::Atom(v) => {
                let x = g.input(Matrix::column(v));
                self.pred_leaf.forward_relu_q(g, store, quant, x)
            }
            PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => {
                match self.config.predicate {
                    PredicateModelKind::MinMaxPool => {
                        let le = self.embed_predicate_q(g, store, quant, l);
                        let re = self.embed_predicate_q(g, store, quant, r);
                        if matches!(pred, PredicateEncoding::And(_, _)) {
                            g.emin(le, re)
                        } else {
                            g.emax(le, re)
                        }
                    }
                    PredicateModelKind::TreeLstm => {
                        // Run a tree-LSTM over the predicate tree; inner nodes
                        // feed a zero feature and combine children states.
                        let out = self.pred_lstm_forward_q(g, store, quant, pred);
                        out.r
                    }
                }
            }
        }
    }

    fn pred_lstm_forward_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        pred: &PredicateEncoding,
    ) -> CellOutput {
        let d = self.config.feature_embed_dim;
        match pred {
            PredicateEncoding::None => self.pred_lstm.zero_state(g, 1),
            PredicateEncoding::Atom(v) => {
                let x = g.input(Matrix::column(v));
                let e = self.pred_leaf.forward_relu_q(g, store, quant, x);
                let zero = self.pred_lstm.zero_state(g, 1);
                self.pred_lstm.forward_q(g, store, quant, e, zero, zero)
            }
            PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => {
                let left = self.pred_lstm_forward_q(g, store, quant, l);
                let right = self.pred_lstm_forward_q(g, store, quant, r);
                let x = g.input(Matrix::zeros(d, 1));
                self.pred_lstm.forward_q(g, store, quant, x, left, right)
            }
        }
    }

    /// Embed the four feature groups of one node into the concatenated `E`.
    pub fn embed_node(&self, g: &mut Graph, store: &ParamStore, features: &NodeFeatures) -> NodeId {
        self.embed_node_q(g, store, None, features)
    }

    /// Tier-aware [`TreeModel::embed_node`].
    pub fn embed_node_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        features: &NodeFeatures,
    ) -> NodeId {
        let op_in = g.input(Matrix::column(features.operation()));
        let op = self.op_embed.forward_relu_q(g, store, quant, op_in);
        let meta_in = g.input(Matrix::column(features.metadata()));
        let meta = self.meta_embed.forward_relu_q(g, store, quant, meta_in);
        let samp_in = g.input(Matrix::column(features.sample_bitmap()));
        let samp = self.sample_embed.forward_relu_q(g, store, quant, samp_in);
        let pred = self.embed_predicate_q(g, store, quant, &features.predicate);
        g.concat_rows(&[op, meta, samp, pred])
    }

    /// Embed many nodes at once: the operation / metadata / sample-bitmap
    /// groups are column-stacked into one `dim x n` input each, so the
    /// embedding layers run **once per group per batch** instead of once per
    /// node, and the predicate trees are level-batched the same way
    /// ([`TreeModel::embed_predicates_batch`]).  Returns the `4d x n`
    /// batched embedding `E`.
    ///
    /// # Panics
    /// Panics if `features` is empty.
    pub fn embed_nodes_batch(&self, g: &mut Graph, store: &ParamStore, features: &[&NodeFeatures]) -> NodeId {
        self.embed_nodes_batch_q(g, store, None, features)
    }

    /// Tier-aware [`TreeModel::embed_nodes_batch`].
    pub fn embed_nodes_batch_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        features: &[&NodeFeatures],
    ) -> NodeId {
        assert!(!features.is_empty(), "embed_nodes_batch needs at least one node");
        let n = features.len();
        let stack = |g: &mut Graph, dim: usize, pick: &dyn Fn(&NodeFeatures) -> &[f32]| -> NodeId {
            let mut m = Matrix::zeros(dim, n);
            for (col, f) in features.iter().enumerate() {
                for (row, &v) in pick(f).iter().enumerate() {
                    m.set(row, col, v);
                }
            }
            g.input(m)
        };
        let op_in = stack(g, self.op_embed.in_dim(), &|f| f.operation());
        let op = self.op_embed.forward_relu_q(g, store, quant, op_in);
        let meta_in = stack(g, self.meta_embed.in_dim(), &|f| f.metadata());
        let meta = self.meta_embed.forward_relu_q(g, store, quant, meta_in);
        let samp_in = stack(g, self.sample_embed.in_dim(), &|f| f.sample_bitmap());
        let samp = self.sample_embed.forward_relu_q(g, store, quant, samp_in);
        let preds: Vec<&PredicateEncoding> = features.iter().map(|f| &f.predicate).collect();
        let pred = self.embed_predicates_batch_q(g, store, quant, &preds);
        g.concat_rows(&[op, meta, samp, pred])
    }

    /// Level-batched embedding of many predicate trees at once, returning a
    /// `feature_embed_dim x preds.len()` node whose columns equal what
    /// [`TreeModel::embed_predicate`] computes per tree.
    ///
    /// All atom leaves across all trees go through `pred_leaf` in a single
    /// forward; the inner AND/OR levels then run once per predicate-tree
    /// level over [`Graph::gather_cols`]-assembled children (min/max pooling
    /// partitions each level into its AND and OR subsets; the tree-LSTM
    /// variant feeds a zero feature batch).
    fn embed_predicates_batch_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        preds: &[&PredicateEncoding],
    ) -> NodeId {
        let d = self.config.feature_embed_dim;

        // Flatten every tree into one arena, bucketing nodes by height.
        enum PKind<'a> {
            Empty,
            Atom(&'a [f32]),
            And(usize, usize),
            Or(usize, usize),
        }
        struct PFlat<'a> {
            kind: PKind<'a>,
            height: usize,
        }
        fn flatten_pred<'a>(p: &'a PredicateEncoding, out: &mut Vec<PFlat<'a>>) -> (usize, usize) {
            match p {
                PredicateEncoding::None => {
                    out.push(PFlat { kind: PKind::Empty, height: 1 });
                    (out.len() - 1, 1)
                }
                PredicateEncoding::Atom(v) => {
                    out.push(PFlat { kind: PKind::Atom(v), height: 1 });
                    (out.len() - 1, 1)
                }
                PredicateEncoding::And(l, r) | PredicateEncoding::Or(l, r) => {
                    let (li, lh) = flatten_pred(l, out);
                    let (ri, rh) = flatten_pred(r, out);
                    let height = 1 + lh.max(rh);
                    let kind =
                        if matches!(p, PredicateEncoding::And(_, _)) { PKind::And(li, ri) } else { PKind::Or(li, ri) };
                    out.push(PFlat { kind, height });
                    (out.len() - 1, height)
                }
            }
        }
        let mut flat: Vec<PFlat> = Vec::new();
        let mut roots = Vec::with_capacity(preds.len());
        let mut max_height = 1;
        for p in preds {
            let (root, h) = flatten_pred(p, &mut flat);
            roots.push(root);
            max_height = max_height.max(h);
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_height];
        for (i, n) in flat.iter().enumerate() {
            levels[n.height - 1].push(i);
        }

        // One pred_leaf forward for every atom of every tree.
        let atoms: Vec<usize> = levels[0].iter().copied().filter(|&i| matches!(flat[i].kind, PKind::Atom(_))).collect();
        let mut atom_col = vec![usize::MAX; flat.len()];
        let atom_embeds = if atoms.is_empty() {
            None
        } else {
            let mut m = Matrix::zeros(self.pred_leaf.in_dim(), atoms.len());
            for (col, &i) in atoms.iter().enumerate() {
                atom_col[i] = col;
                if let PKind::Atom(v) = flat[i].kind {
                    for (row, &x) in v.iter().enumerate() {
                        m.set(row, col, x);
                    }
                }
            }
            let x = g.input(m);
            Some(self.pred_leaf.forward_relu_q(g, store, quant, x))
        };
        let zero_col = g.input(Matrix::zeros(d, 1));

        // (node, column) source of each flat predicate node's d-vector.
        let mut vref: Vec<(NodeId, usize)> = vec![(zero_col, 0); flat.len()];

        match self.config.predicate {
            PredicateModelKind::MinMaxPool => {
                for &i in &atoms {
                    vref[i] = (atom_embeds.expect("atoms imply embeds"), atom_col[i]);
                }
                for level_nodes in levels.iter().skip(1) {
                    // A level can mix ANDs and ORs; pool each subset at once.
                    for want_and in [true, false] {
                        let subset: Vec<usize> = level_nodes
                            .iter()
                            .copied()
                            .filter(|&i| matches!(flat[i].kind, PKind::And(_, _)) == want_and)
                            .collect();
                        if subset.is_empty() {
                            continue;
                        }
                        let lefts: Vec<(NodeId, usize)> = subset
                            .iter()
                            .map(|&i| match flat[i].kind {
                                PKind::And(l, _) | PKind::Or(l, _) => vref[l],
                                _ => unreachable!("leaf above level 1"),
                            })
                            .collect();
                        let rights: Vec<(NodeId, usize)> = subset
                            .iter()
                            .map(|&i| match flat[i].kind {
                                PKind::And(_, r) | PKind::Or(_, r) => vref[r],
                                _ => unreachable!("leaf above level 1"),
                            })
                            .collect();
                        let lg = g.gather_cols(&lefts);
                        let rg = g.gather_cols(&rights);
                        let pooled = if want_and { g.emin(lg, rg) } else { g.emax(lg, rg) };
                        for (col, &i) in subset.iter().enumerate() {
                            vref[i] = (pooled, col);
                        }
                    }
                }
            }
            PredicateModelKind::TreeLstm => {
                // State of each inner/atom node as (node, column) per channel.
                let zero_state = self.pred_lstm.zero_state(g, 1);
                let mut sref: Vec<((NodeId, usize), (NodeId, usize))> =
                    vec![((zero_state.g, 0), (zero_state.r, 0)); flat.len()];
                if let Some(embeds) = atom_embeds {
                    // All atom leaves share zero children: one cell forward.
                    let zeros = self.pred_lstm.zero_state(g, atoms.len());
                    let out = self.pred_lstm.forward_q(g, store, quant, embeds, zeros, zeros);
                    for (col, &i) in atoms.iter().enumerate() {
                        sref[i] = ((out.g, col), (out.r, col));
                        vref[i] = (embeds, atom_col[i]);
                    }
                }
                for level_nodes in levels.iter().skip(1) {
                    let inner: Vec<usize> = level_nodes.to_vec();
                    let (mut lg, mut lr, mut rg, mut rr) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
                    for &i in &inner {
                        let (l, r) = match flat[i].kind {
                            PKind::And(l, r) | PKind::Or(l, r) => (l, r),
                            _ => unreachable!("leaf above level 1"),
                        };
                        lg.push(sref[l].0);
                        lr.push(sref[l].1);
                        rg.push(sref[r].0);
                        rr.push(sref[r].1);
                    }
                    let left = nn::cells::CellOutput { g: g.gather_cols(&lg), r: g.gather_cols(&lr) };
                    let right = nn::cells::CellOutput { g: g.gather_cols(&rg), r: g.gather_cols(&rr) };
                    let x = g.input(Matrix::zeros(d, inner.len()));
                    let out = self.pred_lstm.forward_q(g, store, quant, x, left, right);
                    for (col, &i) in inner.iter().enumerate() {
                        sref[i] = ((out.g, col), (out.r, col));
                        // An inner node's embedding is its state's R channel.
                        vref[i] = (out.r, col);
                    }
                }
            }
        }

        // Per-tree answer columns (a root atom uses its plain leaf embedding
        // in both predicate models, matching `embed_predicate`).
        let answers: Vec<(NodeId, usize)> = roots.iter().map(|&r| vref[r]).collect();
        g.gather_cols(&answers)
    }

    /// Apply the representation cell to an embedded node and children states.
    pub fn apply_cell(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        self.apply_cell_q(g, store, None, x, left, right)
    }

    /// Tier-aware [`TreeModel::apply_cell`].
    pub fn apply_cell_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        x: NodeId,
        left: CellOutput,
        right: CellOutput,
    ) -> CellOutput {
        match &self.cell {
            RepresentationCell::Lstm(c) => c.forward_q(g, store, quant, x, left, right),
            RepresentationCell::Nn(c) => c.forward_q(g, store, quant, x, left, right),
        }
    }

    /// Zero child state (for leaves), batch width 1.
    pub fn zero_state(&self, g: &mut Graph) -> CellOutput {
        self.zero_state_batch(g, 1)
    }

    /// Zero child state with an arbitrary batch width.
    pub fn zero_state_batch(&self, g: &mut Graph, batch: usize) -> CellOutput {
        match &self.cell {
            RepresentationCell::Lstm(c) => c.zero_state(g, batch),
            RepresentationCell::Nn(c) => c.zero_state(g, batch),
        }
    }

    /// Recursive forward over an encoded plan, returning the root state.
    pub fn forward_plan(&self, g: &mut Graph, store: &ParamStore, plan: &EncodedPlan) -> CellOutput {
        let x = self.embed_node(g, store, &plan.features);
        let (left, right) = match plan.children.len() {
            0 => (self.zero_state(g), self.zero_state(g)),
            1 => {
                let c = self.forward_plan(g, store, &plan.children[0]);
                (c, self.zero_state(g))
            }
            _ => (self.forward_plan(g, store, &plan.children[0]), self.forward_plan(g, store, &plan.children[1])),
        };
        self.apply_cell(g, store, x, left, right)
    }

    /// Estimation heads: `(cost, cardinality)` sigmoid outputs (normalized
    /// space) from a representation node (any batch width).
    pub fn estimate_from_representation(&self, g: &mut Graph, store: &ParamStore, r: NodeId) -> (NodeId, NodeId) {
        self.estimate_from_representation_q(g, store, None, r)
    }

    /// Tier-aware [`TreeModel::estimate_from_representation`].
    pub fn estimate_from_representation_q(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        quant: Option<&QuantWeights>,
        r: NodeId,
    ) -> (NodeId, NodeId) {
        let cost = self.cost_head.forward_sigmoid_q(g, store, quant, r);
        let card = self.card_head.forward_sigmoid_q(g, store, quant, r);
        (cost, card)
    }

    /// Full forward pass over one plan: normalized `(cost, card)` outputs.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, plan: &EncodedPlan) -> (NodeId, NodeId) {
        let root = self.forward_plan(g, store, plan);
        self.estimate_from_representation(g, store, root.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use featurize::FeatureExtractor;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use std::sync::Arc;
    use strembed::HashBitmapEncoder;

    fn setup() -> (FeatureExtractor, EncodingConfig) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 16, 64);
        (FeatureExtractor::new(db, cfg.clone(), Arc::new(HashBitmapEncoder::new(16))), cfg)
    }

    fn sample_encoded_plan(fx: &FeatureExtractor) -> EncodedPlan {
        let scan_t =
            PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(
                    Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0))
                        .and(Predicate::atom("title", "kind_id", CompareOp::Eq, Operand::Num(1.0))),
                ),
            });
        let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
        let join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
            vec![scan_t, scan_mc],
        );
        fx.encode_plan(&join)
    }

    #[test]
    fn forward_produces_normalized_outputs() {
        let (fx, cfg) = setup();
        let plan = sample_encoded_plan(&fx);
        for cell in [RepresentationCellKind::Lstm, RepresentationCellKind::Nn] {
            for pred in [PredicateModelKind::MinMaxPool, PredicateModelKind::TreeLstm] {
                let model = TreeModel::new(&cfg, ModelConfig { cell, predicate: pred, ..Default::default() });
                let mut g = Graph::new();
                let (cost, card) = model.forward(&mut g, &model.params, &plan);
                let c = g.value(cost).data()[0];
                let k = g.value(card).data()[0];
                assert!((0.0..=1.0).contains(&c), "cost output {c} out of range");
                assert!((0.0..=1.0).contains(&k), "card output {k} out of range");
            }
        }
    }

    #[test]
    fn model_has_reasonable_parameter_count() {
        let (_, cfg) = setup();
        let model = TreeModel::new(&cfg, ModelConfig::default());
        let n = model.num_parameters();
        assert!(n > 10_000 && n < 2_000_000, "unexpected parameter count {n}");
        assert_eq!(model.embed_dim(), 64);
    }

    #[test]
    fn different_plans_produce_different_outputs() {
        let (fx, cfg) = setup();
        let model = TreeModel::new(&cfg, ModelConfig::default());
        let plan_a = sample_encoded_plan(&fx);
        let scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "cast_info".into(), predicate: None });
        let plan_b = fx.encode_plan(&scan);
        let mut g = Graph::new();
        let (cost_a, _) = model.forward(&mut g, &model.params, &plan_a);
        let (cost_b, _) = model.forward(&mut g, &model.params, &plan_b);
        assert_ne!(g.value(cost_a).data()[0], g.value(cost_b).data()[0]);
    }

    #[test]
    fn pooling_predicate_embedding_respects_and_or_ordering() {
        // For the same pair of atoms, the AND (min-pooled) embedding must be
        // element-wise <= the OR (max-pooled) embedding.
        let (fx, cfg) = setup();
        let model = TreeModel::new(&cfg, ModelConfig::default());
        let a = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(1990.0));
        let b = Predicate::atom("title", "kind_id", CompareOp::Eq, Operand::Num(1.0));
        let and_enc = fx.encode_predicate(Some(&a.clone().and(b.clone())));
        let or_enc = fx.encode_predicate(Some(&a.or(b)));
        let mut g = Graph::new();
        let and_vec = model.embed_predicate_q(&mut g, &model.params, None, &and_enc);
        let or_vec = model.embed_predicate_q(&mut g, &model.params, None, &or_enc);
        for (x, y) in g.value(and_vec).data().iter().zip(g.value(or_vec).data().iter()) {
            assert!(x <= y, "min-pooled AND exceeded max-pooled OR: {x} > {y}");
        }
    }
}
