//! Training loop (Section 4.3): q-error loss on normalized log targets,
//! multitask cost+cardinality learning, Adam, mini-batches, per-epoch
//! validation statistics (the curves of Figures 7 and 8).
//!
//! Each mini-batch runs as **one** level-batched forward pass
//! ([`crate::batch::forward_batch`]) over a single reused tape, followed by a
//! single backward sweep seeded at both estimation heads
//! (`Graph::backward_multi`) — the same batching that accelerates inference
//! accelerates training.  Validation also goes through the batched path.

use crate::batch::{estimate_batch_refs, forward_batch};
use crate::model::{TaskMode, TreeModel};
use featurize::EncodedPlan;
use metrics::q_error;
pub use metrics::EpochStats;
use nn::checkpoint::CheckpointError;
use nn::loss::NormalizationStats;
use nn::{Adam, EarlyStop, Graph, Matrix, MiniBatchSchedule, Optimizer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// Fraction of the samples held out for validation.
    pub validation_fraction: f64,
    /// Stop after this many epochs without validation improvement
    /// (`None` disables early stopping).
    pub early_stop_patience: Option<usize>,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.001,
            validation_fraction: 0.1,
            early_stop_patience: None,
            seed: 1,
        }
    }
}

/// Target normalization fitted on the training set.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TargetNormalization {
    pub cost: NormalizationStats,
    pub cardinality: NormalizationStats,
}

impl TargetNormalization {
    /// Fit normalization statistics over a training set.
    pub fn fit(samples: &[EncodedPlan]) -> Self {
        let costs: Vec<f64> = samples.iter().map(|s| s.true_cost).collect();
        let cards: Vec<f64> = samples.iter().map(|s| s.true_cardinality).collect();
        TargetNormalization { cost: NormalizationStats::fit(&costs), cardinality: NormalizationStats::fit(&cards) }
    }
}

/// The mutable training state that survives a `train` call — and, through a
/// v2 checkpoint, a process restart.  The per-parameter Adam moments live in
/// the model's `ParamStore`; this carries everything else an interrupted run
/// needs to continue **bit-identically**: how many epochs are done (the
/// schedule's RNG stream is replayed up to there), the optimizer's step
/// counter, and the early-stop position.
#[derive(Debug, Clone)]
pub struct TrainProgress {
    pub(crate) epochs_done: usize,
    pub(crate) optimizer: Adam,
    pub(crate) early_stop: EarlyStop,
    pub(crate) stopped_early: bool,
}

impl TrainProgress {
    fn fresh(config: &TrainConfig) -> Self {
        TrainProgress {
            epochs_done: 0,
            optimizer: Adam::new(config.learning_rate),
            early_stop: EarlyStop::new(config.early_stop_patience),
            stopped_early: false,
        }
    }
}

/// Trainer: owns the model, the optimizer state and the normalization.
///
/// The model sits behind an `Arc` so serving handles
/// ([`crate::ServingEstimator`]) own the weights independently of the
/// trainer's lifetime; training mutates via copy-on-write
/// (`Arc::make_mut`), which is free while no handle is outstanding and
/// leaves outstanding handles pinned to the pre-training weights otherwise.
pub struct Trainer {
    pub model: Arc<TreeModel>,
    pub normalization: TargetNormalization,
    config: TrainConfig,
    progress: Option<TrainProgress>,
}

impl Trainer {
    /// Create a trainer; normalization is fitted on `samples`.
    pub fn new(model: TreeModel, samples: &[EncodedPlan], config: TrainConfig) -> Self {
        Trainer { model: Arc::new(model), normalization: TargetNormalization::fit(samples), config, progress: None }
    }

    /// Reassemble a trainer around an already-parameterized model and a
    /// previously-fitted normalization — the checkpoint-restore path.
    pub fn from_parts(model: TreeModel, normalization: TargetNormalization, config: TrainConfig) -> Self {
        Trainer { model: Arc::new(model), normalization, config, progress: None }
    }

    /// True when the trainer carries resumable training state (it trained
    /// in this process, or was restored from a v2 checkpoint with state);
    /// false after a model-only checkpoint load.
    pub fn is_resumable(&self) -> bool {
        self.progress.is_some()
    }

    /// Raise the total epoch budget by `extra` epochs so a completed run can
    /// be continued with [`Trainer::train`] (online fine-tuning).  Clears a
    /// tripped early-stop: the caller is explicitly asking for more epochs,
    /// typically on *new* data the old validation verdict knows nothing
    /// about.  The early-stop tracker itself (best metric, patience counter)
    /// is kept, so stopping can re-trip if the fresh data also plateaus.
    pub fn extend_epochs(&mut self, extra: usize) {
        self.config.epochs += extra;
        if let Some(progress) = self.progress.as_mut() {
            progress.stopped_early = false;
        }
    }

    /// Train on `samples`, returning per-epoch statistics.  A
    /// `validation_fraction` slice of the (shuffled) samples is held out and
    /// evaluated after each epoch; with `early_stop_patience` set, training
    /// stops once the validation metric goes that many epochs without
    /// improving.
    ///
    /// A fresh trainer runs epochs `0..config.epochs`.  A trainer carrying
    /// restored [`TrainProgress`] (resumed from a v2 checkpoint) continues
    /// at `epochs_done` and — given the same samples and hyper-parameters —
    /// reproduces the uninterrupted run bit for bit: the schedule's RNG
    /// stream is replayed through the completed epochs, and the Adam
    /// moments/step counter were restored with the parameters.
    pub fn train(&mut self, samples: &[EncodedPlan]) -> Vec<EpochStats> {
        let mut schedule = MiniBatchSchedule::new(
            samples.len(),
            self.config.validation_fraction,
            self.config.batch_size,
            self.config.seed,
        );
        let mut progress = self.progress.take().unwrap_or_else(|| TrainProgress::fresh(&self.config));
        // Re-walk the shuffles of already-completed epochs: the schedule's
        // RNG continues exactly where the interrupted run left it.
        for _ in 0..progress.epochs_done {
            let _ = schedule.epoch_batches();
        }
        let mut stats = Vec::with_capacity(self.config.epochs.saturating_sub(progress.epochs_done));
        // One tape reused across every mini-batch of every epoch: after the
        // first batch the forward pass draws all buffers from the pool.
        let mut g = Graph::new();

        while !progress.stopped_early && progress.epochs_done < self.config.epochs {
            let epoch = progress.epochs_done;
            let started = std::time::Instant::now();
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for batch_idx in schedule.epoch_batches() {
                let model = Arc::make_mut(&mut self.model);
                model.params.zero_grad();
                g.reset();
                epoch_loss += Self::train_batch(model, &self.normalization, &mut g, samples, batch_idx);
                seen += batch_idx.len();
                progress.optimizer.step(&mut Arc::make_mut(&mut self.model).params);
            }
            let (card_q, cost_q) = self.validation_error(samples, schedule.validation());
            let epoch_stats = EpochStats {
                epoch,
                train_loss: if seen > 0 { epoch_loss / seen as f64 } else { 0.0 },
                validation_card_qerror_mean: card_q,
                validation_cost_qerror_mean: cost_q,
                wall_time_secs: started.elapsed().as_secs_f64(),
            };
            progress.epochs_done = epoch + 1;
            let metric = self.validation_metric(&epoch_stats);
            stats.push(epoch_stats);
            if progress.early_stop.observe(metric) {
                progress.stopped_early = true;
            }
        }
        self.progress = Some(progress);
        stats
    }

    /// The validation metric early stopping tracks for this trainer's task.
    fn validation_metric(&self, stats: &EpochStats) -> f64 {
        match self.model.config.task {
            TaskMode::CardinalityOnly => stats.validation_card_qerror_mean,
            TaskMode::CostOnly => stats.validation_cost_qerror_mean,
            TaskMode::Multitask => stats.validation_metric(),
        }
    }

    /// One level-batched forward + one two-head backward sweep over a
    /// mini-batch; returns the summed loss.
    fn train_batch(
        model: &mut TreeModel,
        normalization: &TargetNormalization,
        g: &mut Graph,
        samples: &[EncodedPlan],
        batch_idx: &[usize],
    ) -> f64 {
        let batch: Vec<&EncodedPlan> = batch_idx.iter().map(|&si| &samples[si]).collect();
        let (cost_out, card_out) = forward_batch(model, &model.params, g, &batch);

        let task = model.config.task;
        let omega = model.config.cost_loss_weight as f32;
        let n = batch.len();
        let mut loss = 0.0f64;
        let mut seeds = Vec::with_capacity(2);
        if matches!(task, TaskMode::CostOnly | TaskMode::Multitask) {
            let mut seed = Matrix::zeros(1, n);
            for (j, sample) in batch.iter().enumerate() {
                let target = normalization.cost.normalize(sample.true_cost);
                let (l, grad) = normalization.cost.loss_and_grad(g.value(cost_out).get(0, j), target);
                loss += model.config.cost_loss_weight * l;
                seed.set(0, j, omega * grad);
            }
            seeds.push((cost_out, seed));
        }
        if matches!(task, TaskMode::CardinalityOnly | TaskMode::Multitask) {
            let mut seed = Matrix::zeros(1, n);
            for (j, sample) in batch.iter().enumerate() {
                let target = normalization.cardinality.normalize(sample.true_cardinality);
                let (l, grad) = normalization.cardinality.loss_and_grad(g.value(card_out).get(0, j), target);
                loss += l;
                seed.set(0, j, grad);
            }
            seeds.push((card_out, seed));
        }
        g.backward_multi(seeds, &mut model.params);
        loss
    }

    /// Mean validation q-errors `(cardinality, cost)`, computed with the
    /// level-batched inference path.  Unmeasured values are `NaN` — with no
    /// validation split at all, and for the head a single-task model does
    /// not train (its output exists but never received a gradient).  A fake
    /// finite number there would read as real data to any [`EpochStats`]
    /// consumer, and an empty-split 1.0 would make the early-stop policy
    /// fire after exactly `patience` epochs on zero signal (`EarlyStop`
    /// skips non-finite metrics instead).
    fn validation_error(&self, samples: &[EncodedPlan], val_idx: &[usize]) -> (f64, f64) {
        if val_idx.is_empty() {
            return (f64::NAN, f64::NAN);
        }
        let val: Vec<&EncodedPlan> = val_idx.iter().map(|&i| &samples[i]).collect();
        let estimates = estimate_batch_refs(&self.model, &self.model.params, &self.normalization, &val);
        let mut card_sum = 0.0;
        let mut cost_sum = 0.0;
        for (plan, (cost, card)) in val.iter().zip(estimates.iter()) {
            cost_sum += q_error(*cost, plan.true_cost);
            card_sum += q_error(*card, plan.true_cardinality);
        }
        let task = self.model.config.task;
        let card_q = if matches!(task, TaskMode::CardinalityOnly | TaskMode::Multitask) {
            card_sum / val.len() as f64
        } else {
            f64::NAN
        };
        let cost_q = if matches!(task, TaskMode::CostOnly | TaskMode::Multitask) {
            cost_sum / val.len() as f64
        } else {
            f64::NAN
        };
        (card_q, cost_q)
    }

    /// Append the v2 training-state block: a presence flag, then — when the
    /// trainer actually trained — the schedule position, the Adam step
    /// counter, the early-stop state and the per-parameter moment payloads.
    /// A model-only trainer (fresh `from_parts`, e.g. after a plain
    /// checkpoint load) writes just the absent flag.
    pub(crate) fn write_training_state(&self, w: &mut impl std::io::Write) -> Result<(), CheckpointError> {
        use nn::checkpoint as ckpt;
        let Some(progress) = &self.progress else {
            return ckpt::write_u8(w, 0);
        };
        ckpt::write_u8(w, 1)?;
        ckpt::write_u64(w, progress.epochs_done as u64)?;
        ckpt::write_u64(w, progress.optimizer.step_count())?;
        let (best, since_best) = progress.early_stop.state();
        ckpt::write_f64(w, best)?;
        ckpt::write_u64(w, since_best as u64)?;
        ckpt::write_u8(w, progress.stopped_early as u8)?;
        self.model.params.save_moments_to(w)
    }

    /// Read a training-state block written by
    /// [`Trainer::write_training_state`], restoring the optimizer moments
    /// into this trainer's param store and the progress so the next `train`
    /// call resumes.  Returns whether the block carried any state.
    pub(crate) fn read_training_state(&mut self, r: &mut impl std::io::Read) -> Result<bool, CheckpointError> {
        use nn::checkpoint as ckpt;
        if ckpt::read_u8(r, "training-state flag")? == 0 {
            self.progress = None;
            return Ok(false);
        }
        let epochs_done = ckpt::read_u64(r, "epochs done")? as usize;
        let step_count = ckpt::read_u64(r, "optimizer step count")?;
        let best = ckpt::read_f64(r, "early-stop best metric")?;
        let since_best = ckpt::read_u64(r, "early-stop epochs since best")? as usize;
        let stopped_early = ckpt::read_u8(r, "early-stop stopped flag")? != 0;
        Arc::make_mut(&mut self.model).params.load_moments_from(r)?;
        let mut optimizer = Adam::new(self.config.learning_rate);
        optimizer.set_step_count(step_count);
        self.progress = Some(TrainProgress {
            epochs_done,
            optimizer,
            early_stop: EarlyStop::from_state(self.config.early_stop_patience, best, since_best),
            stopped_early,
        });
        Ok(true)
    }

    /// Estimate (denormalized) `(cost, cardinality)` for one encoded plan via
    /// the per-node recursive forward on an inference-mode tape.
    pub fn estimate(&self, plan: &EncodedPlan) -> (f64, f64) {
        let mut g = Graph::inference();
        let (cost_out, card_out) = self.model.forward(&mut g, &self.model.params, plan);
        (
            self.normalization.cost.denormalize(g.value(cost_out).data()[0]),
            self.normalization.cardinality.denormalize(g.value(card_out).data()[0]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, PredicateModelKind, RepresentationCellKind, TreeModel};
    use featurize::{EncodingConfig, FeatureExtractor};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
    use std::sync::Arc;
    use strembed::HashBitmapEncoder;

    /// Build a small synthetic training set of executed single-join plans.
    fn training_samples(n: usize) -> (Vec<EncodedPlan>, EncodingConfig) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg.clone(), Arc::new(HashBitmapEncoder::new(8)));
        let model = engine::CostModel::default();
        let mut out = Vec::new();
        for i in 0..n {
            let year = 1940 + (i * 7) % 75;
            let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(year as f64))),
            });
            let other = if i % 2 == 0 { "movie_companies" } else { "movie_info_idx" };
            let scan_o = PlanNode::leaf(PhysicalOp::SeqScan { table: other.into(), predicate: None });
            let mut join = PlanNode::inner(
                PhysicalOp::HashJoin { condition: JoinPredicate::new(other, "movie_id", "title", "id") },
                vec![scan_t, scan_o],
            );
            engine::execute_plan(&db, &mut join, &model);
            out.push(fx.encode_plan(&join));
        }
        (out, cfg)
    }

    #[test]
    fn training_reduces_validation_error() {
        let (samples, cfg) = training_samples(60);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, ..Default::default() },
        );
        let mut trainer = Trainer::new(
            model,
            &samples,
            TrainConfig { epochs: 8, batch_size: 8, learning_rate: 0.005, ..Default::default() },
        );
        let stats = trainer.train(&samples);
        assert_eq!(stats.len(), 8);
        let first = stats.first().expect("stats");
        let last = stats.last().expect("stats");
        assert!(
            last.validation_card_qerror_mean <= first.validation_card_qerror_mean * 1.5,
            "validation error exploded: {} -> {}",
            first.validation_card_qerror_mean,
            last.validation_card_qerror_mean
        );
        assert!(last.train_loss.is_finite());
    }

    #[test]
    fn trained_model_beats_untrained_on_training_data() {
        let (samples, cfg) = training_samples(50);
        let mk = || {
            TreeModel::new(
                &cfg,
                ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, ..Default::default() },
            )
        };
        let untrained = Trainer::new(mk(), &samples, TrainConfig::default());
        let mut trained = Trainer::new(
            mk(),
            &samples,
            TrainConfig { epochs: 12, batch_size: 8, learning_rate: 0.005, ..Default::default() },
        );
        trained.train(&samples);

        let mean_q = |t: &Trainer| {
            samples.iter().map(|s| q_error(t.estimate(s).1, s.true_cardinality)).sum::<f64>() / samples.len() as f64
        };
        let q_untrained = mean_q(&untrained);
        let q_trained = mean_q(&trained);
        assert!(
            q_trained < q_untrained,
            "training did not improve cardinality q-error: {q_untrained:.2} -> {q_trained:.2}"
        );
    }

    #[test]
    fn all_model_variants_train_one_epoch() {
        let (samples, cfg) = training_samples(12);
        for cell in [RepresentationCellKind::Lstm, RepresentationCellKind::Nn] {
            for pred in [PredicateModelKind::MinMaxPool, PredicateModelKind::TreeLstm] {
                for task in [TaskMode::CardinalityOnly, TaskMode::CostOnly, TaskMode::Multitask] {
                    let model = TreeModel::new(
                        &cfg,
                        ModelConfig {
                            cell,
                            predicate: pred,
                            task,
                            feature_embed_dim: 8,
                            hidden_dim: 12,
                            estimation_hidden_dim: 8,
                            ..Default::default()
                        },
                    );
                    let mut trainer =
                        Trainer::new(model, &samples, TrainConfig { epochs: 1, batch_size: 4, ..Default::default() });
                    let stats = trainer.train(&samples);
                    assert_eq!(stats.len(), 1);
                    assert!(stats[0].train_loss.is_finite());
                    // Only trained heads report a (finite) validation error;
                    // untrained heads are NaN per the EpochStats contract.
                    let card_q = stats[0].validation_card_qerror_mean;
                    let cost_q = stats[0].validation_cost_qerror_mean;
                    match task {
                        TaskMode::CardinalityOnly => assert!(card_q.is_finite() && cost_q.is_nan()),
                        TaskMode::CostOnly => assert!(card_q.is_nan() && cost_q.is_finite()),
                        TaskMode::Multitask => assert!(card_q.is_finite() && cost_q.is_finite()),
                    }
                }
            }
        }
    }

    #[test]
    fn no_validation_split_reports_nan_and_never_trips_early_stop() {
        let (samples, cfg) = training_samples(16);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        let mut trainer = Trainer::new(
            model,
            &samples,
            TrainConfig {
                epochs: 4,
                batch_size: 8,
                validation_fraction: 0.0,
                early_stop_patience: Some(1),
                ..Default::default()
            },
        );
        let stats = trainer.train(&samples);
        // No validation data: every epoch runs (nothing to stop on) and the
        // unmeasured q-errors are NaN, not a fake 1.0.
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.validation_card_qerror_mean.is_nan()));
        assert!(stats.iter().all(|s| s.validation_cost_qerror_mean.is_nan()));
        assert!(stats.iter().all(|s| s.train_loss.is_finite()));
    }

    #[test]
    fn early_stop_halts_before_epoch_budget() {
        let (samples, cfg) = training_samples(40);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
        );
        // Zero learning rate: the validation metric can never improve after
        // epoch 0, so patience=2 must stop training at epoch 3 of 50.
        let mut trainer = Trainer::new(
            model,
            &samples,
            TrainConfig {
                epochs: 50,
                batch_size: 8,
                learning_rate: 0.0,
                early_stop_patience: Some(2),
                ..Default::default()
            },
        );
        let stats = trainer.train(&samples);
        assert_eq!(stats.len(), 3, "patience 2 with a flat metric must stop after epoch 2");
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        let (samples, cfg) = training_samples(20);
        let model = TreeModel::new(
            &cfg,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, ..Default::default() },
        );
        let mut trainer = Trainer::new(model, &samples, TrainConfig { epochs: 2, batch_size: 8, ..Default::default() });
        trainer.train(&samples);
        for s in &samples {
            let (cost, card) = trainer.estimate(s);
            assert!(cost.is_finite() && cost >= 1.0);
            assert!(card.is_finite() && card >= 1.0);
        }
    }
}
