//! Tree-estimator checkpoint serialization.
//!
//! A [`crate::CostEstimator`] checkpoint is one [`nn::checkpoint`] container
//! of kind [`ckpt::KIND_TREE_ESTIMATOR`]:
//!
//! ```text
//! magic "E2ECKPT\0" | version u32 | kind u8 = 1
//! model config      (cell/predicate/task tags, dims, loss weight, seed)
//! target normalization (cost + cardinality log-range, 4 f64)
//! extractor vocab   (table/column/index one-hot dictionaries, numeric
//!                    ranges, string/sample widths, sample-bitmap flag)
//! parameter section (nested ParamStore payload, kind 0)
//! ```
//!
//! The vocab section makes a checkpoint self-describing: loading verifies
//! the saved dictionaries against the live extractor **entry by entry** and
//! fails with [`CheckpointError::VocabMismatch`] when the model was trained
//! under different feature positions — the failure mode that would
//! otherwise silently scramble every one-hot feature.  All floats are raw
//! bit patterns, so a load is bit-identical to the save.

use crate::model::{ModelConfig, PredicateModelKind, RepresentationCellKind, TaskMode};
use crate::trainer::TargetNormalization;
use featurize::{EncodingConfig, FeatureExtractor};
use nn::checkpoint as ckpt;
use nn::checkpoint::CheckpointError;
use nn::loss::NormalizationStats;
use nn::{QuantMatrix, QuantWeights};
use query::CompareOp;
use std::collections::HashMap;
use std::io::{Read, Write};

fn cell_tag(cell: RepresentationCellKind) -> u8 {
    match cell {
        RepresentationCellKind::Lstm => 0,
        RepresentationCellKind::Nn => 1,
    }
}

fn predicate_tag(p: PredicateModelKind) -> u8 {
    match p {
        PredicateModelKind::MinMaxPool => 0,
        PredicateModelKind::TreeLstm => 1,
    }
}

fn task_tag(t: TaskMode) -> u8 {
    match t {
        TaskMode::CardinalityOnly => 0,
        TaskMode::CostOnly => 1,
        TaskMode::Multitask => 2,
    }
}

pub(crate) fn write_model_config(w: &mut impl Write, cfg: &ModelConfig) -> Result<(), CheckpointError> {
    ckpt::write_u8(w, cell_tag(cfg.cell))?;
    ckpt::write_u8(w, predicate_tag(cfg.predicate))?;
    ckpt::write_u8(w, task_tag(cfg.task))?;
    ckpt::write_f64(w, cfg.cost_loss_weight)?;
    ckpt::write_u64(w, cfg.feature_embed_dim as u64)?;
    ckpt::write_u64(w, cfg.hidden_dim as u64)?;
    ckpt::write_u64(w, cfg.estimation_hidden_dim as u64)?;
    ckpt::write_u64(w, cfg.seed)
}

pub(crate) fn read_model_config(r: &mut impl Read) -> Result<ModelConfig, CheckpointError> {
    let cell = match ckpt::read_u8(r, "cell kind")? {
        0 => RepresentationCellKind::Lstm,
        1 => RepresentationCellKind::Nn,
        t => return Err(CheckpointError::Corrupt(format!("unknown representation-cell tag {t}"))),
    };
    let predicate = match ckpt::read_u8(r, "predicate kind")? {
        0 => PredicateModelKind::MinMaxPool,
        1 => PredicateModelKind::TreeLstm,
        t => return Err(CheckpointError::Corrupt(format!("unknown predicate-model tag {t}"))),
    };
    let task = match ckpt::read_u8(r, "task mode")? {
        0 => TaskMode::CardinalityOnly,
        1 => TaskMode::CostOnly,
        2 => TaskMode::Multitask,
        t => return Err(CheckpointError::Corrupt(format!("unknown task tag {t}"))),
    };
    Ok(ModelConfig {
        cell,
        predicate,
        task,
        cost_loss_weight: ckpt::read_f64(r, "cost loss weight")?,
        feature_embed_dim: ckpt::read_u64(r, "feature embed dim")? as usize,
        hidden_dim: ckpt::read_u64(r, "hidden dim")? as usize,
        estimation_hidden_dim: ckpt::read_u64(r, "estimation hidden dim")? as usize,
        seed: ckpt::read_u64(r, "model seed")?,
    })
}

pub(crate) fn write_normalization(w: &mut impl Write, n: &TargetNormalization) -> Result<(), CheckpointError> {
    ckpt::write_f64(w, n.cost.log_min)?;
    ckpt::write_f64(w, n.cost.log_max)?;
    ckpt::write_f64(w, n.cardinality.log_min)?;
    ckpt::write_f64(w, n.cardinality.log_max)
}

pub(crate) fn read_normalization(r: &mut impl Read) -> Result<TargetNormalization, CheckpointError> {
    Ok(TargetNormalization {
        cost: NormalizationStats {
            log_min: ckpt::read_f64(r, "cost log_min")?,
            log_max: ckpt::read_f64(r, "cost log_max")?,
        },
        cardinality: NormalizationStats {
            log_min: ckpt::read_f64(r, "cardinality log_min")?,
            log_max: ckpt::read_f64(r, "cardinality log_max")?,
        },
    })
}

/// Sorted serialization of a `name -> position` dictionary.
fn write_pos_map<W: Write, K: Ord>(
    w: &mut W,
    map: &HashMap<K, usize>,
    write_key: impl Fn(&mut W, &K) -> Result<(), CheckpointError>,
) -> Result<(), CheckpointError> {
    let mut entries: Vec<(&K, usize)> = map.iter().map(|(k, &v)| (k, v)).collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    ckpt::write_u64(w, entries.len() as u64)?;
    for (k, pos) in entries {
        write_key(w, k)?;
        ckpt::write_u64(w, pos as u64)?;
    }
    Ok(())
}

fn write_pair_key<W: Write>(w: &mut W, k: &(String, String)) -> Result<(), CheckpointError> {
    ckpt::write_str(w, &k.0)?;
    ckpt::write_str(w, &k.1)
}

pub fn write_vocab(w: &mut impl Write, enc: &EncodingConfig, use_sample_bitmap: bool) -> Result<(), CheckpointError> {
    write_pos_map(w, &enc.table_pos, |w, k| ckpt::write_str(w, k))?;
    write_pos_map(w, &enc.column_pos, write_pair_key)?;
    write_pos_map(w, &enc.index_pos, write_pair_key)?;
    let mut ranges: Vec<_> = enc.numeric_range.iter().map(|(k, &v)| (k, v)).collect();
    ranges.sort_by(|a, b| a.0.cmp(b.0));
    ckpt::write_u64(w, ranges.len() as u64)?;
    for (k, (lo, hi)) in ranges {
        ckpt::write_str(w, &k.0)?;
        ckpt::write_str(w, &k.1)?;
        ckpt::write_f64(w, lo)?;
        ckpt::write_f64(w, hi)?;
    }
    ckpt::write_u64(w, enc.string_dim as u64)?;
    ckpt::write_u64(w, enc.sample_bits as u64)?;
    ckpt::write_u8(w, use_sample_bitmap as u8)
}

/// Probe strings whose encodings fingerprint the string encoder.  The
/// one-hot dictionaries in the vocab section don't cover the encoder's own
/// state (an embedding dictionary, rules, tries); encoding a fixed probe
/// set at save time and comparing bit-exactly at load time catches a
/// checkpoint being applied under a materially different encoder of the
/// same width.  Prefix/suffix/containment/equality shapes are all probed.
const ENCODER_PROBES: &[(&str, CompareOp)] = &[
    ("", CompareOp::Eq),
    ("Din", CompareOp::Eq),
    ("Dino%", CompareOp::Like),
    ("Sch%", CompareOp::Like),
    ("%Pictures)", CompareOp::Like),
    ("%(co-production)%", CompareOp::Like),
    ("%top 250 rank%", CompareOp::NotLike),
    ("%2006%", CompareOp::Like),
];

pub(crate) fn write_encoder_fingerprint(w: &mut impl Write, fx: &FeatureExtractor) -> Result<(), CheckpointError> {
    ckpt::write_u64(w, ENCODER_PROBES.len() as u64)?;
    for &(probe, op) in ENCODER_PROBES {
        let v = fx.encode_string_operand(probe, op);
        ckpt::write_u64(w, v.len() as u64)?;
        ckpt::write_f32_slice(w, &v)?;
    }
    Ok(())
}

pub(crate) fn verify_encoder_fingerprint(r: &mut impl Read, fx: &FeatureExtractor) -> Result<(), CheckpointError> {
    let count = ckpt::read_count(r, "encoder fingerprint count")?;
    if count != ENCODER_PROBES.len() {
        return Err(CheckpointError::VocabMismatch(format!(
            "string-encoder fingerprint has {count} probes, this build expects {}",
            ENCODER_PROBES.len()
        )));
    }
    for &(probe, op) in ENCODER_PROBES {
        let len = ckpt::read_u64(r, "encoder fingerprint width")?;
        let stored = ckpt::read_f32_vec(r, len, "encoder fingerprint")?;
        let live = fx.encode_string_operand(probe, op);
        let same =
            stored.len() == live.len() && stored.iter().zip(live.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            return Err(CheckpointError::VocabMismatch(format!(
                "string encoder differs from the one the checkpoint was trained under (probe {probe:?})"
            )));
        }
    }
    Ok(())
}

/// Write the optional v3 quantized-weights block: a presence flag, then one
/// entry per quantized parameter slot — `(param index, rows, cols,
/// per-channel scales, int8 codes)`.  `None` writes just the absence flag,
/// which is how [`crate::CostEstimator::save_checkpoint_full_precision`]
/// opts a checkpoint out of the int8 tier.
pub(crate) fn write_quant_weights(w: &mut impl Write, quant: Option<&QuantWeights>) -> Result<(), CheckpointError> {
    let Some(quant) = quant else {
        return ckpt::write_u8(w, 0);
    };
    ckpt::write_u8(w, 1)?;
    ckpt::write_u64(w, quant.n_quantized() as u64)?;
    for (index, m) in quant.iter() {
        ckpt::write_u64(w, index as u64)?;
        ckpt::write_u64(w, m.rows() as u64)?;
        ckpt::write_u64(w, m.cols() as u64)?;
        ckpt::write_f32_slice(w, m.scales())?;
        ckpt::write_i8_slice(w, m.data())?;
    }
    Ok(())
}

/// Read the v3 quantized-weights block written by [`write_quant_weights`].
/// `n_slots` is the live model's parameter count: entries indexing past it
/// (or shaped inconsistently) fail as [`CheckpointError::Corrupt`].
pub(crate) fn read_quant_weights(r: &mut impl Read, n_slots: usize) -> Result<Option<QuantWeights>, CheckpointError> {
    if ckpt::read_u8(r, "quantized-weights flag")? == 0 {
        return Ok(None);
    }
    let count = ckpt::read_count(r, "quantized matrix count")?;
    let mut quant = QuantWeights::with_slots(n_slots);
    for _ in 0..count {
        let index = ckpt::read_u64(r, "quantized param index")? as usize;
        if index >= n_slots {
            return Err(CheckpointError::Corrupt(format!(
                "quantized entry indexes parameter {index}, model has {n_slots}"
            )));
        }
        let rows = ckpt::read_u64(r, "quantized rows")? as usize;
        let cols = ckpt::read_u64(r, "quantized cols")? as usize;
        let scales = ckpt::read_f32_vec(r, rows as u64, "quantization scales")?;
        let data = ckpt::read_i8_vec(r, (rows as u64).saturating_mul(cols as u64), "quantized codes")?;
        quant.set_slot(index, QuantMatrix::from_parts(rows, cols, scales, data));
    }
    Ok(Some(quant))
}

/// The vocabulary snapshot stored in a checkpoint.
pub struct VocabRecord {
    table_pos: HashMap<String, usize>,
    column_pos: HashMap<(String, String), usize>,
    index_pos: HashMap<(String, String), usize>,
    numeric_range: HashMap<(String, String), (f64, f64)>,
    string_dim: usize,
    sample_bits: usize,
    pub use_sample_bitmap: bool,
}

pub fn read_vocab(r: &mut impl Read) -> Result<VocabRecord, CheckpointError> {
    let mut table_pos = HashMap::new();
    for _ in 0..ckpt::read_count(r, "table vocab count")? {
        let name = ckpt::read_str(r, "table name")?;
        table_pos.insert(name, ckpt::read_u64(r, "table position")? as usize);
    }
    let mut read_pair_map = |what: &'static str| -> Result<HashMap<(String, String), usize>, CheckpointError> {
        let mut map = HashMap::new();
        for _ in 0..ckpt::read_count(r, what)? {
            let t = ckpt::read_str(r, "vocab table")?;
            let c = ckpt::read_str(r, "vocab column")?;
            map.insert((t, c), ckpt::read_u64(r, "vocab position")? as usize);
        }
        Ok(map)
    };
    let column_pos = read_pair_map("column vocab count")?;
    let index_pos = read_pair_map("index vocab count")?;
    let mut numeric_range = HashMap::new();
    for _ in 0..ckpt::read_count(r, "numeric range count")? {
        let t = ckpt::read_str(r, "range table")?;
        let c = ckpt::read_str(r, "range column")?;
        let lo = ckpt::read_f64(r, "range min")?;
        let hi = ckpt::read_f64(r, "range max")?;
        numeric_range.insert((t, c), (lo, hi));
    }
    Ok(VocabRecord {
        table_pos,
        column_pos,
        index_pos,
        numeric_range,
        string_dim: ckpt::read_u64(r, "string dim")? as usize,
        sample_bits: ckpt::read_u64(r, "sample bits")? as usize,
        use_sample_bitmap: ckpt::read_u8(r, "sample bitmap flag")? != 0,
    })
}

impl VocabRecord {
    /// Verify the snapshot matches the live extractor configuration; a
    /// mismatch means the checkpointed weights read features at different
    /// positions than this extractor produces.
    pub fn verify(&self, enc: &EncodingConfig, use_sample_bitmap: bool) -> Result<(), CheckpointError> {
        if self.table_pos != enc.table_pos {
            return Err(CheckpointError::VocabMismatch("table one-hot dictionary differs".into()));
        }
        if self.column_pos != enc.column_pos {
            return Err(CheckpointError::VocabMismatch("column one-hot dictionary differs".into()));
        }
        if self.index_pos != enc.index_pos {
            return Err(CheckpointError::VocabMismatch("index one-hot dictionary differs".into()));
        }
        if self.numeric_range != enc.numeric_range {
            return Err(CheckpointError::VocabMismatch("numeric column ranges differ".into()));
        }
        if self.string_dim != enc.string_dim {
            return Err(CheckpointError::VocabMismatch(format!(
                "string-encoder width differs ({} saved vs {} live)",
                self.string_dim, enc.string_dim
            )));
        }
        if self.sample_bits != enc.sample_bits {
            return Err(CheckpointError::VocabMismatch(format!(
                "sample-bitmap width differs ({} saved vs {} live)",
                self.sample_bits, enc.sample_bits
            )));
        }
        if self.use_sample_bitmap != use_sample_bitmap {
            return Err(CheckpointError::VocabMismatch("sample-bitmap flag differs".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use std::io::Cursor;

    #[test]
    fn model_config_roundtrip_all_variants() {
        for cell in [RepresentationCellKind::Lstm, RepresentationCellKind::Nn] {
            for predicate in [PredicateModelKind::MinMaxPool, PredicateModelKind::TreeLstm] {
                for task in [TaskMode::CardinalityOnly, TaskMode::CostOnly, TaskMode::Multitask] {
                    let cfg = ModelConfig { cell, predicate, task, ..Default::default() };
                    let mut buf = Vec::new();
                    write_model_config(&mut buf, &cfg).unwrap();
                    let back = read_model_config(&mut Cursor::new(&buf)).unwrap();
                    assert_eq!(format!("{cfg:?}"), format!("{back:?}"));
                }
            }
        }
    }

    #[test]
    fn bad_enum_tag_is_corrupt() {
        let mut buf = Vec::new();
        write_model_config(&mut buf, &ModelConfig::default()).unwrap();
        buf[0] = 77;
        assert!(matches!(read_model_config(&mut Cursor::new(&buf)), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn vocab_roundtrip_verifies_and_detects_drift() {
        let db = generate_imdb(GeneratorConfig::tiny());
        let enc = EncodingConfig::from_database(&db, 8, 32);
        let mut buf = Vec::new();
        write_vocab(&mut buf, &enc, true).unwrap();
        let rec = read_vocab(&mut Cursor::new(&buf)).unwrap();
        rec.verify(&enc, true).unwrap();
        assert!(matches!(rec.verify(&enc, false), Err(CheckpointError::VocabMismatch(_))));

        let mut drifted = enc.clone();
        let key = drifted.column_pos.keys().next().unwrap().clone();
        *drifted.column_pos.get_mut(&key).unwrap() += 1000;
        assert!(matches!(rec.verify(&drifted, true), Err(CheckpointError::VocabMismatch(_))));

        let mut narrower = enc.clone();
        narrower.string_dim = 4;
        assert!(matches!(rec.verify(&narrower, true), Err(CheckpointError::VocabMismatch(_))));
    }
}
