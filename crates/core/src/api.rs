//! The public end-to-end estimator API.
//!
//! [`CostEstimator`] wires everything together the way the paper's Figure 2
//! does: a feature extractor (with a pluggable string encoder), the tree
//! model, the trainer and the representation memory pool.  Downstream users
//! hand it annotated training plans once, then ask it for `(cost,
//! cardinality)` of new physical plans.

use crate::backend::{Estimator, EstimatorCapabilities, PlanEstimate, TrainableEstimator};
use crate::batch::{estimate_batch, estimate_batch_memo, estimate_batch_memo_quant, estimate_batch_quant};
use crate::checkpoint;
use crate::memory::{EncodedSubtreeCache, RepresentationMemoryPool, SubtreeStateCache};
use crate::model::{ModelConfig, TaskMode, TreeModel};
use crate::trainer::{EpochStats, TargetNormalization, TrainConfig, Trainer};
use featurize::{EncodedPlan, FeatureExtractor};
use nn::checkpoint as ckpt;
use nn::checkpoint::CheckpointError;
use nn::QuantWeights;
use query::PlanNode;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// An end-to-end learned cost and cardinality estimator.
pub struct CostEstimator {
    extractor: Arc<FeatureExtractor>,
    trainer: Option<Trainer>,
    model_config: ModelConfig,
    train_config: TrainConfig,
    pool: RepresentationMemoryPool,
    subtree_cache: Arc<SubtreeStateCache>,
    /// Memoized subtree *encodings* (the featurize front of the serving
    /// path); swapped together with `subtree_cache` on every invalidation.
    encode_cache: Arc<EncodedSubtreeCache>,
    /// Per-channel int8 form of the fitted weights (the cheap serving tier);
    /// derived on demand or restored from a v3 checkpoint.
    quant: Option<Arc<QuantWeights>>,
    /// Subtree-state cache dedicated to the quantized tier — int8 states are
    /// not bit-compatible with the f32 tier's, so the tiers never share one.
    quant_cache: Arc<SubtreeStateCache>,
}

impl CostEstimator {
    /// Create an estimator with the given feature extractor and configuration.
    pub fn new(extractor: FeatureExtractor, model_config: ModelConfig, train_config: TrainConfig) -> Self {
        CostEstimator {
            extractor: Arc::new(extractor),
            trainer: None,
            model_config,
            train_config,
            pool: RepresentationMemoryPool::new(),
            subtree_cache: Arc::new(SubtreeStateCache::new()),
            encode_cache: Arc::new(EncodedSubtreeCache::new()),
            quant: None,
            quant_cache: Arc::new(SubtreeStateCache::new()),
        }
    }

    /// Invalidate every serving cache: the memory pool is cleared and the
    /// subtree-state cache is **replaced** with a fresh `Arc` rather than
    /// cleared in place, so an outstanding owned [`ServingEstimator`] keeps
    /// its consistent (old model, old cache) pair while this estimator's
    /// next handle starts empty — nothing computed under the old parameters
    /// can ever serve the new ones, in either direction.  The quantized
    /// weights and their tier cache are dropped too: both derive from the
    /// parameters that just changed.  The encoded-subtree cache is swapped
    /// under the same rule — its entries would actually stay *valid* (they
    /// depend only on the extractor, which survives refits), but one
    /// invalidation rule for every serving cache is cheaper to reason about
    /// than a carve-out, and re-encoding a working set is a few
    /// milliseconds.
    fn invalidate_caches(&mut self) {
        self.pool.clear();
        self.subtree_cache = Arc::new(SubtreeStateCache::new());
        self.encode_cache = Arc::new(EncodedSubtreeCache::new());
        self.quant = None;
        self.quant_cache = Arc::new(SubtreeStateCache::new());
    }

    /// Derive the per-channel int8 weights for the fitted model if not
    /// already present (from a fit in this process or a v3 checkpoint).
    /// Idempotent; returns whether quantized weights are now available.
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn ensure_quantized(&mut self) -> bool {
        let trainer = self.trainer.as_ref().expect("CostEstimator::ensure_quantized called before fit");
        if self.quant.is_none() {
            self.quant = Some(Arc::new(QuantWeights::from_store(&trainer.model.params)));
        }
        self.quant.as_ref().is_some_and(|q| q.n_quantized() > 0)
    }

    /// True when the int8 serving tier is available.
    pub fn has_quantized_weights(&self) -> bool {
        self.quant.as_ref().is_some_and(|q| q.n_quantized() > 0)
    }

    /// The feature extractor (exposed for encoding plans externally).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Encode an annotated physical plan into the model's input format.
    pub fn encode(&self, plan: &PlanNode) -> EncodedPlan {
        self.extractor.encode_plan(plan)
    }

    /// Encode a batch through the estimator's shared encoded-subtree cache:
    /// each distinct subtree (within the batch *and* across previous calls
    /// since the last refit) is featurized exactly once.  Bit-identical to
    /// [`CostEstimator::encode`] per plan.
    pub fn encode_plans(&self, plans: &[PlanNode]) -> Vec<Arc<EncodedPlan>> {
        self.extractor.encode_plans_cached(plans, self.encode_cache.as_ref())
    }

    /// The memoized-encode cache backing [`CostEstimator::encode_plans`]
    /// (and every [`ServingEstimator`] handle minted since the last refit).
    pub fn encode_cache(&self) -> &EncodedSubtreeCache {
        self.encode_cache.as_ref()
    }

    /// Train on already-encoded plans; returns per-epoch statistics.
    pub fn fit_encoded(&mut self, samples: &[EncodedPlan]) -> Vec<EpochStats> {
        let model = TreeModel::new(self.extractor.config(), self.model_config);
        let mut trainer = Trainer::new(model, samples, self.train_config);
        let stats = trainer.train(samples);
        self.trainer = Some(trainer);
        // Cached estimates and subtree states belong to the previous model.
        self.invalidate_caches();
        stats
    }

    /// Train on executed (annotated) physical plans.
    pub fn fit(&mut self, plans: &[PlanNode]) -> Vec<EpochStats> {
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| self.encode(p)).collect();
        self.fit_encoded(&encoded)
    }

    /// Continue an interrupted training run on already-encoded plans —
    /// after [`CostEstimator::resume_from_checkpoint`] — until
    /// `train_config.epochs` total epochs are done.  With the same samples
    /// and hyper-parameters as the interrupted run, the result is
    /// **bit-identical** to never having been interrupted.  Unlike
    /// [`CostEstimator::fit_encoded`], nothing is re-initialized.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Unsupported`] when there is nothing to
    /// resume: no trainer at all, or a trainer without resumable training
    /// state (e.g. after a model-only v1 checkpoint load) — silently
    /// restarting training from epoch 0 with a fresh optimizer would
    /// masquerade as a continuation.  Callers that can retrain from scratch
    /// (the serving refresh controller) fall back to
    /// [`CostEstimator::fit_encoded`] on this error instead of aborting.
    pub fn fit_resumed_encoded(&mut self, samples: &[EncodedPlan]) -> Result<Vec<EpochStats>, CheckpointError> {
        let trainer = self.trainer.as_mut().ok_or(CheckpointError::Unsupported(
            "fit_resumed called with nothing to resume: the estimator has never been fitted or loaded",
        ))?;
        if !trainer.is_resumable() {
            return Err(CheckpointError::Unsupported(
                "fit_resumed called with nothing to resume: the checkpoint carried no resumable training state",
            ));
        }
        let stats = trainer.train(samples);
        // Parameters moved: every cached estimate/state is stale.
        self.invalidate_caches();
        Ok(stats)
    }

    /// [`CostEstimator::fit_resumed_encoded`] over raw annotated plans.
    pub fn fit_resumed(&mut self, plans: &[PlanNode]) -> Result<Vec<EpochStats>, CheckpointError> {
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| self.encode(p)).collect();
        self.fit_resumed_encoded(&encoded)
    }

    /// Raise the total epoch budget by `extra` so a *completed* training run
    /// can be fine-tuned with [`CostEstimator::fit_resumed_encoded`].
    ///
    /// Resumable training counts epochs against `train_config.epochs`; once a
    /// fit has run them all, `fit_resumed` is a no-op.  Online fine-tuning
    /// (the serving refresh loop) instead wants "N more epochs on fresh
    /// data": this bumps the budget on both the estimator's config and the
    /// live trainer, and clears a tripped early-stop so the new data is
    /// actually looked at.  Has no effect on what checkpoints round-trip —
    /// the raised budget is persisted like any other hyper-parameter.
    pub fn extend_training_epochs(&mut self, extra: usize) {
        self.train_config.epochs += extra;
        if let Some(trainer) = self.trainer.as_mut() {
            trainer.extend_epochs(extra);
        }
    }

    /// True once the model has been trained.
    pub fn is_fitted(&self) -> bool {
        self.trainer.is_some()
    }

    /// True when [`CostEstimator::fit_resumed`] can continue training: the
    /// model trained in this process, or was restored (with training state)
    /// by [`CostEstimator::resume_from_checkpoint`] /
    /// [`CostEstimator::load_checkpoint`] from a v2 checkpoint.
    pub fn is_resumable(&self) -> bool {
        self.trainer.as_ref().is_some_and(|t| t.is_resumable())
    }

    /// Estimate `(cost, cardinality)` for a physical plan.
    ///
    /// Results for previously-seen plan signatures are served from the
    /// representation memory pool.
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn estimate(&self, plan: &PlanNode) -> (f64, f64) {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate called before fit");
        let signature = plan.signature_hash();
        if let Some(hit) = self.pool.get(signature) {
            return hit;
        }
        let encoded = self.encode(plan);
        let result = trainer.estimate(&encoded);
        self.pool.insert(signature, result.0, result.1);
        result
    }

    /// Estimate `(cost, cardinality)` for an already-encoded plan.
    pub fn estimate_encoded(&self, plan: &EncodedPlan) -> (f64, f64) {
        self.trainer.as_ref().expect("CostEstimator::estimate_encoded called before fit").estimate(plan)
    }

    /// Level-batched estimation of many encoded plans at once (Table 12).
    pub fn estimate_encoded_batch(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_batch called before fit");
        estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, plans)
    }

    /// Level-batched estimation through the int8 tier: quantized weight
    /// matmuls, no memoization — the Q8 counterpart of
    /// [`CostEstimator::estimate_encoded_batch`] (the Table-12 Q8 rows).
    /// Falls back to the f32 batch when no quantized weights are available.
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn estimate_encoded_batch_quant(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_batch_quant called before fit");
        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        match self.quant.as_ref().filter(|q| q.n_quantized() > 0) {
            Some(quant) => {
                estimate_batch_quant(&trainer.model, &trainer.model.params, quant, &trainer.normalization, &refs)
            }
            None => estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, plans),
        }
    }

    /// Memoized batched estimation against this estimator's subtree-state
    /// cache: candidate plans sharing sub-plans (a DP enumeration) embed
    /// each distinct subtree once.  Results are bit-identical to
    /// [`CostEstimator::estimate_encoded_batch`].
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn estimate_encoded_batch_memo(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        self.serving().estimate_encoded_batch(&refs)
    }

    /// An **owned**, shareable serving handle over the fitted model and the
    /// subtree cache.  The handle is `Clone + Send + Sync` and holds the
    /// model and cache by `Arc`, so its lifetime is decoupled from this
    /// estimator (and its trainer): a multi-tenant catalog can keep serving
    /// a model whose trainer is long gone, and a hot-swap or re-fit on this
    /// estimator leaves outstanding handles pinned to the exact weights and
    /// cache they were created with.  Tapes are per-thread and the cache is
    /// sharded, so concurrent sessions sharing one handle serialize on no
    /// global lock.
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn serving(&self) -> ServingEstimator {
        let trainer = self.trainer.as_ref().expect("CostEstimator::serving called before fit");
        ServingEstimator {
            model: Arc::clone(&trainer.model),
            normalization: trainer.normalization,
            extractor: Arc::clone(&self.extractor),
            cache: Arc::clone(&self.subtree_cache),
            encode_cache: Arc::clone(&self.encode_cache),
            quant: self.quant.clone(),
            quant_cache: Arc::clone(&self.quant_cache),
        }
    }

    /// The subtree-state cache backing the memoized serving path.
    pub fn subtree_cache(&self) -> &SubtreeStateCache {
        self.subtree_cache.as_ref()
    }

    /// Pre-optimization one-by-one estimation (per-node forward on a
    /// seed-compat tape) — the naive baseline of the Table-12 bench.
    pub fn estimate_encoded_reference(&self, plan: &EncodedPlan) -> (f64, f64) {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_reference called before fit");
        crate::batch::reference::estimate_per_node_reference(
            &trainer.model,
            &trainer.model.params,
            &trainer.normalization,
            plan,
        )
    }

    /// Pre-optimization batched estimation (the reference implementation in
    /// `batch::reference`); the Table-12 efficiency bench reports the
    /// optimized path's speed-up against this baseline.
    pub fn estimate_encoded_batch_reference(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_batch_reference called before fit");
        crate::batch::reference::estimate_batch_reference(
            &trainer.model,
            &trainer.model.params,
            &trainer.normalization,
            plans,
        )
    }

    /// Cache statistics of the representation memory pool `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    /// Persist the fitted model as a versioned binary checkpoint: model
    /// configuration, target normalization, the extractor's one-hot
    /// vocabulary and every parameter tensor (raw `f32` bit patterns).  A
    /// checkpoint loaded by [`CostEstimator::load_checkpoint`] serves
    /// bit-identical estimates with zero retraining.
    /// (Format v2 additionally appends the trainer's resumable state —
    /// schedule position, Adam step counter + moments, early-stop state —
    /// when the model was trained in this process; see
    /// [`CostEstimator::resume_from_checkpoint`].  Format v3 appends the
    /// per-channel int8 quantized weights — quantized on the fly here if
    /// not already derived — so a loaded checkpoint serves the two-tier
    /// path without re-quantizing; see
    /// [`CostEstimator::save_checkpoint_full_precision`] to opt out.)
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.save_checkpoint_impl(path.as_ref(), true, true)
    }

    /// [`CostEstimator::save_checkpoint`] without the v3 quantized-weights
    /// block: the file stays format v3 but carries only the f32 parameters,
    /// and loading it serves full-precision only (until
    /// [`CostEstimator::ensure_quantized`] re-derives the int8 tier).
    pub fn save_checkpoint_full_precision(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.save_checkpoint_impl(path.as_ref(), false, true)
    }

    /// [`CostEstimator::save_checkpoint`] without the resumable training
    /// state: the file keeps format v3 (including the quantized tier) but a
    /// load yields a serving-only estimator — [`CostEstimator::fit_resumed`]
    /// on it reports `Unsupported` instead of continuing training.  The
    /// deployment artifact for hosts that serve but never train: no Adam
    /// moments, so roughly a third smaller than the full checkpoint.
    pub fn save_checkpoint_model_only(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.save_checkpoint_impl(path.as_ref(), true, false)
    }

    fn save_checkpoint_impl(&self, path: &Path, with_quant: bool, with_state: bool) -> Result<(), CheckpointError> {
        let trainer = self.trainer.as_ref().ok_or(CheckpointError::Unsupported("save_checkpoint called before fit"))?;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        ckpt::write_header(&mut w, ckpt::KIND_TREE_ESTIMATOR)?;
        checkpoint::write_model_config(&mut w, &trainer.model.config)?;
        checkpoint::write_normalization(&mut w, &trainer.normalization)?;
        checkpoint::write_vocab(&mut w, self.extractor.config(), self.extractor.use_sample_bitmap)?;
        checkpoint::write_encoder_fingerprint(&mut w, &self.extractor)?;
        trainer.model.params.save_to(&mut w)?;
        if with_state {
            trainer.write_training_state(&mut w)?;
        } else {
            // The absent-state flag: readers see a valid v2 block that
            // simply carries nothing to resume.
            ckpt::write_u8(&mut w, 0)?;
        }
        if with_quant {
            // Reuse the already-derived int8 weights when present, else
            // quantize on the fly for the file only (a `&self` save cannot
            // cache them back).
            let derived;
            let quant = match &self.quant {
                Some(q) => q.as_ref(),
                None => {
                    derived = QuantWeights::from_store(&trainer.model.params);
                    &derived
                }
            };
            checkpoint::write_quant_weights(&mut w, Some(quant))?;
        } else {
            checkpoint::write_quant_weights(&mut w, None)?;
        }
        Ok(w.flush()?)
    }

    /// Restore a model saved by [`CostEstimator::save_checkpoint`],
    /// replacing any current fit.
    ///
    /// The checkpoint's stored vocabulary is verified entry-by-entry
    /// against this estimator's extractor, and the extractor's string
    /// encoder is checked against the stored probe-encoding fingerprint
    /// ([`CheckpointError::VocabMismatch`] on either), so loaded weights
    /// can never be applied to features laid out differently than the ones
    /// they were trained on.  Exactly like a re-fit, a successful load
    /// clears the representation memory pool and the subtree-state cache —
    /// every cached value belongs to the replaced parameters.  On error the
    /// estimator is left untouched.
    pub fn load_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.load_checkpoint_impl(path.as_ref(), false)
    }

    /// Restore a checkpoint **including its training state**, so a
    /// following [`CostEstimator::fit_resumed`] continues the interrupted
    /// run — with the same samples and hyper-parameters, bit-identically to
    /// never having stopped (Adam moments and step counter, the schedule's
    /// replayed RNG position and the early-stop state all come back).
    ///
    /// Fails with [`CheckpointError::Unsupported`] on a v1 file or a v2
    /// file saved without training state (e.g. from a loaded-not-trained
    /// estimator): those are model-only checkpoints — use
    /// [`CostEstimator::load_checkpoint`].
    pub fn resume_from_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.load_checkpoint_impl(path.as_ref(), true)
    }

    fn load_checkpoint_impl(&mut self, path: &Path, resume: bool) -> Result<(), CheckpointError> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        let version = ckpt::read_header(&mut r, ckpt::KIND_TREE_ESTIMATOR)?;
        if resume && version < 2 {
            return Err(CheckpointError::Unsupported("v1 checkpoints carry no training state to resume from"));
        }
        let model_config = checkpoint::read_model_config(&mut r)?;
        let normalization = checkpoint::read_normalization(&mut r)?;
        let vocab = checkpoint::read_vocab(&mut r)?;
        vocab.verify(self.extractor.config(), self.extractor.use_sample_bitmap)?;
        checkpoint::verify_encoder_fingerprint(&mut r, &self.extractor)?;
        let mut model = TreeModel::new(self.extractor.config(), model_config);
        model.params.load_values_from(&mut r)?;
        let mut trainer = Trainer::from_parts(model, normalization, self.train_config);
        if version >= 2 {
            // Always consume and validate the training-state block — a
            // truncated or corrupt tail must fail the load — and keep the
            // restored progress, so a loaded checkpoint stays resumable.
            let has_state = trainer.read_training_state(&mut r)?;
            if resume && !has_state {
                return Err(CheckpointError::Unsupported("checkpoint was saved without training state"));
            }
        }
        // v3 optionally trails the per-channel int8 weights; a v3 file
        // without the block (or any older file) loads full-precision only.
        let quant =
            if version >= 3 { checkpoint::read_quant_weights(&mut r, trainer.model.params.len())? } else { None };
        self.model_config = model_config;
        self.trainer = Some(trainer);
        // Same invalidation as re-fit: cached estimates and subtree states
        // belong to the parameters this load just replaced.
        self.invalidate_caches();
        self.quant = quant.map(Arc::new);
        Ok(())
    }
}

impl Estimator for CostEstimator {
    fn backend_name(&self) -> &str {
        "tree"
    }

    fn capabilities(&self) -> EstimatorCapabilities {
        EstimatorCapabilities {
            cost: matches!(self.model_config.task, TaskMode::CostOnly | TaskMode::Multitask),
            cardinality: matches!(self.model_config.task, TaskMode::CardinalityOnly | TaskMode::Multitask),
            checkpointable: true,
        }
    }

    fn estimate_one(&self, plan: &PlanNode) -> PlanEstimate {
        let caps = self.capabilities();
        let (cost, card) = self.estimate(plan);
        PlanEstimate { cost: caps.cost.then_some(cost), cardinality: caps.cardinality.then_some(card) }
    }

    fn estimate_many(&self, plans: &[PlanNode]) -> Vec<PlanEstimate> {
        let caps = self.capabilities();
        if plans.is_empty() {
            return Vec::new();
        }
        // Memoized on both ends: featurization deduplicates shared subtrees
        // through the encode cache (bit-identical to fresh `encode`), and
        // inference memoizes subtree states — trait-driven serving (catalog
        // sessions, coalesced admission batches) shares both across calls.
        let encoded = self.encode_plans(plans);
        let refs: Vec<&EncodedPlan> = encoded.iter().map(|a| a.as_ref()).collect();
        self.serving()
            .estimate_encoded_batch(&refs)
            .into_iter()
            .map(|(cost, card)| PlanEstimate {
                cost: caps.cost.then_some(cost),
                cardinality: caps.cardinality.then_some(card),
            })
            .collect()
    }

    fn save_checkpoint_to(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_checkpoint(path)
    }

    fn load_checkpoint_from(&mut self, path: &Path) -> Result<(), CheckpointError> {
        self.load_checkpoint(path)
    }
}

impl TrainableEstimator for CostEstimator {
    fn fit_plans(&mut self, plans: &[PlanNode]) -> Vec<EpochStats> {
        self.fit(plans)
    }

    fn is_fitted(&self) -> bool {
        CostEstimator::is_fitted(self)
    }
}

/// An owned, thread-shareable view of a fitted estimator for
/// optimizer-in-the-loop serving: the tree model, the target normalization
/// and the shared subtree-state cache — held by `Arc`, with nothing else
/// attached.  Obtain one via [`CostEstimator::serving`]; clones share the
/// same weights and cache.  Because the handle **owns** its referents, it
/// outlives the estimator/trainer that minted it: a model catalog can drop
/// or hot-swap the source estimator while in-flight sessions finish on
/// their pinned handle, and a re-fit/checkpoint-load never mutates weights
/// under a live handle (training copies-on-write, cache invalidation swaps
/// in a fresh `Arc`).
#[derive(Clone)]
pub struct ServingEstimator {
    model: Arc<TreeModel>,
    normalization: TargetNormalization,
    /// The feature extractor the model was fitted with, so the handle can
    /// accept raw [`PlanNode`]s and run the whole encode+embed pipeline.
    extractor: Arc<FeatureExtractor>,
    cache: Arc<SubtreeStateCache>,
    /// Memoized subtree *encodings*, shared with the source estimator and
    /// every clone of this handle — swapped alongside `cache` on
    /// invalidation so a handle always holds a consistent (model, caches)
    /// set.
    encode_cache: Arc<EncodedSubtreeCache>,
    /// The int8 serving tier, when the source estimator had one derived
    /// ([`CostEstimator::ensure_quantized`]) or loaded from a v3 checkpoint.
    quant: Option<Arc<QuantWeights>>,
    /// Subtree cache for the quantized tier — never shared with `cache`,
    /// because int8 states are not bit-compatible with f32 states.
    quant_cache: Arc<SubtreeStateCache>,
}

impl ServingEstimator {
    /// The end-to-end front door: encode a batch of **raw plans** through
    /// the shared encode cache (each distinct subtree featurized once,
    /// bit-identical to fresh encoding) and score them through the memoized
    /// batch path; `(cost, cardinality)` per plan, in input order.  This is
    /// the one-call form of `encode_plans` + `estimate_encoded_batch` an
    /// optimizer loop wants.
    pub fn estimate_plans(&self, plans: &[PlanNode]) -> Vec<(f64, f64)> {
        let encoded = self.encode_plans(plans);
        let refs: Vec<&EncodedPlan> = encoded.iter().map(|a| a.as_ref()).collect();
        self.estimate_encoded_batch(&refs)
    }

    /// Encode a batch of raw plans through the handle's shared encode
    /// cache: each distinct (subtree, annotations) featurized at most once
    /// across the batch *and* across every session sharing this handle.
    pub fn encode_plans(&self, plans: &[PlanNode]) -> Vec<Arc<EncodedPlan>> {
        self.extractor.encode_plans_cached(plans, self.encode_cache.as_ref())
    }

    /// Score a batch of candidate plans with subtree memoization
    /// ([`crate::batch::estimate_batch_memo`]); `(cost, cardinality)` per
    /// plan, in input order.
    pub fn estimate_encoded_batch(&self, plans: &[&EncodedPlan]) -> Vec<(f64, f64)> {
        estimate_batch_memo(&self.model, &self.model.params, &self.normalization, plans, self.cache.as_ref())
    }

    /// [`ServingEstimator::estimate_encoded_batch`] memoizing against a
    /// caller-supplied cache instead of the handle's own — the worker
    /// runtime routes each split wave chunk through the executing worker's
    /// private cache shard.  Results are bit-identical to
    /// [`ServingEstimator::estimate_encoded_batch`] whatever `cache` holds,
    /// provided it only ever memoized *this* model's states (the memoized
    /// path is bit-identical to fresh computation; a cache warmed by a
    /// different model would violate its ownership contract, not this
    /// method's).
    pub fn estimate_encoded_batch_with_cache(
        &self,
        plans: &[&EncodedPlan],
        cache: &SubtreeStateCache,
    ) -> Vec<(f64, f64)> {
        estimate_batch_memo(&self.model, &self.model.params, &self.normalization, plans, cache)
    }

    /// True when this handle can serve the int8 tier (and therefore the
    /// tiered path actually escalates rather than degenerating to f32).
    pub fn has_quantized_weights(&self) -> bool {
        self.quant.as_ref().is_some_and(|q| q.n_quantized() > 0)
    }

    /// Score a batch on the quantized tier only: approximate (per-channel
    /// int8 weight matmuls) but cheap, memoized against the tier's own
    /// subtree cache.  Falls back to the full-precision path when the
    /// handle carries no quantized weights.
    pub fn estimate_encoded_batch_quant(&self, plans: &[&EncodedPlan]) -> Vec<(f64, f64)> {
        match &self.quant {
            Some(quant) => estimate_batch_memo_quant(
                &self.model,
                &self.model.params,
                quant,
                &self.normalization,
                plans,
                self.quant_cache.as_ref(),
            ),
            None => self.estimate_encoded_batch(plans),
        }
    }

    /// Two-tier scoring for optimizer-in-the-loop serving: every candidate
    /// is first scored on the cheap int8 tier, then the `top_k` candidates
    /// with the **lowest** approximate cost — the ones the optimizer is
    /// actually about to choose between — are re-scored at full precision
    /// through the memoized f32 path.  Results come back in input order;
    /// escalated plans carry f32-tier estimates (bit-identical to
    /// [`ServingEstimator::estimate_encoded_batch`] for those plans), the
    /// rest keep their quantized estimates.
    ///
    /// Degenerate cases: no quantized weights or `top_k >= plans.len()`
    /// serve the whole batch at full precision; `top_k == 0` stays entirely
    /// on the quantized tier.
    pub fn estimate_encoded_batch_tiered(&self, plans: &[&EncodedPlan], top_k: usize) -> Vec<(f64, f64)> {
        if plans.is_empty() {
            return Vec::new();
        }
        if !self.has_quantized_weights() || top_k >= plans.len() {
            return self.estimate_encoded_batch(plans);
        }
        let mut out = self.estimate_encoded_batch_quant(plans);
        if top_k == 0 {
            return out;
        }
        // Rank by approximate cost ascending (ties broken by input order for
        // determinism) and escalate the cheapest-looking top_k.
        let mut order: Vec<usize> = (0..plans.len()).collect();
        order.sort_by(|&a, &b| {
            out[a].0.partial_cmp(&out[b].0).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.cmp(&b))
        });
        let survivors = &order[..top_k];
        let survivor_plans: Vec<&EncodedPlan> = survivors.iter().map(|&i| plans[i]).collect();
        let exact = self.estimate_encoded_batch(&survivor_plans);
        for (&i, e) in survivors.iter().zip(exact) {
            out[i] = e;
        }
        out
    }

    /// The shared subtree-state cache (for hit-rate reporting).
    pub fn cache(&self) -> &SubtreeStateCache {
        self.cache.as_ref()
    }

    /// The quantized tier's subtree-state cache.
    pub fn quant_cache(&self) -> &SubtreeStateCache {
        self.quant_cache.as_ref()
    }

    /// The shared encoded-subtree cache (for hit-rate reporting).
    pub fn encode_cache(&self) -> &EncodedSubtreeCache {
        self.encode_cache.as_ref()
    }

    /// The feature extractor this handle encodes raw plans with.
    pub fn extractor(&self) -> &FeatureExtractor {
        self.extractor.as_ref()
    }

    /// The pinned model weights (shared with every clone of this handle).
    pub fn model(&self) -> &TreeModel {
        self.model.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use featurize::EncodingConfig;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, Predicate};
    use std::sync::Arc;
    use strembed::HashBitmapEncoder;

    fn make_estimator() -> (CostEstimator, Arc<imdb::Database>) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        let est = CostEstimator::new(
            fx,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
            TrainConfig { epochs: 3, batch_size: 8, ..Default::default() },
        );
        (est, db)
    }

    fn executed_plans(db: &imdb::Database, n: usize) -> Vec<PlanNode> {
        let cost = engine::CostModel::default();
        (0..n)
            .map(|i| {
                let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom(
                        "title",
                        "production_year",
                        CompareOp::Gt,
                        Operand::Num((1945 + i * 2) as f64),
                    )),
                });
                let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let mut join = PlanNode::inner(
                    PhysicalOp::HashJoin {
                        condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                    },
                    vec![scan_t, scan_mc],
                );
                engine::execute_plan(db, &mut join, &cost);
                join
            })
            .collect()
    }

    #[test]
    fn fit_then_estimate() {
        let (mut est, db) = make_estimator();
        assert!(!est.is_fitted());
        let plans = executed_plans(&db, 30);
        let stats = est.fit(&plans);
        assert_eq!(stats.len(), 3);
        assert!(est.is_fitted());
        let (cost, card) = est.estimate(&plans[0]);
        assert!(cost >= 1.0 && card >= 1.0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn estimate_before_fit_panics() {
        let (est, db) = make_estimator();
        let plans = executed_plans(&db, 1);
        est.estimate(&plans[0]);
    }

    #[test]
    fn memory_pool_caches_repeated_plans() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 10);
        est.fit(&plans);
        let a = est.estimate(&plans[0]);
        let b = est.estimate(&plans[0]);
        assert_eq!(a, b);
        let (hits, misses) = est.cache_stats();
        assert_eq!(hits, 1);
        assert!(misses >= 1);
    }

    #[test]
    fn serving_handle_is_shareable_and_memoized_matches_batched() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 12);
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let batched = est.estimate_encoded_batch(&encoded);
        let memo = est.estimate_encoded_batch_memo(&encoded);
        assert_eq!(batched, memo, "memoized serving must be bit-identical to the batched path");

        // Four serving threads share one Copy handle and the sharded cache.
        let serving = est.serving();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let refs: Vec<&EncodedPlan> = encoded.iter().collect();
                    assert_eq!(serving.estimate_encoded_batch(&refs), batched);
                });
            }
        });
        assert!(est.subtree_cache().node_hit_rate() > 0.5, "warm serving passes must hit the subtree cache");
        // Re-fitting invalidates the cached states.
        est.fit(&plans);
        assert!(est.subtree_cache().is_empty());
    }

    #[test]
    fn tiered_serving_escalates_top_k_to_full_precision() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 16);
        est.fit(&plans);
        assert!(!est.has_quantized_weights(), "quantized tier is opt-in");
        assert!(est.ensure_quantized());
        assert!(est.has_quantized_weights());
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let refs: Vec<&EncodedPlan> = encoded.iter().collect();
        let serving = est.serving();
        assert!(serving.has_quantized_weights());

        let full = serving.estimate_encoded_batch(&refs);
        let quant = serving.estimate_encoded_batch_quant(&refs);
        let top_k = 4;
        let tiered = serving.estimate_encoded_batch_tiered(&refs, top_k);

        // The top_k candidates by approximate cost carry f32-tier estimates
        // (bit-identical to the full-precision path); the rest keep their
        // quantized estimates.
        let mut order: Vec<usize> = (0..refs.len()).collect();
        order.sort_by(|&a, &b| quant[a].0.partial_cmp(&quant[b].0).expect("finite").then_with(|| a.cmp(&b)));
        let escalated: std::collections::HashSet<usize> = order[..top_k].iter().copied().collect();
        for i in 0..refs.len() {
            if escalated.contains(&i) {
                assert_eq!(tiered[i], full[i], "escalated plan {i} must serve the f32 estimate");
            } else {
                assert_eq!(tiered[i], quant[i], "non-escalated plan {i} must keep its quantized estimate");
            }
        }

        // Degenerate top_k values.
        assert_eq!(serving.estimate_encoded_batch_tiered(&refs, refs.len()), full);
        assert_eq!(serving.estimate_encoded_batch_tiered(&refs, 0), quant);
        // A handle without quantized weights serves full precision.
        let (mut plain, _db2) = make_estimator();
        plain.fit(&plans);
        assert!(!plain.serving().has_quantized_weights());
    }

    #[test]
    fn v3_checkpoint_roundtrips_quantized_weights() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 14);
        est.fit(&plans);
        est.ensure_quantized();
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let refs: Vec<&EncodedPlan> = encoded.iter().collect();
        let want_quant = bits(&est.serving().estimate_encoded_batch_quant(&refs));

        // Default save carries the int8 block; the reloaded estimator serves
        // the quantized tier bit-identically without re-quantizing.
        let path = temp_ckpt("v3-quant");
        est.save_checkpoint(&path).expect("save");
        let (mut warm, _warm_db) = make_estimator();
        warm.load_checkpoint(&path).expect("load");
        assert!(warm.has_quantized_weights(), "v3 load must restore the quantized tier");
        let warm_encoded: Vec<EncodedPlan> = plans.iter().map(|p| warm.encode(p)).collect();
        let warm_refs: Vec<&EncodedPlan> = warm_encoded.iter().collect();
        assert_eq!(bits(&warm.serving().estimate_encoded_batch_quant(&warm_refs)), want_quant);
        let _ = std::fs::remove_file(&path);

        // The full-precision save writes a v3 file without the block.
        let path = temp_ckpt("v3-noquant");
        est.save_checkpoint_full_precision(&path).expect("save full precision");
        let (mut fp, _fp_db) = make_estimator();
        fp.load_checkpoint(&path).expect("load full precision");
        assert!(!fp.has_quantized_weights(), "full-precision v3 file must not carry the int8 tier");
        let fp_encoded: Vec<EncodedPlan> = plans.iter().map(|p| fp.encode(p)).collect();
        assert_eq!(
            bits(&fp.estimate_encoded_batch_memo(&fp_encoded)),
            bits(&est.estimate_encoded_batch_memo(&encoded)),
            "f32 estimates must be unaffected by the missing quant block"
        );
        let _ = std::fs::remove_file(&path);
    }

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("e2e-api-test-{}-{tag}.ckpt", std::process::id()))
    }

    fn bits(estimates: &[(f64, f64)]) -> Vec<(u64, u64)> {
        estimates.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect()
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical_in_fresh_context() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 20);
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let before = est.estimate_encoded_batch_memo(&encoded);

        let path = temp_ckpt("roundtrip");
        est.save_checkpoint(&path).expect("save");

        // A fresh estimator, fresh extractor, fresh database instance — the
        // process-restart posture.  Nothing is fitted before the load.
        let (mut warm, warm_db) = make_estimator();
        assert!(!warm.is_fitted());
        warm.load_checkpoint(&path).expect("load");
        assert!(warm.is_fitted());
        let warm_encoded: Vec<EncodedPlan> = plans.iter().map(|p| warm.encode(p)).collect();
        assert_eq!(
            bits(&warm.estimate_encoded_batch_memo(&warm_encoded)),
            bits(&before),
            "a reloaded checkpoint must serve bit-identical estimates"
        );
        // And per-plan single estimates agree too.
        let single = warm.estimate(&plans[0]);
        assert_eq!(single.0.to_bits(), before[0].0.to_bits());
        assert_eq!(single.1.to_bits(), before[0].1.to_bits());
        drop(warm_db);
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite regression guard: swapping a checkpoint in must invalidate
    /// the subtree-state cache and the representation memory pool exactly
    /// like a re-fit — a stale cached state from the old parameters must
    /// not leak into post-swap estimates.
    #[test]
    fn load_checkpoint_clears_stale_caches() {
        let (mut a, db) = make_estimator();
        let plans = executed_plans(&db, 14);
        a.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| a.encode(p)).collect();

        // A differently-seeded model with visibly different estimates.
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        let mut b = CostEstimator::new(
            fx,
            ModelConfig {
                feature_embed_dim: 8,
                hidden_dim: 12,
                estimation_hidden_dim: 8,
                seed: 4242,
                ..Default::default()
            },
            TrainConfig { epochs: 5, batch_size: 8, seed: 99, ..Default::default() },
        );
        b.fit(&plans);
        let b_estimates = b.estimate_encoded_batch_memo(&encoded);

        // Warm A's subtree cache and memory pool under the OLD parameters.
        let stale_memo = a.estimate_encoded_batch_memo(&encoded);
        let _ = a.estimate(&plans[0]);
        assert!(!a.subtree_cache().is_empty(), "test needs a warm subtree cache");
        assert_ne!(bits(&stale_memo), bits(&b_estimates), "models must differ for the guard to mean anything");

        // Swap B's checkpoint into A.
        let path = temp_ckpt("stale-cache");
        b.save_checkpoint(&path).expect("save");
        a.load_checkpoint(&path).expect("load");
        assert!(a.subtree_cache().is_empty(), "subtree cache must be cleared by a checkpoint swap");
        assert_eq!(a.cache_stats(), (0, 0), "memory-pool stats must be reset by a checkpoint swap");

        // The memoized path after the swap must match B exactly: no column
        // may be served from a pre-swap cached state.
        assert_eq!(bits(&a.estimate_encoded_batch_memo(&encoded)), bits(&b_estimates));
        assert_eq!(a.estimate(&plans[0]).1.to_bits(), b_estimates[0].1.to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn different_string_encoder_of_same_width_is_rejected() {
        use nn::checkpoint::CheckpointError;
        use strembed::EmbeddingEncoder;
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 10);
        est.fit(&plans);
        let path = temp_ckpt("encoder-fingerprint");
        est.save_checkpoint(&path).expect("save");

        // Identical EncodingConfig (same string width), but an embedding
        // encoder instead of the hash bitmap the model was trained under —
        // only the probe fingerprint can tell them apart.
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let emb = EmbeddingEncoder::new([("Din".to_string(), vec![0.25; 8])], 8);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(emb));
        let mut other = CostEstimator::new(
            fx,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
            TrainConfig::default(),
        );
        assert!(matches!(other.load_checkpoint(&path), Err(CheckpointError::VocabMismatch(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_checkpoints_fail_with_typed_errors_not_panics() {
        use nn::checkpoint::CheckpointError;
        let (mut est, db) = make_estimator();

        // Saving before fit is a typed error.
        let path = temp_ckpt("typed-errors");
        assert!(matches!(est.save_checkpoint(&path), Err(CheckpointError::Unsupported(_))));

        let plans = executed_plans(&db, 10);
        est.fit(&plans);
        est.save_checkpoint(&path).expect("save");
        let good = std::fs::read(&path).expect("read back");

        let write_variant = |bytes: &[u8]| {
            let p = temp_ckpt("typed-errors-variant");
            std::fs::write(&p, bytes).expect("write variant");
            p
        };

        // Truncated anywhere — header, vocab, payload.
        for cut in [3, 20, good.len() / 2, good.len() - 3] {
            let p = write_variant(&good[..cut]);
            let before = est.estimate(&plans[0]);
            assert!(
                matches!(est.load_checkpoint(&p), Err(CheckpointError::Truncated { .. })),
                "cut at {cut} must be a typed truncation error"
            );
            // A failed load leaves the estimator serving the old model.
            assert_eq!(est.estimate(&plans[0]), before);
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'Z';
        let p = write_variant(&bad);
        assert!(matches!(est.load_checkpoint(&p), Err(CheckpointError::BadMagic { .. })));
        // Unsupported (future) version.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&1234u32.to_le_bytes());
        let p = write_variant(&future);
        assert!(matches!(est.load_checkpoint(&p), Err(CheckpointError::UnsupportedVersion { found: 1234, .. })));
        // Wrong section kind (an MSCN checkpoint fed to the tree loader).
        let mut wrong_kind = good.clone();
        wrong_kind[12] = nn::checkpoint::KIND_MSCN;
        let p = write_variant(&wrong_kind);
        assert!(matches!(est.load_checkpoint(&p), Err(CheckpointError::WrongKind { .. })));
        // Vocabulary drift: an estimator with a different sample-bitmap
        // width must refuse the checkpoint.
        let cfg16 = EncodingConfig::from_database(&db, 8, 16);
        let fx16 = FeatureExtractor::new(db.clone(), cfg16, Arc::new(HashBitmapEncoder::new(8)));
        let mut other = CostEstimator::new(
            fx16,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
            TrainConfig::default(),
        );
        assert!(matches!(other.load_checkpoint(&path), Err(CheckpointError::VocabMismatch(_))));
        // Nonexistent path.
        assert!(matches!(est.load_checkpoint(temp_ckpt("does-not-exist")), Err(CheckpointError::Io(_))));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(temp_ckpt("typed-errors-variant"));
    }

    #[test]
    fn batched_api_matches_single() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 8);
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let batched = est.estimate_encoded_batch(&encoded);
        for (enc, (bc, bk)) in encoded.iter().zip(batched.iter()) {
            let (c, k) = est.estimate_encoded(enc);
            assert!((c.ln() - bc.ln()).abs() < 1e-3);
            assert!((k.ln() - bk.ln()).abs() < 1e-3);
        }
    }

    mod resume_property {
        //! Satellite guard: `fit` for N epochs must be **bit-identical** to
        //! `fit` for k epochs → `save_checkpoint` → `resume_from_checkpoint`
        //! into a fresh estimator → `fit_resumed` for the remaining N−k —
        //! same estimates to the bit, and the resumed epoch curve equal to
        //! the uninterrupted run's tail.  All (N, k) combinations in range
        //! are verified once; repeated proptest cases hit the memo.

        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;
        use std::sync::{Mutex, OnceLock};

        struct Fixture {
            db: Arc<imdb::Database>,
            plans: Vec<PlanNode>,
            verified: Mutex<HashSet<(usize, usize)>>,
        }

        fn fixture() -> &'static Fixture {
            static FIX: OnceLock<Fixture> = OnceLock::new();
            FIX.get_or_init(|| {
                let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
                let plans = executed_plans(&db, 24);
                Fixture { db, plans, verified: Mutex::new(HashSet::new()) }
            })
        }

        fn estimator_with_epochs(db: &Arc<imdb::Database>, epochs: usize) -> CostEstimator {
            let cfg = EncodingConfig::from_database(db, 8, 32);
            let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
            CostEstimator::new(
                fx,
                ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
                TrainConfig { epochs, batch_size: 8, learning_rate: 0.005, ..Default::default() },
            )
        }

        fn verify_combo(fixture: &Fixture, n: usize, k: usize) {
            let plans = &fixture.plans;
            // The uninterrupted reference run: N epochs in one sitting.
            let mut uninterrupted = estimator_with_epochs(&fixture.db, n);
            let full_stats = uninterrupted.fit(plans);
            let encoded: Vec<EncodedPlan> = plans.iter().map(|p| uninterrupted.encode(p)).collect();
            let want = bits(&uninterrupted.estimate_encoded_batch_memo(&encoded));

            // The interrupted run: k epochs, checkpoint, process "restart".
            let mut interrupted = estimator_with_epochs(&fixture.db, k);
            interrupted.fit(plans);
            assert!(interrupted.is_resumable());
            let path = std::env::temp_dir().join(format!("e2e-resume-{}-{n}-{k}.ckpt", std::process::id()));
            interrupted.save_checkpoint(&path).expect("save mid-training checkpoint");
            drop(interrupted);

            let mut resumed = estimator_with_epochs(&fixture.db, n);
            resumed.resume_from_checkpoint(&path).expect("resume");
            let _ = std::fs::remove_file(&path);
            assert!(resumed.is_resumable());
            let tail_stats = resumed.fit_resumed(plans).expect("resume");

            assert_eq!(tail_stats.len(), full_stats.len() - k, "resume must run exactly the remaining epochs");
            for (tail, full) in tail_stats.iter().zip(&full_stats[k..]) {
                assert_eq!(tail.epoch, full.epoch, "resumed epoch numbering must continue");
                assert_eq!(
                    tail.train_loss.to_bits(),
                    full.train_loss.to_bits(),
                    "epoch {} loss diverged after resume (N={n}, k={k})",
                    full.epoch
                );
            }
            assert_eq!(
                bits(&resumed.estimate_encoded_batch_memo(&encoded)),
                want,
                "resumed training must be bit-identical to uninterrupted (N={n}, k={k})"
            );
        }

        proptest! {
            #[test]
            fn resumed_training_is_bit_identical_to_uninterrupted(n in 2usize..5, k_sel in 0usize..8) {
                let fixture = fixture();
                let k = 1 + k_sel % (n - 1);
                if fixture.verified.lock().expect("memo").insert((n, k)) {
                    verify_combo(fixture, n, k);
                }
            }
        }
    }

    mod checkpoint_property {
        //! Satellite guard: for randomized planner output (generated queries
        //! expanded into DP candidate join orders), a `save_checkpoint` →
        //! `load_checkpoint` round trip into a fresh process-like context
        //! (new database instance, new extractor, never-fitted estimator)
        //! must yield **bit-identical** `estimate_encoded_batch_memo`
        //! results — across cold and warm caches of the reloaded model.

        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;
        use workloads::{generate_enumeration_workload, EnumerationConfig};

        struct Fixture {
            db: Arc<imdb::Database>,
            original: CostEstimator,
            reloaded: CostEstimator,
        }

        fn fixture() -> &'static Fixture {
            static FIX: OnceLock<Fixture> = OnceLock::new();
            FIX.get_or_init(|| {
                let (mut original, db) = make_estimator();
                let plans = executed_plans(&db, 24);
                original.fit(&plans);
                let path = std::env::temp_dir().join(format!("e2e-ckpt-prop-{}.ckpt", std::process::id()));
                original.save_checkpoint(&path).expect("save checkpoint");
                // Fresh context: regenerate the database and the extractor
                // from scratch rather than sharing the fitted instance's.
                let (mut reloaded, fresh_db) = make_estimator();
                reloaded.load_checkpoint(&path).expect("load checkpoint");
                let _ = std::fs::remove_file(&path);
                drop(db);
                Fixture { db: fresh_db, original, reloaded }
            })
        }

        proptest! {
            #[test]
            fn save_load_roundtrip_bit_identical_on_randomized_planner_output(seed in 0u64..1_000_000) {
                let fixture = fixture();
                let workload = generate_enumeration_workload(
                    &fixture.db,
                    EnumerationConfig {
                        num_queries: 1,
                        min_joins: 1,
                        max_joins: 3,
                        max_candidates_per_query: 10,
                        seed,
                    },
                );
                prop_assert!(!workload.is_empty(), "no enumerable query for seed {seed}");
                let encoded: Vec<EncodedPlan> =
                    workload[0].candidates.iter().map(|c| fixture.original.encode(c)).collect();
                let re_encoded: Vec<EncodedPlan> =
                    workload[0].candidates.iter().map(|c| fixture.reloaded.encode(c)).collect();
                prop_assert_eq!(&encoded, &re_encoded);

                let want = fixture.original.estimate_encoded_batch_memo(&encoded);
                let cold = fixture.reloaded.estimate_encoded_batch_memo(&re_encoded);
                let warm = fixture.reloaded.estimate_encoded_batch_memo(&re_encoded);
                let bits = |v: &[(f64, f64)]| {
                    v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>()
                };
                prop_assert_eq!(bits(&want), bits(&cold));
                prop_assert_eq!(bits(&want), bits(&warm));
            }
        }
    }
}
