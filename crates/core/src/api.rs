//! The public end-to-end estimator API.
//!
//! [`CostEstimator`] wires everything together the way the paper's Figure 2
//! does: a feature extractor (with a pluggable string encoder), the tree
//! model, the trainer and the representation memory pool.  Downstream users
//! hand it annotated training plans once, then ask it for `(cost,
//! cardinality)` of new physical plans.

use crate::batch::{estimate_batch, estimate_batch_memo};
use crate::memory::{RepresentationMemoryPool, SubtreeStateCache};
use crate::model::{ModelConfig, TreeModel};
use crate::trainer::{EpochStats, TargetNormalization, TrainConfig, Trainer};
use featurize::{EncodedPlan, FeatureExtractor};
use query::PlanNode;

/// An end-to-end learned cost and cardinality estimator.
pub struct CostEstimator {
    extractor: FeatureExtractor,
    trainer: Option<Trainer>,
    model_config: ModelConfig,
    train_config: TrainConfig,
    pool: RepresentationMemoryPool,
    subtree_cache: SubtreeStateCache,
}

impl CostEstimator {
    /// Create an estimator with the given feature extractor and configuration.
    pub fn new(extractor: FeatureExtractor, model_config: ModelConfig, train_config: TrainConfig) -> Self {
        CostEstimator {
            extractor,
            trainer: None,
            model_config,
            train_config,
            pool: RepresentationMemoryPool::new(),
            subtree_cache: SubtreeStateCache::new(),
        }
    }

    /// The feature extractor (exposed for encoding plans externally).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Encode an annotated physical plan into the model's input format.
    pub fn encode(&self, plan: &PlanNode) -> EncodedPlan {
        self.extractor.encode_plan(plan)
    }

    /// Train on already-encoded plans; returns per-epoch statistics.
    pub fn fit_encoded(&mut self, samples: &[EncodedPlan]) -> Vec<EpochStats> {
        let model = TreeModel::new(self.extractor.config(), self.model_config);
        let mut trainer = Trainer::new(model, samples, self.train_config);
        let stats = trainer.train(samples);
        self.trainer = Some(trainer);
        // Cached estimates and subtree states belong to the previous model.
        self.pool.clear();
        self.subtree_cache.clear();
        stats
    }

    /// Train on executed (annotated) physical plans.
    pub fn fit(&mut self, plans: &[PlanNode]) -> Vec<EpochStats> {
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| self.encode(p)).collect();
        self.fit_encoded(&encoded)
    }

    /// True once the model has been trained.
    pub fn is_fitted(&self) -> bool {
        self.trainer.is_some()
    }

    /// Estimate `(cost, cardinality)` for a physical plan.
    ///
    /// Results for previously-seen plan signatures are served from the
    /// representation memory pool.
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn estimate(&self, plan: &PlanNode) -> (f64, f64) {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate called before fit");
        let signature = plan.signature_hash();
        if let Some(hit) = self.pool.get(signature) {
            return hit;
        }
        let encoded = self.encode(plan);
        let result = trainer.estimate(&encoded);
        self.pool.insert(signature, result.0, result.1);
        result
    }

    /// Estimate `(cost, cardinality)` for an already-encoded plan.
    pub fn estimate_encoded(&self, plan: &EncodedPlan) -> (f64, f64) {
        self.trainer.as_ref().expect("CostEstimator::estimate_encoded called before fit").estimate(plan)
    }

    /// Level-batched estimation of many encoded plans at once (Table 12).
    pub fn estimate_encoded_batch(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_batch called before fit");
        estimate_batch(&trainer.model, &trainer.model.params, &trainer.normalization, plans)
    }

    /// Memoized batched estimation against this estimator's subtree-state
    /// cache: candidate plans sharing sub-plans (a DP enumeration) embed
    /// each distinct subtree once.  Results are bit-identical to
    /// [`CostEstimator::estimate_encoded_batch`].
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn estimate_encoded_batch_memo(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let refs: Vec<&EncodedPlan> = plans.iter().collect();
        self.serving().estimate_encoded_batch(&refs)
    }

    /// A shareable serving handle over the fitted model and the subtree
    /// cache.  The handle is `Copy + Send + Sync`, so concurrent serving
    /// threads each take one and score candidate batches in parallel —
    /// tapes are per-thread and the cache is sharded, so nothing serializes
    /// on a global lock.
    ///
    /// # Panics
    /// Panics if the estimator has not been fitted.
    pub fn serving(&self) -> ServingEstimator<'_> {
        let trainer = self.trainer.as_ref().expect("CostEstimator::serving called before fit");
        ServingEstimator { model: &trainer.model, normalization: &trainer.normalization, cache: &self.subtree_cache }
    }

    /// The subtree-state cache backing the memoized serving path.
    pub fn subtree_cache(&self) -> &SubtreeStateCache {
        &self.subtree_cache
    }

    /// Pre-optimization one-by-one estimation (per-node forward on a
    /// seed-compat tape) — the naive baseline of the Table-12 bench.
    pub fn estimate_encoded_reference(&self, plan: &EncodedPlan) -> (f64, f64) {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_reference called before fit");
        crate::batch::reference::estimate_per_node_reference(
            &trainer.model,
            &trainer.model.params,
            &trainer.normalization,
            plan,
        )
    }

    /// Pre-optimization batched estimation (the reference implementation in
    /// `batch::reference`); the Table-12 efficiency bench reports the
    /// optimized path's speed-up against this baseline.
    pub fn estimate_encoded_batch_reference(&self, plans: &[EncodedPlan]) -> Vec<(f64, f64)> {
        let trainer = self.trainer.as_ref().expect("CostEstimator::estimate_encoded_batch_reference called before fit");
        crate::batch::reference::estimate_batch_reference(
            &trainer.model,
            &trainer.model.params,
            &trainer.normalization,
            plans,
        )
    }

    /// Cache statistics of the representation memory pool `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }
}

/// A borrowed, thread-shareable view of a fitted estimator for
/// optimizer-in-the-loop serving: the tree model, the target normalization
/// and the shared subtree-state cache, with nothing else attached (in
/// particular no feature extractor, whose string encoder need not be
/// thread-safe).  Obtain one per worker thread via [`CostEstimator::serving`]
/// — the handle is `Copy`, and all its referents are immutable or sharded.
#[derive(Clone, Copy)]
pub struct ServingEstimator<'a> {
    model: &'a TreeModel,
    normalization: &'a TargetNormalization,
    cache: &'a SubtreeStateCache,
}

impl<'a> ServingEstimator<'a> {
    /// Score a batch of candidate plans with subtree memoization
    /// ([`crate::batch::estimate_batch_memo`]); `(cost, cardinality)` per
    /// plan, in input order.
    pub fn estimate_encoded_batch(&self, plans: &[&EncodedPlan]) -> Vec<(f64, f64)> {
        estimate_batch_memo(self.model, &self.model.params, self.normalization, plans, self.cache)
    }

    /// The shared subtree-state cache (for hit-rate reporting).
    pub fn cache(&self) -> &'a SubtreeStateCache {
        self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use featurize::EncodingConfig;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, Predicate};
    use std::sync::Arc;
    use strembed::HashBitmapEncoder;

    fn make_estimator() -> (CostEstimator, Arc<imdb::Database>) {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let cfg = EncodingConfig::from_database(&db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        let est = CostEstimator::new(
            fx,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, ..Default::default() },
            TrainConfig { epochs: 3, batch_size: 8, ..Default::default() },
        );
        (est, db)
    }

    fn executed_plans(db: &imdb::Database, n: usize) -> Vec<PlanNode> {
        let cost = engine::CostModel::default();
        (0..n)
            .map(|i| {
                let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom(
                        "title",
                        "production_year",
                        CompareOp::Gt,
                        Operand::Num((1945 + i * 2) as f64),
                    )),
                });
                let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let mut join = PlanNode::inner(
                    PhysicalOp::HashJoin {
                        condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                    },
                    vec![scan_t, scan_mc],
                );
                engine::execute_plan(db, &mut join, &cost);
                join
            })
            .collect()
    }

    #[test]
    fn fit_then_estimate() {
        let (mut est, db) = make_estimator();
        assert!(!est.is_fitted());
        let plans = executed_plans(&db, 30);
        let stats = est.fit(&plans);
        assert_eq!(stats.len(), 3);
        assert!(est.is_fitted());
        let (cost, card) = est.estimate(&plans[0]);
        assert!(cost >= 1.0 && card >= 1.0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn estimate_before_fit_panics() {
        let (est, db) = make_estimator();
        let plans = executed_plans(&db, 1);
        est.estimate(&plans[0]);
    }

    #[test]
    fn memory_pool_caches_repeated_plans() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 10);
        est.fit(&plans);
        let a = est.estimate(&plans[0]);
        let b = est.estimate(&plans[0]);
        assert_eq!(a, b);
        let (hits, misses) = est.cache_stats();
        assert_eq!(hits, 1);
        assert!(misses >= 1);
    }

    #[test]
    fn serving_handle_is_shareable_and_memoized_matches_batched() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 12);
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let batched = est.estimate_encoded_batch(&encoded);
        let memo = est.estimate_encoded_batch_memo(&encoded);
        assert_eq!(batched, memo, "memoized serving must be bit-identical to the batched path");

        // Four serving threads share one Copy handle and the sharded cache.
        let serving = est.serving();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let refs: Vec<&EncodedPlan> = encoded.iter().collect();
                    assert_eq!(serving.estimate_encoded_batch(&refs), batched);
                });
            }
        });
        assert!(est.subtree_cache().node_hit_rate() > 0.5, "warm serving passes must hit the subtree cache");
        // Re-fitting invalidates the cached states.
        est.fit(&plans);
        assert!(est.subtree_cache().is_empty());
    }

    #[test]
    fn batched_api_matches_single() {
        let (mut est, db) = make_estimator();
        let plans = executed_plans(&db, 8);
        est.fit(&plans);
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| est.encode(p)).collect();
        let batched = est.estimate_encoded_batch(&encoded);
        for (enc, (bc, bk)) in encoded.iter().zip(batched.iter()) {
            let (c, k) = est.estimate_encoded(enc);
            assert!((c.ln() - bc.ln()).abs() < 1e-3);
            assert!((k.ln() - bk.ln()).abs() < 1e-3);
        }
    }
}
