//! Serving-side caches (Section 3, online workflow).
//!
//! When the optimizer's plan enumerator repeatedly asks for the cost of
//! candidate plans sharing sub-plans, the estimator memoizes two things,
//! both keyed by the allocation-free 64-bit structural signature of the
//! sub-plan ([`query::PlanNode::signature_hash`]):
//!
//! * [`RepresentationMemoryPool`] — final `(cost, cardinality)` estimates of
//!   whole plans already seen (the paper's memory pool);
//! * [`SubtreeStateCache`] — the representation cell's `(G, R)` state
//!   vectors of every embedded sub-plan, so a new candidate that shares a
//!   subtree re-enters the forward pass at the fringe instead of re-running
//!   the cell over the whole subtree (`batch::estimate_batch_memo`).
//!
//! Both sit on [`ShardedCache`]: middle bits of the key pick one of
//! [`NUM_SHARDS`] independently-locked shards, so concurrent estimator
//! threads don't serialize on one lock, and hit/miss counters are per-shard
//! relaxed atomics — statistics never take a lock on the hot path (the old
//! implementation kept them in two separate `RwLock<u64>`s, two extra lock
//! round-trips per lookup).  Keys are pre-mixed by the signature hasher's
//! splitmix64 finalizer, so the shard maps use an identity hasher instead of
//! re-hashing every `u64` through SipHash.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of shards (power of two; selected by middle bits of the key).
pub const NUM_SHARDS: usize = 16;

/// Default per-shard entry cap (~256k entries across all shards).
const DEFAULT_MAX_PER_SHARD: usize = 16 * 1024;

/// Pass-through hasher for keys that are already well-mixed 64-bit hashes.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only for u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// One cached value plus its insertion sequence number (shard-local,
/// monotonically increasing) — the recency the eviction policy keeps.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    seq: u64,
}

type SigMap<V> = HashMap<u64, Entry<V>, BuildHasherDefault<IdentityHasher>>;

#[derive(Debug)]
struct ShardInner<V> {
    map: SigMap<V>,
    next_seq: u64,
}

#[derive(Debug)]
struct Shard<V> {
    inner: RwLock<ShardInner<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            inner: RwLock::new(ShardInner { map: SigMap::default(), next_seq: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// A concurrent map from 64-bit sub-plan signatures to cached values,
/// sharded by middle bits of the key, with per-shard atomic hit/miss
/// counters.
///
/// Bounded: when an insert would push a shard past its per-shard cap, the
/// **oldest-inserted half** of the shard is dropped and the
/// most-recently-inserted half retained (the caches are advisory — evicting
/// costs a re-computation, never correctness).  An earlier version dropped
/// the whole shard, which discarded the very states the current enumeration
/// had just memoized and collapsed the hit rate exactly when the cache was
/// under pressure; keeping the recent half preserves the working set while
/// still bounding memory, with no per-lookup LRU bookkeeping on the hot
/// path (recency is stamped on insert only).
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Box<[Shard<V>; NUM_SHARDS]>,
    max_per_shard: usize,
}

impl<V: Clone> ShardedCache<V> {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::with_shard_capacity(DEFAULT_MAX_PER_SHARD)
    }

    /// An empty cache bounded to `max_per_shard` entries per shard.
    pub fn with_shard_capacity(max_per_shard: usize) -> Self {
        ShardedCache {
            shards: Box::new(std::array::from_fn(|_| Shard::default())),
            max_per_shard: max_per_shard.max(1),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Shard<V> {
        // Middle bits: the identity-hashed hashbrown map derives its bucket
        // index from the low bits and its 7-bit SIMD probe tag from the top
        // bits; shard selection must avoid both ranges, or every key in a
        // shard would share part of its tag/bucket entropy.
        &self.shards[((key >> 32) as usize) & (NUM_SHARDS - 1)]
    }

    /// Look up a signature, counting a hit or a miss in the shard's atomics.
    pub fn get(&self, key: u64) -> Option<V> {
        let shard = self.shard(key);
        let found = shard.inner.read().map.get(&key).map(|e| e.value.clone());
        // Relaxed atomics: statistics never acquire a lock of their own
        // (and need none — approximate global ordering is fine for stats).
        if found.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Store a value under a signature (last writer wins on a race; both
    /// writers computed the value from the same sub-plan, so the values are
    /// interchangeable).  Re-inserting an existing key refreshes its
    /// recency.  When the shard is full, the oldest-inserted half is
    /// evicted first.
    pub fn insert(&self, key: u64, value: V) {
        let shard = self.shard(key);
        let mut inner = shard.inner.write();
        if inner.map.len() >= self.max_per_shard && !inner.map.contains_key(&key) {
            // Evict the oldest-inserted entries, keeping the newest
            // `max_per_shard / 2` — sequence numbers are unique, so the
            // cutoff retains exactly that many.
            let keep = self.max_per_shard / 2;
            if keep == 0 {
                inner.map.clear();
            } else {
                let mut seqs: Vec<u64> = inner.map.values().map(|e| e.seq).collect();
                let cut_idx = seqs.len() - keep;
                let (_, &mut cutoff, _) = seqs.select_nth_unstable(cut_idx);
                inner.map.retain(|_, e| e.seq >= cutoff);
            }
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.map.insert(key, Entry { value, seq });
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.inner.read().map.is_empty())
    }

    /// `(hits, misses)` lookup counters summed over all shards.
    pub fn stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for s in self.shards.iter() {
            hits += s.hits.load(Ordering::Relaxed);
            misses += s.misses.load(Ordering::Relaxed);
        }
        (hits, misses)
    }

    /// Drop all cached entries and reset the counters.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            let mut inner = s.inner.write();
            inner.map.clear();
            inner.next_seq = 0;
            s.hits.store(0, Ordering::Relaxed);
            s.misses.store(0, Ordering::Relaxed);
        }
    }
}

impl<V: Clone> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A concurrent cache from plan signatures to `(cost, cardinality)`
/// estimates — the paper's representation memory pool, now keyed by 64-bit
/// hashed signatures instead of owned `String`s.
#[derive(Debug, Default)]
pub struct RepresentationMemoryPool {
    cache: ShardedCache<(f64, f64)>,
}

impl RepresentationMemoryPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a signature, counting a hit or a miss.
    pub fn get(&self, signature: u64) -> Option<(f64, f64)> {
        self.cache.get(signature)
    }

    /// Store an estimate for a signature.
    pub fn insert(&self, signature: u64, cost: f64, cardinality: f64) {
        self.cache.insert(signature, (cost, cardinality));
    }

    /// Number of cached sub-plans.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Drop all cached entries and counters.
    pub fn clear(&self) {
        self.cache.clear()
    }
}

/// The memoized representation state of one embedded sub-plan: the `G` and
/// `R` channel vectors of the representation cell at the subtree root.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeState {
    pub g: Vec<f32>,
    pub r: Vec<f32>,
}

/// Cache of subtree representation states for optimizer-in-the-loop serving.
///
/// Shared by all estimator threads; a hit lets `forward_batch_memo` inject
/// the stored `(G, R)` columns as tape inputs instead of re-embedding the
/// subtree.  States are only meaningful for the model/extractor pair that
/// produced them — the cache is owned by one `CostEstimator` and cleared on
/// re-fit, never shared across models.
///
/// Besides the lookup counters of the underlying [`ShardedCache`], the cache
/// tracks *node-level* serving counters: of all plan nodes submitted for
/// scoring, how many were served from a memoized subtree (or deduplicated
/// within the batch) versus embedded fresh.  That is the "subtree-cache hit
/// rate" the serving bench reports — lookups stop at the subtree fringe, so
/// lookup counts alone understate how much work memoization saves.
#[derive(Debug, Default)]
pub struct SubtreeStateCache {
    cache: ShardedCache<Arc<SubtreeState>>,
    nodes_seen: AtomicU64,
    nodes_computed: AtomicU64,
}

impl SubtreeStateCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a subtree state.
    pub fn get(&self, signature: u64) -> Option<Arc<SubtreeState>> {
        self.cache.get(signature)
    }

    /// Store a subtree state.
    pub fn insert(&self, signature: u64, state: Arc<SubtreeState>) {
        self.cache.insert(signature, state);
    }

    /// Number of memoized subtrees.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// `(hits, misses)` lookup counters.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Record one memoized forward pass's node accounting: `seen` plan nodes
    /// submitted, of which `computed` were embedded fresh.
    pub fn record_nodes(&self, seen: u64, computed: u64) {
        self.nodes_seen.fetch_add(seen, Ordering::Relaxed);
        self.nodes_computed.fetch_add(computed, Ordering::Relaxed);
    }

    /// `(nodes_seen, nodes_computed)` across all memoized forward passes.
    pub fn node_stats(&self) -> (u64, u64) {
        (self.nodes_seen.load(Ordering::Relaxed), self.nodes_computed.load(Ordering::Relaxed))
    }

    /// Fraction of submitted plan nodes served without a fresh embedding
    /// (`1 - computed/seen`); 0.0 before any memoized pass ran.
    pub fn node_hit_rate(&self) -> f64 {
        let (seen, computed) = self.node_stats();
        if seen == 0 {
            return 0.0;
        }
        1.0 - computed as f64 / seen as f64
    }

    /// Drop all memoized states and reset every counter.
    pub fn clear(&self) {
        self.cache.clear();
        self.nodes_seen.store(0, Ordering::Relaxed);
        self.nodes_computed.store(0, Ordering::Relaxed);
    }
}

/// Per-shard entry bound of the [`EncodedSubtreeCache`]: encoded plans are
/// 1–2 orders of magnitude larger than subtree states (they carry the full
/// feature slabs of a subtree), so the bound is correspondingly tighter
/// than [`DEFAULT_MAX_PER_SHARD`].
const ENCODED_MAX_PER_SHARD: usize = 2 * 1024;

/// Cache of memoized subtree *encodings* for the featurize front of the
/// serving path — the encode-side sibling of [`SubtreeStateCache`].
///
/// Keys are the memo keys of `FeatureExtractor::encode_plan_cached`
/// (structural signature mixed with the subtree's annotations), values the
/// shared `Arc<EncodedPlan>`s; a hit returns the identical bits a fresh
/// encode would produce, so the cache is purely a throughput device.
/// Entries depend on the extractor's dictionaries (not on model weights),
/// but the cache is owned by one `CostEstimator` and swapped alongside the
/// subtree-state cache on every refit/checkpoint-load — cheap, and it keeps
/// one invalidation rule for every serving cache.
#[derive(Debug)]
pub struct EncodedSubtreeCache {
    cache: ShardedCache<Arc<featurize::EncodedPlan>>,
}

impl EncodedSubtreeCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        EncodedSubtreeCache { cache: ShardedCache::with_shard_capacity(ENCODED_MAX_PER_SHARD) }
    }

    /// An empty cache bounded to `max_per_shard` entries per shard.
    pub fn with_shard_capacity(max_per_shard: usize) -> Self {
        EncodedSubtreeCache { cache: ShardedCache::with_shard_capacity(max_per_shard) }
    }

    /// Number of memoized subtree encodings.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// `(hits, misses)` lookup counters.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Fraction of lookups served from the cache (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.stats();
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Drop every memoized encoding and reset the counters.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

impl Default for EncodedSubtreeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl featurize::EncodedPlanCache for EncodedSubtreeCache {
    fn get(&self, key: u64) -> Option<Arc<featurize::EncodedPlan>> {
        self.cache.get(key)
    }

    fn insert(&self, key: u64, value: Arc<featurize::EncodedPlan>) {
        self.cache.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let pool = RepresentationMemoryPool::new();
        assert!(pool.get(0xa).is_none());
        pool.insert(0xa, 10.0, 5.0);
        assert_eq!(pool.get(0xa), Some((10.0, 5.0)));
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
    }

    #[test]
    fn hit_miss_counters() {
        let pool = RepresentationMemoryPool::new();
        pool.insert(1, 1.0, 1.0);
        pool.get(1);
        pool.get(2);
        pool.get(1);
        assert_eq!(pool.stats(), (2, 1));
        pool.clear();
        assert_eq!(pool.stats(), (0, 0));
        assert!(pool.is_empty());
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache: ShardedCache<u32> = ShardedCache::new();
        let mut used = std::collections::HashSet::new();
        for i in 0..256u64 {
            // Simulate signature keys: well-mixed via the same finalizer.
            let mut h = query::SigHasher::new();
            h.write_u64(i);
            let key = h.finish();
            cache.insert(key, i as u32);
            used.insert((key >> 32) & (NUM_SHARDS as u64 - 1));
        }
        assert_eq!(cache.len(), 256);
        assert!(used.len() >= NUM_SHARDS / 2, "keys collapsed onto {} shards", used.len());
    }

    #[test]
    fn capacity_bound_evicts_instead_of_growing() {
        let cache: ShardedCache<u64> = ShardedCache::with_shard_capacity(8);
        for i in 0..10_000u64 {
            let mut h = query::SigHasher::new();
            h.write_u64(i);
            cache.insert(h.finish(), i);
        }
        assert!(cache.len() <= 8 * NUM_SHARDS, "cache grew past its bound: {}", cache.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn eviction_retains_the_most_recently_inserted_half() {
        // One shard's worth of keys (same middle bits), tiny capacity.
        let cache: ShardedCache<u64> = ShardedCache::with_shard_capacity(8);
        let key = |i: u64| i; // middle bits zero for i < 2^32: all in shard 0
        for i in 0..8 {
            cache.insert(key(i), i);
        }
        assert_eq!(cache.len(), 8);
        // The 9th insert evicts the OLDEST half (0..4), never the newest.
        cache.insert(key(8), 8);
        assert_eq!(cache.len(), 5);
        for old in 0..4 {
            assert!(cache.get(key(old)).is_none(), "oldest entry {old} must be evicted");
        }
        for recent in 4..9 {
            assert_eq!(cache.get(key(recent)), Some(recent), "recent entry {recent} must survive eviction");
        }
        // Re-inserting refreshes recency: touch 4 so it outlives 5.
        cache.insert(key(4), 44);
        for i in 9..12 {
            cache.insert(key(i), i);
        }
        cache.insert(key(12), 12); // triggers the next eviction at len 8
        assert_eq!(cache.get(key(4)), Some(44), "re-inserted key must be treated as recent");
        assert!(cache.get(key(5)).is_none(), "stale key must go first");
    }

    /// Satellite regression: hit rate under capacity pressure.  The serving
    /// access pattern is phased — an enumeration memoizes a handful of new
    /// subtree states, and the very next candidates look those states up
    /// again.  The old policy dropped the **whole shard** on overflow, so an
    /// overflow landing mid-phase discarded states inserted moments earlier
    /// and the following lookups re-missed them; retaining the
    /// most-recently-inserted half guarantees the current phase's states
    /// always survive the eviction that their own inserts trigger.
    #[test]
    fn hit_rate_under_pressure_keeps_current_phase_resident() {
        let cache: ShardedCache<u64> = ShardedCache::with_shard_capacity(16);
        let mut lookups = 0u64;
        // Phase width 5 does not divide the capacity, so overflows land at
        // every offset within a phase over the course of the run.
        for phase in 0..200u64 {
            let keys: Vec<u64> = (0..5).map(|i| phase * 5 + i).collect();
            for &k in &keys {
                cache.insert(k, k);
            }
            for &k in &keys {
                assert!(cache.get(k).is_some(), "state inserted this phase was evicted by its own phase's overflow");
                lookups += 1;
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (lookups, 0), "every in-phase lookup must hit under pressure");
        // And the cache stayed bounded the whole time.
        assert!(cache.len() <= 16);
    }

    /// Satellite guard: N threads hammer one pool with interleaved inserts
    /// and lookups; afterwards no update may be lost (every inserted key
    /// present) and the stats must balance exactly (hits + misses == total
    /// lookups), which the old two-`RwLock<u64>` counters guaranteed only by
    /// luck of lock interleaving and atomics must preserve under real
    /// contention.
    #[test]
    fn sharded_pool_multithread_stress_no_lost_updates() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let pool = std::sync::Arc::new(RepresentationMemoryPool::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let own = (t << 32) | i;
                        pool.insert(own, i as f64, t as f64);
                        // One guaranteed hit (own key, just inserted)...
                        assert_eq!(pool.get(own), Some((i as f64, t as f64)), "lost update on {own:#x}");
                        // ...and one lookup of a key no thread ever inserts.
                        assert!(pool.get(u64::MAX - own).is_none());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread");
        }
        assert_eq!(pool.len() as u64, THREADS * PER_THREAD);
        let (hits, misses) = pool.stats();
        assert_eq!(hits, THREADS * PER_THREAD, "stable hit count");
        assert_eq!(misses, THREADS * PER_THREAD, "stable miss count");
        // Every key is still present with the value its writer stored.
        for t in 0..THREADS {
            for i in (0..PER_THREAD).step_by(97) {
                assert_eq!(pool.get((t << 32) | i), Some((i as f64, t as f64)));
            }
        }
    }

    #[test]
    fn subtree_cache_state_roundtrip_and_node_stats() {
        let cache = SubtreeStateCache::new();
        let state = Arc::new(SubtreeState { g: vec![1.0, 2.0], r: vec![3.0, 4.0] });
        assert!(cache.get(7).is_none());
        cache.insert(7, Arc::clone(&state));
        assert_eq!(cache.get(7).as_deref(), Some(&*state));
        assert_eq!(cache.len(), 1);

        assert_eq!(cache.node_hit_rate(), 0.0);
        cache.record_nodes(10, 4);
        cache.record_nodes(10, 1);
        assert_eq!(cache.node_stats(), (20, 5));
        assert!((cache.node_hit_rate() - 0.75).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.node_stats(), (0, 0));
        assert_eq!(cache.stats(), (0, 0));
    }
}
