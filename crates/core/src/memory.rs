//! Representation memory pool (Section 3, online workflow).
//!
//! When the optimizer repeatedly asks for the cost of plans sharing
//! sub-plans, the estimator caches the estimates of already-seen sub-plans
//! keyed by their structural signature and serves repeats without another
//! forward pass.

use parking_lot::RwLock;
use std::collections::HashMap;

/// A concurrent cache from plan signatures to `(cost, cardinality)` estimates.
#[derive(Debug, Default)]
pub struct RepresentationMemoryPool {
    entries: RwLock<HashMap<String, (f64, f64)>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl RepresentationMemoryPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a signature, counting a hit or a miss.
    pub fn get(&self, signature: &str) -> Option<(f64, f64)> {
        let found = self.entries.read().get(signature).copied();
        if found.is_some() {
            *self.hits.write() += 1;
        } else {
            *self.misses.write() += 1;
        }
        found
    }

    /// Store an estimate for a signature.
    pub fn insert(&self, signature: &str, cost: f64, cardinality: f64) {
        self.entries.write().insert(signature.to_string(), (cost, cardinality));
    }

    /// Number of cached sub-plans.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Drop all cached entries and counters.
    pub fn clear(&self) {
        self.entries.write().clear();
        *self.hits.write() = 0;
        *self.misses.write() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let pool = RepresentationMemoryPool::new();
        assert!(pool.get("sig-a").is_none());
        pool.insert("sig-a", 10.0, 5.0);
        assert_eq!(pool.get("sig-a"), Some((10.0, 5.0)));
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
    }

    #[test]
    fn hit_miss_counters() {
        let pool = RepresentationMemoryPool::new();
        pool.insert("x", 1.0, 1.0);
        pool.get("x");
        pool.get("y");
        pool.get("x");
        assert_eq!(pool.stats(), (2, 1));
        pool.clear();
        assert_eq!(pool.stats(), (0, 0));
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let pool = Arc::new(RepresentationMemoryPool::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        pool.insert(&format!("sig-{t}-{i}"), i as f64, t as f64);
                        pool.get(&format!("sig-{t}-{i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(pool.len(), 800);
    }
}
