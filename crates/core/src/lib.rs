//! The paper's primary contribution: the end-to-end tree-structured learned
//! cost and cardinality estimator.
//!
//! * [`model`] — embedding layer (with min/max predicate-tree pooling or
//!   tree-LSTM predicates), the tree-LSTM / tree-NN representation layer and
//!   the multitask estimation layer (Section 4.2).
//! * [`trainer`] — q-error loss on normalized log targets, Adam,
//!   mini-batches, per-epoch validation statistics (Section 4.3).
//! * [`batch`] — level-wise batched inference (the batching technique of
//!   Section 4.3, measured in Table 12) and the subtree-memoized serving
//!   forward of the optimizer loop.
//! * [`memory`] — the sharded, 64-bit-signature-keyed serving caches of the
//!   online workflow (Section 3): the representation memory pool and the
//!   subtree-state cache.
//! * [`api`] — the [`CostEstimator`] façade downstream users interact with,
//!   plus the thread-shareable [`ServingEstimator`] handle.

pub mod api;
pub mod batch;
pub mod memory;
pub mod model;
pub mod trainer;

pub use api::{CostEstimator, ServingEstimator};
pub use batch::{
    estimate_batch, estimate_batch_memo, estimate_batch_refs, forward_batch, forward_batch_memo,
    reference::estimate_batch_reference,
};
pub use memory::{RepresentationMemoryPool, ShardedCache, SubtreeState, SubtreeStateCache};
pub use model::{ModelConfig, PredicateModelKind, RepresentationCellKind, TaskMode, TreeModel};
pub use trainer::{EpochStats, TargetNormalization, TrainConfig, Trainer};
