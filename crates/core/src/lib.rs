//! The paper's primary contribution: the end-to-end tree-structured learned
//! cost and cardinality estimator.
//!
//! * [`model`] — embedding layer (with min/max predicate-tree pooling or
//!   tree-LSTM predicates), the tree-LSTM / tree-NN representation layer and
//!   the multitask estimation layer (Section 4.2).
//! * [`trainer`] — q-error loss on normalized log targets, Adam,
//!   mini-batches, per-epoch validation statistics (Section 4.3).
//! * [`batch`] — level-wise batched inference (the batching technique of
//!   Section 4.3, measured in Table 12) and the subtree-memoized serving
//!   forward of the optimizer loop.
//! * [`memory`] — the sharded, 64-bit-signature-keyed serving caches of the
//!   online workflow (Section 3): the representation memory pool and the
//!   subtree-state cache.
//! * [`api`] — the [`CostEstimator`] façade downstream users interact with,
//!   plus the thread-shareable [`ServingEstimator`] handle.
//! * [`backend`] — the pluggable-backend contract ([`Estimator`] /
//!   [`TrainableEstimator`]) the tree model, MSCN and the traditional
//!   estimator all implement, so benches and serving drive any of them
//!   generically.
//! * [`checkpoint`] — the versioned binary tree-estimator checkpoint
//!   (model config + normalization + extractor vocab + parameters) behind
//!   [`CostEstimator::save_checkpoint`] / `load_checkpoint`.

pub mod api;
pub mod backend;
pub mod batch;
pub mod checkpoint;
pub mod memory;
pub mod model;
pub mod trainer;

pub use api::{CostEstimator, ServingEstimator};
pub use backend::{Estimator, EstimatorCapabilities, PlanEstimate, TrainableEstimator};
pub use batch::{
    estimate_batch, estimate_batch_memo, estimate_batch_memo_quant, estimate_batch_quant, estimate_batch_refs,
    forward_batch, forward_batch_memo, forward_batch_memo_q, forward_batch_q, reference::estimate_batch_reference,
};
pub use memory::{EncodedSubtreeCache, RepresentationMemoryPool, ShardedCache, SubtreeState, SubtreeStateCache};
pub use model::{ModelConfig, PredicateModelKind, RepresentationCellKind, TaskMode, TreeModel};
pub use nn::checkpoint::CheckpointError;
pub use trainer::{EpochStats, TargetNormalization, TrainConfig, Trainer};
