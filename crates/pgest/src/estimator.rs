//! Plan-level traditional estimation (`PGCard` / `PGCost`).
//!
//! Estimates cardinality bottom-up over the physical plan: scans use
//! histogram selectivities, joins use `|L| * |R| / max(ndv, ndv)`, aggregates
//! produce one row.  Costs are computed with the same work-unit cost model as
//! the ground truth but fed with the *estimated* cardinalities — so cost
//! errors are driven by cardinality errors, matching the finding of Leis et
//! al. that the paper cites.

use crate::histogram::ColumnStats;
use crate::selectivity::{predicate_selectivity, TableStats};
use engine::CostModel;
use imdb::Database;
use query::{PhysicalOp, PlanNode};
use std::collections::HashMap;

/// The traditional estimator: per-table column statistics plus the cost model.
#[derive(Debug, Clone)]
pub struct TraditionalEstimator {
    stats: HashMap<String, TableStats>,
    table_rows: HashMap<String, f64>,
    model: CostModel,
}

impl TraditionalEstimator {
    /// "ANALYZE" the database: build statistics for every column of every table.
    pub fn analyze(db: &Database) -> Self {
        let mut stats = HashMap::new();
        let mut table_rows = HashMap::new();
        for def in &db.schema().tables {
            let Some(table) = db.table(&def.name) else { continue };
            table_rows.insert(def.name.clone(), table.n_rows() as f64);
            let mut per_table = TableStats::new();
            for col in &def.columns {
                if let Some(cs) = ColumnStats::build(table, &col.name) {
                    per_table.insert(col.name.clone(), cs);
                }
            }
            stats.insert(def.name.clone(), per_table);
        }
        TraditionalEstimator { stats, table_rows, model: CostModel::default() }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Number of distinct values of a column (1 when unknown).
    fn ndv(&self, table: &str, column: &str) -> f64 {
        self.stats.get(table).and_then(|t| t.get(column)).map(|c| c.n_distinct() as f64).unwrap_or(1.0).max(1.0)
    }

    /// Number of rows of a base table.
    fn rows(&self, table: &str) -> f64 {
        self.table_rows.get(table).copied().unwrap_or(1.0)
    }

    /// Estimate a whole plan, writing `estimated_cardinality` and
    /// `estimated_cost` into every node's annotations, and return the root
    /// estimates `(cardinality, cost)`.
    pub fn estimate_plan(&self, plan: &mut PlanNode) -> (f64, f64) {
        self.estimate_node(plan)
    }

    fn estimate_node(&self, node: &mut PlanNode) -> (f64, f64) {
        let (card, cost) = match &node.op {
            PhysicalOp::SeqScan { table, predicate } => {
                let rows = self.rows(table);
                let sel = predicate
                    .as_ref()
                    .map(|p| self.stats.get(table).map(|s| predicate_selectivity(s, p)).unwrap_or(0.33))
                    .unwrap_or(1.0);
                let out = (rows * sel).max(1.0);
                let n_atoms = predicate.as_ref().map(|p| p.num_atoms()).unwrap_or(0);
                (out, self.model.seq_scan(rows, n_atoms))
            }
            PhysicalOp::IndexScan { table, predicate, .. } => {
                let rows = self.rows(table);
                let sel = predicate
                    .as_ref()
                    .map(|p| self.stats.get(table).map(|s| predicate_selectivity(s, p)).unwrap_or(0.33))
                    .unwrap_or(1.0);
                let out = (rows * sel).max(1.0);
                let n_atoms = predicate.as_ref().map(|p| p.num_atoms()).unwrap_or(0);
                (out, self.model.index_scan(rows, out, n_atoms))
            }
            PhysicalOp::HashJoin { condition }
            | PhysicalOp::MergeJoin { condition }
            | PhysicalOp::NestedLoopJoin { condition } => {
                let condition = condition.clone();
                let op = node.op.clone();
                let (lc, lcost) = self.estimate_node(&mut node.children[0]);
                let (rc, rcost) = self.estimate_node(&mut node.children[1]);
                // Classic equi-join estimate with the independence assumption.
                let ndv = self
                    .ndv(&condition.left_table, &condition.left_column)
                    .max(self.ndv(&condition.right_table, &condition.right_column));
                let out = (lc * rc / ndv).max(1.0);
                let own = match op {
                    PhysicalOp::HashJoin { .. } => self.model.hash_join(lc, rc, out),
                    PhysicalOp::MergeJoin { .. } => self.model.merge_join(lc, rc, out),
                    PhysicalOp::NestedLoopJoin { .. } => self.model.nested_loop(lc, rcost, out),
                    _ => unreachable!("join arm"),
                };
                (out, lcost + rcost + own)
            }
            PhysicalOp::Sort { .. } => {
                let (c, cost) = self.estimate_node(&mut node.children[0]);
                (c, cost + self.model.sort(c))
            }
            PhysicalOp::Aggregate { hash, group_columns } => {
                let hash = *hash;
                let groups = group_columns.len();
                let (c, cost) = self.estimate_node(&mut node.children[0]);
                let out = if groups == 0 { 1.0 } else { c.sqrt().max(1.0) };
                (out, cost + self.model.aggregate(c, out, hash))
            }
        };
        node.annotations.estimated_cardinality = Some(card);
        node.annotations.estimated_cost = Some(cost);
        (card, cost)
    }
}

impl estimator_core::Estimator for TraditionalEstimator {
    fn backend_name(&self) -> &str {
        "pgest"
    }

    fn capabilities(&self) -> estimator_core::EstimatorCapabilities {
        // Histograms estimate both targets; there is no learned state to
        // persist — "training" is ANALYZE, which rebuilds from the database
        // in milliseconds, so checkpointing would save nothing.
        estimator_core::EstimatorCapabilities { cost: true, cardinality: true, checkpointable: false }
    }

    fn estimate_one(&self, plan: &PlanNode) -> estimator_core::PlanEstimate {
        let mut annotated = plan.clone();
        let (card, cost) = self.estimate_plan(&mut annotated);
        estimator_core::PlanEstimate::both(cost, card)
    }
}

impl estimator_core::TrainableEstimator for TraditionalEstimator {
    /// Nothing iterative to train: the statistics were built by
    /// [`TraditionalEstimator::analyze`].  Returns no epochs.
    fn fit_plans(&mut self, _plans: &[PlanNode]) -> Vec<metrics::EpochStats> {
        Vec::new()
    }

    fn is_fitted(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::execute_plan;
    use imdb::{generate_imdb, GeneratorConfig};
    use metrics::q_error;
    use query::{CompareOp, JoinPredicate, Operand, Predicate};

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    #[test]
    fn scan_estimate_close_to_truth_for_simple_range() {
        let db = db();
        let est = TraditionalEstimator::analyze(&db);
        let pred = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(2000.0));
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred) });
        let (card, cost) = est.estimate_plan(&mut plan);
        let mut real_plan = plan.clone();
        let res = execute_plan(&db, &mut real_plan, &CostModel::default());
        // Histograms are good at single-column ranges: q-error should be small.
        assert!(q_error(card, res.cardinality) < 2.0, "card {card} vs {}", res.cardinality);
        assert!(cost > 0.0);
    }

    #[test]
    fn correlated_conjunction_is_underestimated() {
        // The generator correlates note = '(co-production)' with
        // production-companies rows and recent years; independence multiplies
        // the marginals and underestimates the conjunction.
        let db = db();
        let est = TraditionalEstimator::analyze(&db);
        let pred =
            Predicate::atom("movie_companies", "note", CompareOp::Like, Operand::Str("%(co-production)%".into()))
                .and(Predicate::atom("movie_companies", "company_type_id", CompareOp::Eq, Operand::Num(1.0)));
        let mut plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: Some(pred) });
        let (card, _) = est.estimate_plan(&mut plan);
        let mut real_plan = plan.clone();
        let res = execute_plan(&db, &mut real_plan, &CostModel::default());
        assert!(res.cardinality > 0.0);
        assert!(card < res.cardinality, "expected underestimate: est {card} vs real {}", res.cardinality);
    }

    #[test]
    fn join_estimates_annotate_all_nodes() {
        let db = db();
        let est = TraditionalEstimator::analyze(&db);
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "title".into(),
            predicate: Some(Predicate::atom("title", "production_year", CompareOp::Lt, Operand::Num(1960.0))),
        });
        let scan_mii = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_info_idx".into(), predicate: None });
        let mut join = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_info_idx", "movie_id", "title", "id") },
            vec![scan_t, scan_mii],
        );
        est.estimate_plan(&mut join);
        join.visit_preorder(&mut |n, _| {
            assert!(n.annotations.estimated_cardinality.is_some());
            assert!(n.annotations.estimated_cost.is_some());
        });
    }

    #[test]
    fn multi_join_error_grows_with_join_count() {
        // The paper's motivation: traditional estimates degrade as more joins
        // (with correlated keys) are added.
        let db = db();
        let est = TraditionalEstimator::analyze(&db);
        let model = CostModel::default();

        let pred = Predicate::atom("title", "production_year", CompareOp::Lt, Operand::Num(1975.0));
        let scan_t = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred) });
        let scan_mii = PlanNode::leaf(PhysicalOp::SeqScan {
            table: "movie_info_idx".into(),
            predicate: Some(Predicate::atom("movie_info_idx", "info_type_id", CompareOp::Eq, Operand::Num(1.0))),
        });
        let join1 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_info_idx", "movie_id", "title", "id") },
            vec![scan_t, scan_mii],
        );
        let scan_mk = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_keyword".into(), predicate: None });
        let join2 = PlanNode::inner(
            PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_keyword", "movie_id", "title", "id") },
            vec![join1, scan_mk],
        );

        let mut one_join = join2.children[0].clone();
        let mut two_join = join2;

        let (est1, _) = est.estimate_plan(&mut one_join);
        let real1 = execute_plan(&db, &mut one_join.clone(), &model).cardinality;
        let (est2, _) = est.estimate_plan(&mut two_join);
        let real2 = execute_plan(&db, &mut two_join.clone(), &model).cardinality;

        let q1 = q_error(est1, real1);
        let q2 = q_error(est2, real2);
        assert!(q2 >= q1 * 0.8, "error did not grow with joins: q1={q1:.2} q2={q2:.2}");
    }

    #[test]
    fn trait_driven_estimation_fills_both_slots() {
        use estimator_core::{Estimator, TrainableEstimator};
        let db = db();
        let mut est = TraditionalEstimator::analyze(&db);
        assert!(TrainableEstimator::is_fitted(&est));
        assert!(est.fit_plans(&[]).is_empty());
        let caps = est.capabilities();
        assert!(caps.cost && caps.cardinality && !caps.checkpointable);

        let pred = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(1990.0));
        let plan = PlanNode::leaf(PhysicalOp::SeqScan { table: "title".into(), predicate: Some(pred) });
        let one = est.estimate_one(&plan);
        // Trait estimates agree with the inherent (annotating) path, and the
        // input plan is left unannotated.
        let (card, cost) = est.estimate_plan(&mut plan.clone());
        assert_eq!(one.cost, Some(cost));
        assert_eq!(one.cardinality, Some(card));
        assert!(plan.annotations.estimated_cardinality.is_none());
        assert_eq!(est.estimate_many(std::slice::from_ref(&plan)), vec![one]);
        // Checkpointing is a typed refusal, not a panic.
        assert!(matches!(
            est.save_checkpoint_to(std::path::Path::new("/tmp/pg.ckpt")),
            Err(estimator_core::CheckpointError::Unsupported(_))
        ));
    }

    #[test]
    fn aggregate_estimates_one_row() {
        let db = db();
        let est = TraditionalEstimator::analyze(&db);
        let scan = PlanNode::leaf(PhysicalOp::SeqScan { table: "cast_info".into(), predicate: None });
        let mut agg = PlanNode::inner(PhysicalOp::Aggregate { hash: false, group_columns: vec![] }, vec![scan]);
        let (card, cost) = est.estimate_plan(&mut agg);
        assert_eq!(card, 1.0);
        assert!(cost > 0.0);
    }
}
