//! Predicate selectivity under the attribute-value-independence assumption.

use crate::histogram::ColumnStats;
use query::{AtomPredicate, CompareOp, Operand, Predicate};
use std::collections::HashMap;

/// Default selectivity when no statistics are available for a column.
const DEFAULT_SELECTIVITY: f64 = 0.33;

/// Statistics of all columns of one table, keyed by column name.
pub type TableStats = HashMap<String, ColumnStats>;

/// Selectivity of an atomic predicate against the table's statistics.
pub fn atom_selectivity(stats: &TableStats, atom: &AtomPredicate) -> f64 {
    let Some(col) = stats.get(&atom.column) else { return DEFAULT_SELECTIVITY };
    match (col, &atom.operand) {
        (ColumnStats::Numeric(num), Operand::Num(v)) => match atom.op {
            CompareOp::Eq => num.selectivity_eq(*v),
            CompareOp::Ne => (1.0 - num.selectivity_eq(*v)).max(0.0),
            CompareOp::Lt => num.selectivity_lt(*v),
            CompareOp::Le => num.selectivity_lt(*v) + num.selectivity_eq(*v),
            CompareOp::Gt => num.selectivity_gt(*v),
            CompareOp::Ge => num.selectivity_gt(*v) + num.selectivity_eq(*v),
            // LIKE / IN on numeric columns: fall back to a default guess.
            _ => DEFAULT_SELECTIVITY,
        },
        (ColumnStats::Text(text), Operand::Str(s)) => match atom.op {
            CompareOp::Eq | CompareOp::In => text.selectivity_eq(s),
            CompareOp::Ne => (1.0 - text.selectivity_eq(s)).max(0.0),
            CompareOp::Like => text.selectivity_like(s),
            CompareOp::NotLike => (1.0 - text.selectivity_like(s)).max(0.0),
            // Range comparison on strings: default guess.
            _ => DEFAULT_SELECTIVITY,
        },
        (ColumnStats::Text(text), Operand::StrList(items)) => {
            let sel: f64 = items.iter().map(|s| text.selectivity_eq(s)).sum();
            sel.clamp(0.0, 1.0)
        }
        // Type mismatch between statistics and operand.
        _ => DEFAULT_SELECTIVITY,
    }
    .clamp(0.0, 1.0)
}

/// Selectivity of a (possibly compound) predicate, assuming independence
/// between atoms: `AND` multiplies, `OR` uses inclusion–exclusion.
pub fn predicate_selectivity(stats: &TableStats, predicate: &Predicate) -> f64 {
    match predicate {
        Predicate::Atom(a) => atom_selectivity(stats, a),
        Predicate::And(l, r) => predicate_selectivity(stats, l) * predicate_selectivity(stats, r),
        Predicate::Or(l, r) => {
            let sl = predicate_selectivity(stats, l);
            let sr = predicate_selectivity(stats, r);
            (sl + sr - sl * sr).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{Column, Schema, Table};
    use query::Operand;

    fn title_stats() -> TableStats {
        // 1000 rows, years uniform in 1950..2010, kind skewed.
        let years: Vec<i64> = (0..1000).map(|i| 1950 + (i % 60)).collect();
        let kinds: Vec<i64> = (0..1000).map(|i| if i % 10 == 0 { 2 } else { 1 }).collect();
        let def = Schema::imdb().table("title").expect("exists").clone();
        let table = Table::new(
            def,
            vec![
                Column::Int((1..=1000).collect()),
                Column::Str((0..1000).map(|i| format!("Movie {i}")).collect()),
                Column::Int(kinds),
                Column::Int(years),
                Column::Int(vec![0; 1000]),
                Column::Int(vec![0; 1000]),
            ],
        );
        let mut stats = TableStats::new();
        for col in ["id", "kind_id", "production_year", "title"] {
            stats.insert(col.to_string(), ColumnStats::build(&table, col).expect("column exists"));
        }
        stats
    }

    #[test]
    fn range_predicate_selectivity() {
        let stats = title_stats();
        let p = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(1980.0));
        let sel = predicate_selectivity(&stats, &p);
        assert!((sel - 0.5).abs() < 0.1, "sel {sel}");
    }

    #[test]
    fn and_multiplies_or_adds() {
        let stats = title_stats();
        let a = Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(1980.0));
        let b = Predicate::atom("title", "kind_id", CompareOp::Eq, Operand::Num(2.0));
        let sa = predicate_selectivity(&stats, &a);
        let sb = predicate_selectivity(&stats, &b);
        let s_and = predicate_selectivity(&stats, &a.clone().and(b.clone()));
        let s_or = predicate_selectivity(&stats, &a.or(b));
        assert!((s_and - sa * sb).abs() < 1e-9);
        assert!((s_or - (sa + sb - sa * sb)).abs() < 1e-9);
        assert!(s_and <= sa.min(sb));
        assert!(s_or >= sa.max(sb));
    }

    #[test]
    fn missing_column_uses_default() {
        let stats = title_stats();
        let p = Predicate::atom("title", "unknown_column", CompareOp::Eq, Operand::Num(1.0));
        assert_eq!(predicate_selectivity(&stats, &p), 0.33);
    }

    #[test]
    fn selectivity_always_a_probability() {
        let stats = title_stats();
        let preds = [
            Predicate::atom("title", "production_year", CompareOp::Lt, Operand::Num(1000.0)),
            Predicate::atom("title", "production_year", CompareOp::Gt, Operand::Num(3000.0)),
            Predicate::atom("title", "title", CompareOp::Like, Operand::Str("%Movie%".into())),
            Predicate::atom("title", "title", CompareOp::NotLike, Operand::Str("%zzz%".into())),
        ];
        for p in preds {
            let s = predicate_selectivity(&stats, &p);
            assert!((0.0..=1.0).contains(&s), "{p} -> {s}");
        }
    }

    #[test]
    fn in_list_sums_frequencies() {
        let stats = title_stats();
        let p = Predicate::atom(
            "title",
            "title",
            CompareOp::In,
            Operand::StrList(vec!["Movie 1".into(), "Movie 2".into()]),
        );
        let sel = predicate_selectivity(&stats, &p);
        assert!(sel > 0.0 && sel < 0.05);
    }
}
