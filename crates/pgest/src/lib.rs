//! Traditional (PostgreSQL-style) cost and cardinality estimator — the
//! `PGCard` / `PGCost` baseline of the paper's evaluation.
//!
//! The estimator follows the textbook recipe PostgreSQL implements:
//!
//! * per-column statistics (equi-depth histograms for numeric columns, MCV
//!   lists for strings) collected by [`histogram`];
//! * per-predicate selectivities combined under the **attribute-value
//!   independence** assumption (`AND` multiplies, `OR` adds-minus-product)
//!   in [`selectivity`];
//! * join cardinalities estimated with the classic
//!   `|L| * |R| / max(ndv(L.a), ndv(R.b))` formula, and plan costs computed
//!   with the same cost-model formulas as the ground truth but fed with the
//!   *estimated* cardinalities, in [`estimator`].
//!
//! Because the synthetic data is deliberately correlated across columns and
//! tables, this estimator exhibits the same error-amplification-with-joins
//! behaviour the paper reports for PostgreSQL on IMDB.

pub mod estimator;
pub mod histogram;
pub mod selectivity;

pub use estimator::TraditionalEstimator;
pub use histogram::{ColumnStats, NumericStats, StringStats};
pub use selectivity::predicate_selectivity;
