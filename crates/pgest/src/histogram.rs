//! Per-column statistics: equi-depth histograms, most-common-value lists and
//! distinct counts — the statistics PostgreSQL's ANALYZE collects and its
//! selectivity functions consume.

use imdb::{Column, Table};
use std::collections::HashMap;

/// Number of histogram buckets.
const NUM_BUCKETS: usize = 50;
/// Number of most-common values tracked for string columns.
const NUM_MCV: usize = 50;

/// Statistics of one integer column: an equi-depth histogram plus the
/// distinct count.
#[derive(Debug, Clone)]
pub struct NumericStats {
    /// Bucket boundaries (ascending, length = buckets + 1).
    bounds: Vec<f64>,
    /// Total number of rows.
    n_rows: usize,
    /// Number of distinct values.
    n_distinct: usize,
}

impl NumericStats {
    /// Build statistics from an integer column.
    pub fn build(values: &[i64]) -> Self {
        let n_rows = values.len();
        let mut sorted: Vec<i64> = values.to_vec();
        sorted.sort_unstable();
        let mut distinct = sorted.clone();
        distinct.dedup();
        let n_distinct = distinct.len();
        let buckets = NUM_BUCKETS.min(n_rows.max(1));
        let mut bounds = Vec::with_capacity(buckets + 1);
        if n_rows == 0 {
            bounds.push(0.0);
            bounds.push(0.0);
        } else {
            for b in 0..=buckets {
                let idx = (b * (n_rows - 1)) / buckets;
                bounds.push(sorted[idx] as f64);
            }
        }
        NumericStats { bounds, n_rows, n_distinct }
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.n_distinct
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Selectivity of `column < v` (fraction of rows).
    pub fn selectivity_lt(&self, v: f64) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let buckets = self.bounds.len() - 1;
        let mut covered = 0.0;
        for b in 0..buckets {
            let lo = self.bounds[b];
            let hi = self.bounds[b + 1];
            if v <= lo {
                break;
            }
            if v >= hi {
                covered += 1.0;
            } else {
                let width = (hi - lo).max(f64::EPSILON);
                covered += ((v - lo) / width).clamp(0.0, 1.0);
            }
        }
        (covered / buckets as f64).clamp(0.0, 1.0)
    }

    /// Selectivity of `column > v`.
    pub fn selectivity_gt(&self, v: f64) -> f64 {
        (1.0 - self.selectivity_lt(v) - self.selectivity_eq(v)).clamp(0.0, 1.0)
    }

    /// Selectivity of `column = v` (uniform within distinct values).
    pub fn selectivity_eq(&self, v: f64) -> f64 {
        if self.n_rows == 0 || self.n_distinct == 0 {
            return 0.0;
        }
        let min = self.bounds[0];
        let max = *self.bounds.last().expect("non-empty bounds");
        if v < min || v > max {
            return 0.0;
        }
        1.0 / self.n_distinct as f64
    }
}

/// Statistics of one string column: MCV list plus distinct count.
#[derive(Debug, Clone)]
pub struct StringStats {
    /// Most common values and their frequencies (fraction of rows).
    mcv: Vec<(String, f64)>,
    n_rows: usize,
    n_distinct: usize,
}

impl StringStats {
    /// Build statistics from a string column.
    pub fn build(values: &[String]) -> Self {
        let n_rows = values.len();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for v in values {
            *counts.entry(v.as_str()).or_default() += 1;
        }
        let n_distinct = counts.len();
        let mut sorted: Vec<(&str, usize)> = counts.into_iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mcv =
            sorted.into_iter().take(NUM_MCV).map(|(s, c)| (s.to_string(), c as f64 / n_rows.max(1) as f64)).collect();
        StringStats { mcv, n_rows, n_distinct }
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.n_distinct
    }

    /// Selectivity of `column = s`.
    pub fn selectivity_eq(&self, s: &str) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        if let Some((_, f)) = self.mcv.iter().find(|(v, _)| v == s) {
            return *f;
        }
        // Not an MCV: the remaining mass spread over the remaining distinct values.
        let mcv_mass: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        let rest_distinct = self.n_distinct.saturating_sub(self.mcv.len()).max(1);
        ((1.0 - mcv_mass) / rest_distinct as f64).max(1.0 / self.n_rows as f64 / 10.0)
    }

    /// Selectivity of `column LIKE pattern`, PostgreSQL-style: match the MCVs
    /// exactly, then add a default guess for the histogram remainder that
    /// shrinks with the length of the fixed (non-wildcard) part of the pattern.
    pub fn selectivity_like(&self, pattern: &str) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let mcv_match: f64 = self.mcv.iter().filter(|(v, _)| query::like_match(v, pattern)).map(|(_, f)| f).sum();
        let mcv_mass: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        let fixed_len = pattern.chars().filter(|&c| c != '%' && c != '_').count();
        // The independence-style default guess PostgreSQL uses: each fixed
        // character multiplies selectivity by a constant factor.
        let default = 0.5f64.powi((fixed_len as i32).min(20)).max(1e-6);
        (mcv_match + (1.0 - mcv_mass).max(0.0) * default).clamp(0.0, 1.0)
    }
}

/// Statistics of a single column (numeric or string).
#[derive(Debug, Clone)]
pub enum ColumnStats {
    Numeric(NumericStats),
    Text(StringStats),
}

impl ColumnStats {
    /// Build statistics for a column of a table.
    pub fn build(table: &Table, column: &str) -> Option<Self> {
        match table.column_by_name(column)? {
            Column::Int(values) => Some(ColumnStats::Numeric(NumericStats::build(values))),
            Column::Str(values) => Some(ColumnStats::Text(StringStats::build(values))),
        }
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        match self {
            ColumnStats::Numeric(s) => s.n_distinct(),
            ColumnStats::Text(s) => s.n_distinct(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_histogram_range_selectivity() {
        let values: Vec<i64> = (0..1000).collect();
        let s = NumericStats::build(&values);
        let sel = s.selectivity_lt(500.0);
        assert!((sel - 0.5).abs() < 0.05, "lt selectivity {sel}");
        let sel = s.selectivity_gt(900.0);
        assert!((sel - 0.1).abs() < 0.05, "gt selectivity {sel}");
        assert_eq!(s.n_distinct(), 1000);
    }

    #[test]
    fn numeric_eq_selectivity_uses_distinct_count() {
        let values: Vec<i64> = (0..100).flat_map(|v| std::iter::repeat_n(v, 10)).collect();
        let s = NumericStats::build(&values);
        assert!((s.selectivity_eq(50.0) - 0.01).abs() < 1e-9);
        assert_eq!(s.selectivity_eq(-5.0), 0.0);
        assert_eq!(s.selectivity_eq(1e9), 0.0);
    }

    #[test]
    fn skewed_numeric_histogram_reflects_skew() {
        // 90% of values are 0, the rest uniform in 1..100.
        let mut values = vec![0i64; 900];
        values.extend(1..=100);
        let s = NumericStats::build(&values);
        assert!(s.selectivity_lt(1.0) > 0.8);
    }

    #[test]
    fn empty_column_is_safe() {
        let s = NumericStats::build(&[]);
        assert_eq!(s.selectivity_lt(10.0), 0.0);
        assert_eq!(s.selectivity_eq(10.0), 0.0);
        let t = StringStats::build(&[]);
        assert_eq!(t.selectivity_eq("x"), 0.0);
        assert_eq!(t.selectivity_like("%x%"), 0.0);
    }

    #[test]
    fn string_mcv_equality() {
        let mut values = vec!["production companies".to_string(); 700];
        values.extend(vec!["distributors".to_string(); 300]);
        let s = StringStats::build(&values);
        assert!((s.selectivity_eq("production companies") - 0.7).abs() < 1e-9);
        assert!((s.selectivity_eq("distributors") - 0.3).abs() < 1e-9);
        assert!(s.selectivity_eq("unknown kind") < 0.01);
    }

    #[test]
    fn like_selectivity_uses_mcvs() {
        let mut values = vec!["(co-production)".to_string(); 400];
        values.extend(vec!["(presents)".to_string(); 600]);
        let s = StringStats::build(&values);
        let sel = s.selectivity_like("%(co-production)%");
        assert!((sel - 0.4).abs() < 0.05, "sel {sel}");
    }

    #[test]
    fn like_default_guess_shrinks_with_pattern_length() {
        let values: Vec<String> = (0..1000).map(|i| format!("note number {i} with text")).collect();
        let s = StringStats::build(&values);
        assert!(s.selectivity_like("%abcdef%") < s.selectivity_like("%ab%"));
    }

    #[test]
    fn selectivities_are_probabilities() {
        let values: Vec<i64> = (0..500).map(|i| i % 37).collect();
        let s = NumericStats::build(&values);
        for v in [-10.0, 0.0, 18.0, 36.0, 100.0] {
            for sel in [s.selectivity_lt(v), s.selectivity_gt(v), s.selectivity_eq(v)] {
                assert!((0.0..=1.0).contains(&sel));
            }
        }
    }
}
