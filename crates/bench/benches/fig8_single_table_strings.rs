//! Figure 8 — cardinality validation error on the single-table string
//! workload for the four string-encoding variants (hash bitmap, embedding
//! without rules, embedding with rules, rules + min/max pooling predicates).
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use strembed::StringEncoding;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::SingleTableStrings);
    println!("== Figure 8 — single-table cardinality validation error per episode ==");
    let variants: [(&str, Option<StringEncoding>, PredicateModelKind); 4] = [
        ("TLSTMHashCard", Some(StringEncoding::Hash), PredicateModelKind::TreeLstm),
        ("TLSTMEmbNRCard", Some(StringEncoding::EmbedNoRule), PredicateModelKind::TreeLstm),
        ("TLSTMEmbRCard", Some(StringEncoding::EmbedRule), PredicateModelKind::TreeLstm),
        ("TPoolEmbRCard", Some(StringEncoding::EmbedRule), PredicateModelKind::MinMaxPool),
    ];
    for (label, encoding, predicate) in variants {
        let fx = pipeline.extractor(encoding, &suite.train, true);
        let mut est = estimator_core::CostEstimator::new(
            fx,
            estimator_core::ModelConfig {
                cell: RepresentationCellKind::Lstm,
                predicate,
                task: TaskMode::Multitask,
                feature_embed_dim: 16,
                hidden_dim: 32,
                estimation_hidden_dim: 16,
                ..Default::default()
            },
            estimator_core::TrainConfig {
                epochs: pipeline.scale.epochs,
                batch_size: 16,
                learning_rate: 0.003,
                ..Default::default()
            },
        );
        let plans: Vec<_> = suite.train.iter().map(|s| s.plan.clone()).collect();
        let stats = est.fit(&plans);
        let series: Vec<String> = stats.iter().map(|s| format!("{:.2}", s.validation_card_qerror_mean)).collect();
        println!("{label:<16} episodes: [{}]", series.join(", "));
    }
}
