//! Figure 8 — cardinality validation error on the single-table string
//! workload for the four string-encoding variants (hash bitmap, embedding
//! without rules, embedding with rules, rules + min/max pooling predicates).
//!
//! Each variant is a registry backend; the curves come from the shared
//! per-epoch statistics.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    let suite = pipeline.suite(WorkloadKind::SingleTableStrings);
    println!("== Figure 8 — single-table cardinality validation error per episode ==");
    for (label, backend) in [
        ("TLSTMHashCard", "TLSTMHashM"),
        ("TLSTMEmbNRCard", "TLSTMEmbNRM"),
        ("TLSTMEmbRCard", "TLSTMEmbRM"),
        ("TPoolEmbRCard", "TPoolEmbRM"),
    ] {
        let run = run_backend(&registry, backend, &pipeline, &suite);
        let series: Vec<String> = run.epochs.iter().map(|s| format!("{:.2}", s.validation_card_qerror_mean)).collect();
        println!("{label:<16} episodes: [{}]", series.join(", "));
    }
}
