//! Table 8 — cost q-errors on the numeric workloads for PGCost, MSCNCost,
//! TLSTMCost (single task), TNNMCost and TLSTMMCost (multitask).
//!
//! All backends run through the registry's shared
//! train-once/checkpoint/eval loop.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use metrics::ReportTable;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    for (name, kind) in
        [("JOB-light", WorkloadKind::JobLight), ("Synthetic", WorkloadKind::Synthetic), ("Scale", WorkloadKind::Scale)]
    {
        let suite = pipeline.suite(kind);
        let mut table = ReportTable::new(format!("Table 8 — cost q-errors, {name} workload"));
        for (label, backend) in [
            ("PGCost", "PG"),
            ("MSCNCost", "MSCNCost"),
            ("TLSTMCost", "TLSTMCost"),
            ("TNNMCost", "TNNM"),
            ("TLSTMMCost", "TLSTMM"),
        ] {
            let run = run_backend(&registry, backend, &pipeline, &suite);
            table.add_errors(label, &run.cost_qerrors);
        }
        table.print();
    }
}
