//! Table 8 — cost q-errors on the numeric workloads for PGCost, MSCNCost,
//! TLSTMCost (single task), TNNMCost and TLSTMMCost (multitask).
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use metrics::ReportTable;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    for (name, kind) in
        [("JOB-light", WorkloadKind::JobLight), ("Synthetic", WorkloadKind::Synthetic), ("Scale", WorkloadKind::Scale)]
    {
        let suite = pipeline.suite(kind);
        let mut table = ReportTable::new(format!("Table 8 — cost q-errors, {name} workload"));
        let (_, pg_cost) = pipeline.pg_errors(&suite);
        table.add_errors("PGCost", &pg_cost);
        table.add_errors("MSCNCost", &pipeline.mscn_errors(&suite, true, true));
        for (label, cell, task) in [
            ("TLSTMCost", RepresentationCellKind::Lstm, TaskMode::CostOnly),
            ("TNNMCost", RepresentationCellKind::Nn, TaskMode::Multitask),
            ("TLSTMMCost", RepresentationCellKind::Lstm, TaskMode::Multitask),
        ] {
            let (est, test) = pipeline.train_tree_model(&suite, cell, PredicateModelKind::TreeLstm, task, None, true);
            table.add_errors(label, &pipeline.tree_errors(&est, &test).1);
        }
        table.print();
    }
}
