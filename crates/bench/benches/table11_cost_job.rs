//! Table 11 — cost q-errors on the JOB (string-predicate) workload:
//! PGCost, TLSTMHashMCost, TLSTMEmbNRMCost, TLSTMEmbRMCost, TPoolEmbRMCost.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use metrics::ReportTable;
use strembed::StringEncoding;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let mut table = ReportTable::new("Table 11 — cost q-errors on the JOB (strings) workload");
    let (_, pg_cost) = pipeline.pg_errors(&suite);
    table.add_errors("PGCost", &pg_cost);
    let variants: [(&str, StringEncoding, PredicateModelKind); 4] = [
        ("TLSTMHashMCost", StringEncoding::Hash, PredicateModelKind::TreeLstm),
        ("TLSTMEmbNRMCost", StringEncoding::EmbedNoRule, PredicateModelKind::TreeLstm),
        ("TLSTMEmbRMCost", StringEncoding::EmbedRule, PredicateModelKind::TreeLstm),
        ("TPoolEmbRMCost", StringEncoding::EmbedRule, PredicateModelKind::MinMaxPool),
    ];
    for (label, encoding, predicate) in variants {
        let (est, test) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Lstm,
            predicate,
            TaskMode::Multitask,
            Some(encoding),
            true,
        );
        table.add_errors(label, &pipeline.tree_errors(&est, &test).1);
    }
    table.print();
}
