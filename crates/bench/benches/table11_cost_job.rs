//! Table 11 — cost q-errors on the JOB (string-predicate) workload:
//! PGCost, TLSTMHashMCost, TLSTMEmbNRMCost, TLSTMEmbRMCost, TPoolEmbRMCost.
//!
//! Same registry backends as Table 10, reported on the cost head.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use metrics::ReportTable;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let mut table = ReportTable::new("Table 11 — cost q-errors on the JOB (strings) workload");
    for (label, backend) in [
        ("PGCost", "PG"),
        ("TLSTMHashMCost", "TLSTMHashM"),
        ("TLSTMEmbNRMCost", "TLSTMEmbNRM"),
        ("TLSTMEmbRMCost", "TLSTMEmbRM"),
        ("TPoolEmbRMCost", "TPoolEmbRM"),
    ] {
        let run = run_backend(&registry, backend, &pipeline, &suite);
        table.add_errors(label, &run.cost_qerrors);
    }
    table.print();
}
