//! Multi-tenant serving runtime under load — the production posture behind
//! one process: several named checkpointed models, live hot-swaps, and
//! concurrent sessions of one tenant coalesced through the admission layer.
//!
//! Run with `cargo bench -p bench --bench serving_multi_tenant` (after
//! `serving_throughput`, whose `BENCH_serving.json` this bench extends with
//! a `multi_tenant` section).  Three measurements:
//!
//! * **Hot-swap latency** — `ModelCatalog::install_checkpoint` end to end
//!   (build a fresh backend from the tenant factory, load the checkpoint,
//!   swap the slot) and the pure atomic `publish` swap alone.
//! * **Per-tenant isolation** — tenant B's session throughput while tenant
//!   A is hot-swapped continuously, as a fraction of B's undisturbed
//!   throughput, with every B estimate asserted bit-identical throughout.
//!   Swaps cost CPU (building + loading a model), so the ratio is below
//!   1.0 on a small host — but a *blocking* catalog would send it toward
//!   zero; the floor guards that.  B's cache statistics are also asserted
//!   untouched by A's traffic (per-tenant sharded caches).
//! * **Aggregated-batch throughput** — 1 vs 4 sessions of the *same*
//!   tenant streaming a DP enumeration through the cross-session batch
//!   aggregator; aggregate plans/s and speedup vs one session.
//!
//! With `E2E_CHECK` set, floors are asserted: isolation ratio ≥ 0.3 and
//! aggregated 4-session speedup ≥ 1.5x (the PR 3 concurrent-session floor,
//! now carried by the admission layer instead of raw cache sharing).

use bench::{time_reps, Pipeline};
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use featurize::EncodedPlan;
use query::PlanNode;
use serving::{ModelCatalog, TenantBackend};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use workloads::{generate_enumeration_workload, EnumerationConfig, WorkloadKind};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let queries = env_usize("E2E_SERVING_QUERIES", 8);
    let rounds = env_usize("E2E_SERVING_ROUNDS", 3);
    let max_candidates = env_usize("E2E_SERVING_CANDIDATES", 100);
    let reps = env_usize("E2E_BENCH_REPS", 3).max(1);
    if std::env::var("E2E_EPOCHS").is_err() {
        std::env::set_var("E2E_EPOCHS", "2");
    }
    let cpus = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);

    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobLight);
    let mk_estimator = || {
        pipeline.tree_estimator(
            &suite.train,
            RepresentationCellKind::Lstm,
            PredicateModelKind::MinMaxPool,
            TaskMode::Multitask,
            None,
            true,
        )
    };
    let train_plans: Vec<PlanNode> = suite.train.iter().map(|s| s.plan.clone()).collect();
    let n = train_plans.len();

    // Two tenants with genuinely different weights: trained on different
    // halves of the workload.  A third variant (for hot-swapping tenant A)
    // trains on the full set.
    let fit_on = |plans: &[PlanNode]| {
        let mut est = mk_estimator();
        est.fit(plans);
        est
    };
    println!("training tenant models ({n} plans)...");
    let tenant_a_v1 = fit_on(&train_plans[..n / 2]);
    let tenant_b = fit_on(&train_plans[n / 2..]);
    let tenant_a_v2 = fit_on(&train_plans);
    let ckpt = std::env::temp_dir().join(format!("e2e-multitenant-{}.ckpt", std::process::id()));
    tenant_a_v2.save_checkpoint(&ckpt).expect("save hot-swap checkpoint");

    // The enumeration stream, encoded once (both tenants share the
    // extractor vocabulary — same database, same encoding config).
    let workload = generate_enumeration_workload(
        &pipeline.db,
        EnumerationConfig {
            num_queries: queries,
            min_joins: 3,
            max_joins: 4,
            max_candidates_per_query: max_candidates,
            seed: 31,
        },
    );
    let encoded: Vec<Vec<EncodedPlan>> =
        workload.iter().map(|s| s.candidates.iter().map(|c| tenant_a_v1.encode(c)).collect()).collect();
    let plans_per_round: usize = encoded.iter().map(|q| q.len()).sum();
    let plans_per_session = plans_per_round * rounds;
    println!(
        "== multi-tenant serving ({} queries x {rounds} rounds, {plans_per_round} candidates/round, {cpus} cpu(s)) ==",
        workload.len()
    );

    let catalog = Arc::new(ModelCatalog::new());
    catalog.publish("tenant_a", TenantBackend::tree(tenant_a_v1));
    catalog.publish("tenant_b", TenantBackend::tree(tenant_b));
    catalog.register_factory("tenant_a", {
        // The factory owns cheap clones of the pipeline parts it needs to
        // rebuild the same estimator shape the tenant was trained with.
        let db = pipeline.db.clone();
        let enc = pipeline.enc_config.clone();
        let scale = pipeline.scale;
        let train = suite.train.clone();
        Box::new(move || {
            let p = Pipeline { db: db.clone(), scale, enc_config: enc.clone() };
            TenantBackend::tree(p.tree_estimator(
                &train,
                RepresentationCellKind::Lstm,
                PredicateModelKind::MinMaxPool,
                TaskMode::Multitask,
                None,
                true,
            ))
        })
    });

    // --- Hot-swap latency. ---
    let install_secs = time_reps(
        reps,
        || (),
        || {
            catalog.install_checkpoint("tenant_a", &ckpt).expect("install checkpoint");
        },
    );
    // Pure swap: backend built + loaded outside the timed region.
    let mut publish_best = f64::INFINITY;
    for _ in 0..reps.max(3) {
        let mut backend = mk_estimator();
        backend.load_checkpoint(&ckpt).expect("load for publish timing");
        let start = std::time::Instant::now();
        catalog.publish("tenant_a", TenantBackend::tree(backend));
        publish_best = publish_best.min(start.elapsed().as_secs_f64());
    }
    println!(
        "hot swap: install (build + load + swap) {:.2} ms, atomic publish alone {:.4} ms",
        install_secs * 1e3,
        publish_best * 1e3
    );

    // --- Per-tenant isolation: B's throughput while A swaps continuously. ---
    let sb = catalog.session("tenant_b").expect("tenant_b");
    let reference: Vec<Vec<(f64, f64)>> =
        encoded.iter().map(|q| sb.estimate_encoded(q).expect("tenant_b serves")).collect();
    let run_b_stream = || {
        for _ in 0..rounds {
            for (q, want) in encoded.iter().zip(&reference) {
                let got = sb.estimate_encoded(q).expect("tenant_b serves");
                assert_eq!(&got, want, "tenant_b estimates disturbed");
            }
        }
    };
    let b_alone_secs = time_reps(reps, || (), &run_b_stream);

    let stop = AtomicBool::new(false);
    let swaps = AtomicUsize::new(0);
    let mut b_during_secs = 0.0;
    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                catalog.install_checkpoint("tenant_a", &ckpt).expect("hot swap under load");
                swaps.fetch_add(1, Ordering::Relaxed);
            }
        });
        // Don't start the timed window until the swapper is demonstrably
        // live: on a single-core host a short measurement could otherwise
        // finish before the spawned thread is ever scheduled.
        while swaps.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        b_during_secs = time_reps(reps, || (), run_b_stream);
        stop.store(true, Ordering::Relaxed);
        swapper.join().expect("swapper thread");
    });
    let b_alone_rate = plans_per_session as f64 / b_alone_secs;
    let b_during_rate = plans_per_session as f64 / b_during_secs;
    let isolation_ratio = b_during_rate / b_alone_rate;
    let swaps_done = swaps.load(Ordering::Relaxed);
    println!(
        "isolation: tenant_b {b_alone_rate:.1} plans/s alone -> {b_during_rate:.1} plans/s during \
         {swaps_done} live hot-swaps of tenant_a (ratio {isolation_ratio:.2})"
    );

    // --- Aggregated-batch throughput: 1 vs 4 sessions of tenant_a. ---
    let sa = catalog.session("tenant_a").expect("tenant_a");
    let expected_first = sa.estimate_encoded(&encoded[0]).expect("tenant_a serves");
    struct AggRow {
        sessions: usize,
        aggregate_plans_per_sec: f64,
        speedup_vs_1: f64,
    }
    let mut agg_rows: Vec<AggRow> = Vec::new();
    for sessions in [1usize, 4] {
        let secs = time_reps(
            reps,
            || {
                // Fresh subtree cache per measurement: swap in a fresh model
                // so the 4-session run cannot ride the 1-session run's warm
                // cache.
                catalog.install_checkpoint("tenant_a", &ckpt).expect("reset tenant_a");
            },
            || {
                std::thread::scope(|scope| {
                    for t in 0..sessions {
                        let session = catalog.session("tenant_a").expect("tenant_a");
                        let encoded = &encoded;
                        let offset = t * encoded.len() / sessions;
                        scope.spawn(move || {
                            for _ in 0..rounds {
                                for i in 0..encoded.len() {
                                    let q = &encoded[(i + offset) % encoded.len()];
                                    session.estimate_encoded(q).expect("tenant_a serves");
                                }
                            }
                        });
                    }
                });
            },
        );
        let aggregate = (sessions * plans_per_session) as f64 / secs;
        let speedup = agg_rows.first().map(|base| aggregate / base.aggregate_plans_per_sec).unwrap_or(1.0);
        println!("{sessions} aggregated session(s): {aggregate:>12.1} plans/s aggregate   ({speedup:.2}x vs 1)");
        agg_rows.push(AggRow { sessions, aggregate_plans_per_sec: aggregate, speedup_vs_1: speedup });
    }
    // Aggregated results must be bit-identical to direct serving.
    assert_eq!(
        sa.estimate_encoded(&encoded[0]).expect("tenant_a serves"),
        expected_first,
        "aggregated estimates diverged across swaps"
    );
    let _ = std::fs::remove_file(&ckpt);

    // --- Extend BENCH_serving.json with the multi_tenant section. ---
    let mut section = String::from("{\n");
    let _ = writeln!(section, "    \"cpus\": {cpus},");
    let _ = writeln!(section, "    \"hot_swap\": {{");
    let _ = writeln!(section, "      \"install_ms\": {:.4},", install_secs * 1e3);
    let _ = writeln!(section, "      \"publish_ms\": {:.4}", publish_best * 1e3);
    let _ = writeln!(section, "    }},");
    let _ = writeln!(section, "    \"isolation\": {{");
    let _ = writeln!(section, "      \"tenant_b_plans_per_sec_alone\": {b_alone_rate:.1},");
    let _ = writeln!(section, "      \"tenant_b_plans_per_sec_during_swaps\": {b_during_rate:.1},");
    let _ = writeln!(section, "      \"throughput_ratio_during_swaps\": {isolation_ratio:.3},");
    let _ = writeln!(section, "      \"live_swaps_performed\": {swaps_done}");
    let _ = writeln!(section, "    }},");
    let _ = writeln!(section, "    \"aggregated_sessions\": [");
    for (i, r) in agg_rows.iter().enumerate() {
        let comma = if i + 1 < agg_rows.len() { "," } else { "" };
        let _ = writeln!(
            section,
            "      {{ \"sessions\": {}, \"aggregate_plans_per_sec\": {:.1}, \"speedup_vs_1\": {:.3} }}{comma}",
            r.sessions, r.aggregate_plans_per_sec, r.speedup_vs_1
        );
    }
    let _ = writeln!(section, "    ]");
    section.push_str("  }");

    let out_dir = std::env::var("E2E_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = format!("{out_dir}/BENCH_serving.json");
    merge_multi_tenant_section(&path, &section);
    println!("merged multi_tenant section into {path}");

    if matches!(std::env::var("E2E_CHECK").as_deref(), Ok(v) if !v.is_empty() && v != "0") {
        assert!(
            isolation_ratio >= 0.3,
            "tenant_b throughput ratio {isolation_ratio:.2} during tenant_a hot-swaps below the 0.3 stall floor"
        );
        assert!(swaps_done >= 1, "no live hot-swap completed during tenant_b's measurement window");
        let four = agg_rows.iter().find(|r| r.sessions == 4).expect("4-session row");
        assert!(
            four.speedup_vs_1 >= 1.5,
            "aggregated 4-session speedup {:.2}x below the 1.5x floor",
            four.speedup_vs_1
        );
        println!("check mode: multi-tenant floors hold (isolation >= 0.3, live swaps > 0, 4-session agg >= 1.5x)");
    }
}

/// Splice the `multi_tenant` section into an existing `BENCH_serving.json`
/// (written by `serving_throughput`), replacing any previous section;
/// writes a standalone object when the file does not exist.
fn merge_multi_tenant_section(path: &str, section: &str) {
    let json = match std::fs::read_to_string(path) {
        Ok(base) => {
            // Drop a previous multi_tenant section (idempotent re-runs),
            // then strip the final closing brace and append.
            let base = match base.find(",\n  \"multi_tenant\":") {
                Some(i) => base[..i].to_string(),
                None => {
                    let trimmed = base.trim_end();
                    let without = trimmed.strip_suffix('}').unwrap_or(trimmed);
                    without.trim_end().to_string()
                }
            };
            format!("{base},\n  \"multi_tenant\": {section}\n}}\n")
        }
        Err(_) => format!("{{\n  \"multi_tenant\": {section}\n}}\n"),
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}
