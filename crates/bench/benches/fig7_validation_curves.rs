//! Figure 7 — validation error per training episode on the numeric workload:
//! (a) cardinality, with and without the sample bitmap; (b) cost, single-task
//! vs multitask.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::Synthetic);

    println!("== Figure 7(a) — cardinality validation error per episode ==");
    for (label, use_samples) in [("TLSTMCard", true), ("TLSTMNSCard", false)] {
        let fx = pipeline.extractor(None, &suite.train, use_samples);
        let mut est = estimator_core::CostEstimator::new(
            fx,
            estimator_core::ModelConfig {
                cell: RepresentationCellKind::Lstm,
                predicate: PredicateModelKind::TreeLstm,
                task: TaskMode::CardinalityOnly,
                feature_embed_dim: 16,
                hidden_dim: 32,
                estimation_hidden_dim: 16,
                ..Default::default()
            },
            estimator_core::TrainConfig {
                epochs: pipeline.scale.epochs,
                batch_size: 16,
                learning_rate: 0.003,
                ..Default::default()
            },
        );
        let plans: Vec<_> = suite.train.iter().map(|s| s.plan.clone()).collect();
        let stats = est.fit(&plans);
        let series: Vec<String> = stats.iter().map(|s| format!("{:.2}", s.validation_card_qerror_mean)).collect();
        println!("{label:<14} episodes: [{}]", series.join(", "));
    }

    println!("\n== Figure 7(b) — cost validation error per episode ==");
    for (label, task) in [("TLSTMCost", TaskMode::CostOnly), ("TLSTMMCost", TaskMode::Multitask)] {
        let fx = pipeline.extractor(None, &suite.train, true);
        let mut est = estimator_core::CostEstimator::new(
            fx,
            estimator_core::ModelConfig {
                cell: RepresentationCellKind::Lstm,
                predicate: PredicateModelKind::TreeLstm,
                task,
                feature_embed_dim: 16,
                hidden_dim: 32,
                estimation_hidden_dim: 16,
                ..Default::default()
            },
            estimator_core::TrainConfig {
                epochs: pipeline.scale.epochs,
                batch_size: 16,
                learning_rate: 0.003,
                ..Default::default()
            },
        );
        let plans: Vec<_> = suite.train.iter().map(|s| s.plan.clone()).collect();
        let stats = est.fit(&plans);
        let series: Vec<String> = stats.iter().map(|s| format!("{:.2}", s.validation_cost_qerror_mean)).collect();
        println!("{label:<14} episodes: [{}]", series.join(", "));
    }
}
