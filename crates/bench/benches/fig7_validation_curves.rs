//! Figure 7 — validation error per training episode on the numeric workload:
//! (a) cardinality, with and without the sample bitmap; (b) cost, single-task
//! vs multitask.
//!
//! The curves are the per-epoch statistics the registry loop returns from
//! the shared `TrainableEstimator::fit_plans`.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    let suite = pipeline.suite(WorkloadKind::Synthetic);

    println!("== Figure 7(a) — cardinality validation error per episode ==");
    for (label, backend) in [("TLSTMCard", "TLSTMCard"), ("TLSTMNSCard", "TLSTMNSCard")] {
        let run = run_backend(&registry, backend, &pipeline, &suite);
        let series: Vec<String> = run.epochs.iter().map(|s| format!("{:.2}", s.validation_card_qerror_mean)).collect();
        println!("{label:<14} episodes: [{}]", series.join(", "));
    }

    println!("\n== Figure 7(b) — cost validation error per episode ==");
    for (label, backend) in [("TLSTMCost", "TLSTMCost"), ("TLSTMMCost", "TLSTMM")] {
        let run = run_backend(&registry, backend, &pipeline, &suite);
        let series: Vec<String> = run.epochs.iter().map(|s| format!("{:.2}", s.validation_cost_qerror_mean)).collect();
        println!("{label:<14} episodes: [{}]", series.join(", "));
    }
}
