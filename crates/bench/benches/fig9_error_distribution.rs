//! Figure 9 — distribution (25th/50th/75th percentile box plots) of the
//! cardinality and cost errors on the JOB workload for PG, the hash-bitmap
//! tree model and the rule-embedding + pooling tree model.
//!
//! Every backend is a registry name; one loop produces both targets.
use bench::{run_backend, BackendRun, EstimatorRegistry, Pipeline};
use metrics::ErrorSummary;
use workloads::WorkloadKind;

fn print_box(label: &str, errors: &[f64]) {
    let p25 = ErrorSummary::percentile_of(errors, 0.25);
    let p50 = ErrorSummary::percentile_of(errors, 0.50);
    let p75 = ErrorSummary::percentile_of(errors, 0.75);
    println!("{label:<18} p25 {p25:>10.2}   p50 {p50:>10.2}   p75 {p75:>10.2}");
}

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    let suite = pipeline.suite(WorkloadKind::JobStrings);

    let runs: Vec<(&str, BackendRun)> = [("Pg", "PG"), ("TLSTMHashM", "TLSTMHashM"), ("TPoolEmbRM", "TPoolEmbRM")]
        .into_iter()
        .map(|(label, backend)| (label, run_backend(&registry, backend, &pipeline, &suite)))
        .collect();

    println!("== Figure 9(a) — cardinality error distribution on JOB ==");
    for (label, run) in &runs {
        print_box(&format!("{label}Card"), &run.card_qerrors);
    }
    println!("\n== Figure 9(b) — cost error distribution on JOB ==");
    for (label, run) in &runs {
        print_box(&format!("{label}Cost"), &run.cost_qerrors);
    }
}
