//! Figure 9 — distribution (25th/50th/75th percentile box plots) of the
//! cardinality and cost errors on the JOB workload for PG, the hash-bitmap
//! tree model and the rule-embedding + pooling tree model.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use metrics::ErrorSummary;
use strembed::StringEncoding;
use workloads::WorkloadKind;

fn print_box(label: &str, errors: &[f64]) {
    let p25 = ErrorSummary::percentile_of(errors, 0.25);
    let p50 = ErrorSummary::percentile_of(errors, 0.50);
    let p75 = ErrorSummary::percentile_of(errors, 0.75);
    println!("{label:<18} p25 {p25:>10.2}   p50 {p50:>10.2}   p75 {p75:>10.2}");
}

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let (pg_card, pg_cost) = pipeline.pg_errors(&suite);

    let (hash_est, hash_test) = pipeline.train_tree_model(
        &suite,
        RepresentationCellKind::Lstm,
        PredicateModelKind::TreeLstm,
        TaskMode::Multitask,
        Some(StringEncoding::Hash),
        true,
    );
    let (hash_card, hash_cost) = pipeline.tree_errors(&hash_est, &hash_test);

    let (pool_est, pool_test) = pipeline.train_tree_model(
        &suite,
        RepresentationCellKind::Lstm,
        PredicateModelKind::MinMaxPool,
        TaskMode::Multitask,
        Some(StringEncoding::EmbedRule),
        true,
    );
    let (pool_card, pool_cost) = pipeline.tree_errors(&pool_est, &pool_test);

    println!("== Figure 9(a) — cardinality error distribution on JOB ==");
    print_box("PgCard", &pg_card);
    print_box("TLSTMHashMCard", &hash_card);
    print_box("TPoolEmbRMCard", &pool_card);
    println!("\n== Figure 9(b) — cost error distribution on JOB ==");
    print_box("PgCost", &pg_cost);
    print_box("TLSTMHashMCost", &hash_cost);
    print_box("TPoolEmbRMCost", &pool_cost);
}
