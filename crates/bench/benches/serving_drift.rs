//! Online learning loop under workload drift — the closed feedback loop of
//! PR 7 measured end to end: feedback capture cost on the serving hot path,
//! drift-induced degradation of a frozen model, and how much of that
//! degradation the refresh controller claws back by fine-tuning on
//! executed ground truth and republishing through the catalog.
//!
//! Run with `cargo bench -p bench --bench serving_drift` (after
//! `serving_throughput` / `serving_multi_tenant`, whose `BENCH_serving.json`
//! this bench extends with a `drift` section).  Three measurements:
//!
//! * **Capture overhead** — batch estimation throughput of two tenants
//!   serving identical weights, one with the `FeedbackLog` enabled and one
//!   without.  Capture is one uncontended `RwLock` read plus a sharded
//!   ring-buffer append per batch, so the ratio should be ~1.0.
//! * **Drift degradation** — a model trained on phase 0 of a drifting-zipf
//!   workload serves the final phase (hot tables and hot years migrated to
//!   a disjoint window); mean cardinality q-error before and after.
//! * **Closed-loop recovery** — the `RefreshController` samples logged
//!   plans, executes them for ground truth, detects the q-error window
//!   exceeding the frozen baseline and republishes a fine-tuned model; the
//!   recovered fraction of the drift-induced degradation is recorded, along
//!   with the wall time of the refresh tick itself.
//!
//! With `E2E_CHECK` set, floors are asserted: capture throughput ratio
//! ≥ 0.95 (≤ 5% hot-path cost) and recovery fraction ≥ 0.5 (the closed
//! loop wins back at least half the degradation the frozen tenant keeps).

use bench::time_reps;
use estimator_core::{CostEstimator, ModelConfig, TrainConfig};
use featurize::{EncodedPlan, EncodingConfig, FeatureExtractor};
use imdb::{generate_imdb, Database, GeneratorConfig};
use metrics::q_error;
use query::PlanNode;
use serving::{
    FeedbackConfig, ModelCatalog, RefreshConfig, RefreshController, RefreshOutcome, ServedTier, Session, TenantBackend,
};
use std::fmt::Write as _;
use std::sync::Arc;
use strembed::HashBitmapEncoder;
use workloads::{DriftConfig, DriftGenerator, QuerySample};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// A compact estimator sized for the drift workload (the drift phases span
/// two tables and a narrow year window, so the small model fits phase 0
/// well and makes the out-of-distribution shift visible).
fn make_estimator(db: &Arc<Database>, epochs: usize) -> CostEstimator {
    let cfg = EncodingConfig::from_database(db, 8, 32);
    let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
    CostEstimator::new(
        fx,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, seed: 7, ..Default::default() },
        TrainConfig { epochs, batch_size: 8, learning_rate: 0.005, seed: 7, ..Default::default() },
    )
}

/// Mean cardinality q-error of one served phase (encode + batch estimate).
fn serve_phase(session: &Session, encoded: &[EncodedPlan], samples: &[QuerySample]) -> f64 {
    let estimates = session.estimate_encoded(encoded).expect("published model");
    let total: f64 = estimates.iter().zip(samples).map(|((_, card), s)| q_error(*card, s.true_cardinality())).sum();
    total / samples.len() as f64
}

fn main() {
    // The fine-tune loop needs a model that actually fits phase 0; the
    // 1-epoch smoke default of the table benches underfits it, so this
    // bench carries its own default.
    if std::env::var("E2E_EPOCHS").is_err() {
        std::env::set_var("E2E_EPOCHS", "20");
    }
    let epochs = env_usize("E2E_EPOCHS", 20);
    let phases = env_usize("E2E_DRIFT_PHASES", 3).max(2);
    let queries_per_phase = env_usize("E2E_DRIFT_QUERIES", 80);
    let reps = env_usize("E2E_BENCH_REPS", 3).max(1);
    let scale: f64 = std::env::var("E2E_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    // The tiny-generator shape (scaled by E2E_SCALE): drift dynamics — a
    // small model fitting phase 0 well, then degrading on the migrated
    // hot window — are calibrated against this database profile.
    let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: (800.0 * scale) as usize, sample_size: 64, seed: 7 }));
    let drift_cfg = DriftConfig { phases, queries_per_phase, skew: 1.5, ..Default::default() };
    let generator = DriftGenerator::new(&db, drift_cfg);
    let phase0 = generator.phase(0);
    let drifted = generator.phase(phases - 1);
    println!(
        "== serving drift ({phases} phases x {queries_per_phase} queries, skew {:.1}, {epochs} epochs) ==",
        drift_cfg.skew
    );

    // Train on phase 0 and roll both tenants out from the same checkpoint:
    // "frozen" never learns, "loop" gets the feedback log + controller.
    let train_plans: Vec<PlanNode> = phase0.samples.iter().map(|s| s.plan.clone()).collect();
    let mut trained = make_estimator(&db, epochs);
    println!("training phase-0 model ({} plans)...", train_plans.len());
    trained.fit(&train_plans);
    let ckpt = std::env::temp_dir().join(format!("e2e-drift-{}.ckpt", std::process::id()));
    trained.save_checkpoint(&ckpt).expect("save phase-0 checkpoint");

    let catalog = Arc::new(ModelCatalog::new());
    for tenant in ["frozen", "loop"] {
        let factory_db = db.clone();
        catalog.register_factory(tenant, Box::new(move || TenantBackend::tree(make_estimator(&factory_db, 1))));
        catalog.install_checkpoint(tenant, &ckpt).expect("install phase-0 checkpoint");
    }
    let feedback = catalog.enable_feedback("loop", FeedbackConfig::default());

    let frozen = catalog.session("frozen").expect("frozen");
    let looped = catalog.session("loop").expect("loop");
    let encode_via = |session: &Session, samples: &[QuerySample]| -> Vec<EncodedPlan> {
        samples.iter().map(|s| session.encode(&s.plan).expect("tree backend")).collect()
    };
    // Encoding through the loop session registers the plans for ground
    // truth; the frozen tenant serves the same encodings.
    let phase0_encoded = encode_via(&looped, &phase0.samples);
    let drifted_encoded = encode_via(&looped, &drifted.samples);

    // --- Drift: serve phase 0 healthy, freeze the baseline, migrate. ---
    let frozen_healthy = serve_phase(&frozen, &phase0_encoded, &phase0.samples);
    let loop_healthy = serve_phase(&looped, &phase0_encoded, &phase0.samples);
    let replica = {
        let mut r = make_estimator(&db, epochs);
        r.resume_from_checkpoint(&ckpt).expect("resume replica");
        r
    };
    let refreshed_ckpt = std::env::temp_dir().join(format!("e2e-drift-refreshed-{}.ckpt", std::process::id()));
    let mut controller = RefreshController::new(
        Arc::clone(&catalog),
        "loop",
        feedback,
        db.clone(),
        replica,
        RefreshConfig {
            sample_budget: 256,
            window: 12,
            drift_factor: 1.3,
            min_pairs: 12,
            fine_tune_epochs: epochs.div_ceil(4).max(2),
            checkpoint_path: Some(refreshed_ckpt.clone()),
            ..Default::default()
        },
    );
    controller.tick().expect("baseline tick");

    let frozen_drifted = serve_phase(&frozen, &drifted_encoded, &drifted.samples);
    let loop_drifted = serve_phase(&looped, &drifted_encoded, &drifted.samples);
    println!(
        "frozen tenant: {frozen_healthy:.2} mean q-error healthy -> {frozen_drifted:.2} drifted \
         ({:.2}x degradation)",
        frozen_drifted / frozen_healthy
    );

    // --- Closed loop: tick until the controller republishes. ---
    let mut refresh_secs = 0.0;
    let mut generation = 0;
    for round in 0..4 {
        let start = std::time::Instant::now();
        let outcome = controller.tick().expect("drift tick");
        let elapsed = start.elapsed().as_secs_f64();
        match outcome {
            RefreshOutcome::Refreshed { generation: g, sampled, pairs, .. } => {
                refresh_secs = elapsed;
                generation = g;
                println!(
                    "refresh: republished generation {g} after sampling {sampled} plans \
                     ({pairs} training pairs, {:.1} ms tick)",
                    refresh_secs * 1e3
                );
                break;
            }
            outcome => {
                let _ = serve_phase(&looped, &drifted_encoded, &drifted.samples);
                assert!(round < 3, "controller never refreshed; last outcome {outcome:?}");
            }
        }
    }
    let loop_recovered = serve_phase(&looped, &drifted_encoded, &drifted.samples);
    let recovery = (loop_drifted - loop_recovered) / (loop_drifted - loop_healthy).max(1e-9);
    println!(
        "closed loop: {loop_healthy:.2} healthy -> {loop_drifted:.2} drifted -> {loop_recovered:.2} \
         recovered ({:.0}% of the degradation won back)",
        recovery * 100.0
    );
    let published = catalog.current("loop").expect("published");
    assert!(published.tree().expect("tree").has_quantized_weights(), "republish must re-quantize");
    assert!(published.tiered_aggregator().is_some(), "republished model must offer the tiered path");

    // --- Capture overhead: serve cost vs the marginal record cost. ---
    // An A/B throughput comparison (feedback on vs off) is hopeless here:
    // the true capture cost is well under 1% of a cold inference stream,
    // far below run-to-run scheduler noise.  So measure the two components
    // directly — the cold serve stream (checkpoint reinstalled in the
    // untimed `before` hook so every rep pays real inference, not cache
    // hits) and `record_batch` on the very same estimates — and report the
    // modeled throughput ratio serve / (serve + capture).  (Reinstalls bump
    // the tenant generation, which is why this section runs after the
    // closed-loop generation asserts.)
    let serve_stream = |session: &Session| {
        session.estimate_encoded(&phase0_encoded).expect("published model");
        session.estimate_encoded(&drifted_encoded).expect("published model");
    };
    let capture_reps = reps.max(5);
    let serve_secs = time_reps(
        capture_reps,
        || {
            catalog.install_checkpoint("loop", &ckpt).expect("reset for capture measurement");
        },
        || serve_stream(&looped),
    );
    let estimates0 = looped.estimate_encoded(&phase0_encoded).expect("published model");
    let estimates_d = looped.estimate_encoded(&drifted_encoded).expect("published model");
    let probe = catalog.feedback("loop").expect("feedback enabled");
    let record_secs = time_reps(
        capture_reps.max(50),
        || (),
        || {
            probe.log().record_batch(phase0_encoded.iter().map(|p| &p.signature).zip(&estimates0), ServedTier::Full);
            probe.log().record_batch(drifted_encoded.iter().map(|p| &p.signature).zip(&estimates_d), ServedTier::Full);
        },
    );
    let plans_served = (phase0_encoded.len() + drifted_encoded.len()) as f64;
    let off_rate = plans_served / serve_secs;
    let on_rate = plans_served / (serve_secs + record_secs);
    let capture_ratio = on_rate / off_rate;
    println!(
        "capture: {:.3} ms to serve {plans_served} plans cold, {:.4} ms to record their feedback \
         (throughput ratio {capture_ratio:.4})",
        serve_secs * 1e3,
        record_secs * 1e3
    );
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&refreshed_ckpt);

    // --- Extend BENCH_serving.json with the drift section. ---
    let mut section = String::from("{\n");
    let _ = writeln!(section, "    \"phases\": {phases},");
    let _ = writeln!(section, "    \"queries_per_phase\": {queries_per_phase},");
    let _ = writeln!(section, "    \"skew\": {:.2},", drift_cfg.skew);
    let _ = writeln!(section, "    \"capture\": {{");
    let _ = writeln!(section, "      \"plans_per_sec_feedback_off\": {off_rate:.1},");
    let _ = writeln!(section, "      \"plans_per_sec_feedback_on\": {on_rate:.1},");
    let _ = writeln!(section, "      \"throughput_ratio\": {capture_ratio:.3}");
    let _ = writeln!(section, "    }},");
    let _ = writeln!(section, "    \"frozen\": {{");
    let _ = writeln!(section, "      \"healthy_mean_qerror\": {frozen_healthy:.3},");
    let _ = writeln!(section, "      \"drifted_mean_qerror\": {frozen_drifted:.3}");
    let _ = writeln!(section, "    }},");
    let _ = writeln!(section, "    \"closed_loop\": {{");
    let _ = writeln!(section, "      \"healthy_mean_qerror\": {loop_healthy:.3},");
    let _ = writeln!(section, "      \"drifted_mean_qerror\": {loop_drifted:.3},");
    let _ = writeln!(section, "      \"recovered_mean_qerror\": {loop_recovered:.3},");
    let _ = writeln!(section, "      \"recovery_fraction\": {recovery:.3},");
    let _ = writeln!(section, "      \"refresh_tick_ms\": {:.2},", refresh_secs * 1e3);
    let _ = writeln!(section, "      \"republish_generation\": {generation}");
    let _ = writeln!(section, "    }}");
    section.push_str("  }");

    let out_dir = std::env::var("E2E_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = format!("{out_dir}/BENCH_serving.json");
    merge_drift_section(&path, &section);
    println!("merged drift section into {path}");

    if matches!(std::env::var("E2E_CHECK").as_deref(), Ok(v) if !v.is_empty() && v != "0") {
        assert!(
            capture_ratio >= 0.95,
            "feedback capture cost {:.1}% exceeds the 5% hot-path budget",
            (1.0 - capture_ratio) * 100.0
        );
        assert!(
            frozen_drifted > frozen_healthy,
            "drift failed to degrade the frozen tenant ({frozen_healthy:.2} -> {frozen_drifted:.2})"
        );
        assert!(
            recovery >= 0.5,
            "closed loop recovered only {:.0}% of the drift-induced degradation (floor 50%)",
            recovery * 100.0
        );
        assert_eq!(generation, 2, "republish must be the loop tenant's second generation");
        println!("check mode: drift floors hold (capture >= 0.95, recovery >= 0.5, republished gen 2)");
    }
}

/// Splice the `drift` section into an existing `BENCH_serving.json`
/// (written by `serving_throughput` and extended by `serving_multi_tenant`),
/// replacing any previous section; writes a standalone object when the file
/// does not exist.
fn merge_drift_section(path: &str, section: &str) {
    let json = match std::fs::read_to_string(path) {
        Ok(base) => {
            // Cut at a previous drift section (idempotent re-runs, even when
            // drift was the file's first key) or at the final closing brace.
            let head = match base.find("\"drift\":") {
                Some(i) => base[..i].trim_end().trim_end_matches(',').to_string(),
                None => {
                    let trimmed = base.trim_end();
                    trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end().to_string()
                }
            };
            if head == "{" || head.is_empty() {
                format!("{{\n  \"drift\": {section}\n}}\n")
            } else {
                format!("{head},\n  \"drift\": {section}\n}}\n")
            }
        }
        Err(_) => format!("{{\n  \"drift\": {section}\n}}\n"),
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}
