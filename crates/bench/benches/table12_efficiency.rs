//! Table 12 — estimation efficiency (milliseconds per query) on the JOB
//! workload: the traditional estimator, MSCN, and the tree models with and
//! without level-wise batched inference.
//!
//! Run with `cargo bench -p bench --bench table12_efficiency`.  Besides the
//! printed table, the harness writes `BENCH_table12.json` (into
//! `E2E_BENCH_OUT` or the current directory) recording plans/sec for each
//! path plus the headline speed-ups:
//!
//! * `batch_vs_per_node` — level-batched vs. one-plan-at-a-time inference
//!   (the paper's Table-12 comparison), and
//! * `batch_vs_reference` — the optimized batched path vs. the
//!   pre-optimization batched implementation kept in
//!   `estimator_core::batch::reference` (the regression guard for this
//!   repo's perf work).
//!
//! The harness runs at full database scale by default (`E2E_SCALE=1`):
//! ground truth goes through the counting executor, which never
//! materializes join tuples, so skewed star joins no longer force a scale
//! cap.  With `E2E_CHECK` set, the harness additionally asserts the
//! regression floors (`batch_vs_per_node >= 5`, `batch_vs_reference >= 2`)
//! and exits non-zero when they are violated — the mode CI's full-scale
//! smoke job runs in.

use bench::{time_reps, Pipeline};
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use mscn::{MscnConfig, MscnFeaturizer, MscnModel, MscnTrainer};
use pgest::TraditionalEstimator;
use std::fmt::Write as _;
use strembed::StringEncoding;
use workloads::WorkloadKind;

struct Row {
    label: String,
    ms_per_query: f64,
    plans_per_sec: f64,
}

fn report(rows: &mut Vec<Row>, label: &str, total_secs: f64, queries: usize) {
    let ms_per_query = total_secs * 1e3 / queries as f64;
    let plans_per_sec = queries as f64 / total_secs;
    println!("{label:<18} {ms_per_query:>10.3} ms/query {plans_per_sec:>12.1} plans/s   ({queries} queries)");
    rows.push(Row { label: label.to_string(), ms_per_query, plans_per_sec });
}

fn main() {
    // Table 12 measures batched estimation over the whole JOB workload, so
    // give the batch something to amortize over: a larger test set (without
    // growing the database or the training set above the default scale).
    if std::env::var("E2E_TEST_QUERIES").is_err() {
        std::env::set_var("E2E_TEST_QUERIES", "60");
    }
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let n = suite.test.len();
    let reps: usize = std::env::var("E2E_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    println!("== Table 12 — estimation efficiency ({n} queries, {reps} reps) ==");
    let mut rows: Vec<Row> = Vec::new();

    // PostgreSQL-style estimator.
    let pg = TraditionalEstimator::analyze(&pipeline.db);
    let secs = time_reps(
        reps,
        || (),
        || {
            for s in &suite.test {
                let mut plan = s.plan.clone();
                pg.estimate_plan(&mut plan);
            }
        },
    );
    report(&mut rows, "PostgreSQL", secs, n);

    // MSCN: per-query estimation (including featurization, as an optimizer
    // would pay it) vs. packed batch inference — every set element of every
    // query goes through one blocked matmul per layer (`estimate_batch`).
    let fx = MscnFeaturizer::new(pipeline.db.clone(), pipeline.enc_config.clone());
    let train: Vec<_> = suite.train.iter().map(|s| fx.featurize(&s.plan)).collect();
    let test: Vec<_> = suite.test.iter().map(|s| fx.featurize(&s.plan)).collect();
    let model = MscnModel::new(
        fx.table_dim(),
        fx.join_dim(),
        fx.predicate_dim(),
        MscnConfig { epochs: 2, ..Default::default() },
    );
    let mut mscn = MscnTrainer::new(model, &train);
    mscn.train(&train);
    let secs = time_reps(
        reps,
        || (),
        || {
            for s in &suite.test {
                let sets = fx.featurize(&s.plan);
                mscn.estimate(&sets);
            }
        },
    );
    report(&mut rows, "MSCN", secs, n);
    let secs = time_reps(
        reps,
        || (),
        || {
            mscn.estimate_batch(&test);
        },
    );
    report(&mut rows, "MSCNBatch", secs, n);

    // Tree models: TLSTM and TPool — four paths each.  The `*Ref` rows
    // re-create the pre-optimization behavior (seed-compat tape: eager
    // gradient allocation, a parameter copy per layer application) so the
    // speed-ups measure this PR's work, not just batching:
    //   <label>Ref      naive per-node path, as it shipped in the seed
    //   <label>         optimized per-node path (inference tape)
    //   <label>BatchRef pre-optimization level-batched path
    //   <label>Batch    optimized level-batched path
    let truths: Vec<f64> = suite.test.iter().map(|s| s.true_cardinality()).collect();
    let mut speedups = String::new();
    let mut floor_checks: Vec<(String, f64, f64)> = Vec::new();
    let mut q8_checks: Vec<(String, f64, f64)> = Vec::new();
    for (label, predicate) in [("TLSTM", PredicateModelKind::TreeLstm), ("TPool", PredicateModelKind::MinMaxPool)] {
        let (mut est, test_encoded) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Lstm,
            predicate,
            TaskMode::Multitask,
            Some(StringEncoding::EmbedRule),
            true,
        );
        let per_node_ref = time_reps(
            reps,
            || (),
            || {
                for plan in &test_encoded {
                    est.estimate_encoded_reference(plan);
                }
            },
        );
        report(&mut rows, &format!("{label}Ref"), per_node_ref, n);
        let per_node = time_reps(
            reps,
            || (),
            || {
                for plan in &test_encoded {
                    est.estimate_encoded(plan);
                }
            },
        );
        report(&mut rows, label, per_node, n);
        let reference = time_reps(
            reps,
            || (),
            || {
                est.estimate_encoded_batch_reference(&test_encoded);
            },
        );
        report(&mut rows, &format!("{label}BatchRef"), reference, n);
        let batched = time_reps(
            reps,
            || (),
            || {
                est.estimate_encoded_batch(&test_encoded);
            },
        );
        report(&mut rows, &format!("{label}Batch"), batched, n);

        // Int8 tier: the same level-batched path over per-channel quantized
        // weights (dynamic per-column activation quantization, dispatched
        // i8 dot kernels).  The accuracy cost is recorded alongside the
        // throughput win as the relative mean q-error shift vs the f32 rows.
        assert!(est.ensure_quantized(), "bench model must quantize at least one weight matrix");
        let batched_q8 = time_reps(
            reps,
            || (),
            || {
                est.estimate_encoded_batch_quant(&test_encoded);
            },
        );
        report(&mut rows, &format!("{label}BatchQ8"), batched_q8, n);
        let q8_vs_batch = batched / batched_q8;
        let mean_qerr = |ests: &[(f64, f64)]| {
            let errs: Vec<f64> = ests
                .iter()
                .zip(&truths)
                .filter(|(_, &t)| t > 0.0)
                .map(|(&(_, card), &t)| metrics::q_error(card, t))
                .collect();
            errs.iter().sum::<f64>() / errs.len().max(1) as f64
        };
        let qerr_f32 = mean_qerr(&est.estimate_encoded_batch(&test_encoded));
        let qerr_q8 = mean_qerr(&est.estimate_encoded_batch_quant(&test_encoded));
        let qerr_shift = (qerr_q8 - qerr_f32) / qerr_f32;

        let vs_per_node = per_node_ref / batched;
        let vs_per_node_optimized = per_node / batched;
        let vs_reference = reference / batched;
        floor_checks.push((label.to_string(), vs_per_node, vs_reference));
        q8_checks.push((label.to_string(), q8_vs_batch, qerr_shift));
        println!(
            "{label}: batch is {vs_per_node:.1}x naive per-node ({vs_per_node_optimized:.1}x optimized per-node), \
             {vs_reference:.1}x pre-optimization batch"
        );
        println!(
            "{label}: int8 tier is {q8_vs_batch:.1}x the f32 batch; mean card q-error {qerr_f32:.3} -> {qerr_q8:.3} \
             ({:+.1}% shift)",
            qerr_shift * 100.0
        );
        if !speedups.is_empty() {
            speedups.push(',');
        }
        let _ = write!(
            speedups,
            "\n    \"{}\": {{ \"batch_vs_per_node\": {:.3}, \"batch_vs_per_node_optimized\": {:.3}, \
             \"batch_vs_reference\": {:.3}, \"q8_vs_batch\": {:.3}, \"mean_qerr_f32\": {:.4}, \
             \"mean_qerr_q8\": {:.4}, \"qerr_rel_shift\": {:.4} }}",
            label.to_lowercase(),
            vs_per_node,
            vs_per_node_optimized,
            vs_reference,
            q8_vs_batch,
            qerr_f32,
            qerr_q8,
            qerr_shift
        );
    }

    // Emit the machine-readable trajectory record.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"table12_efficiency\",");
    let _ = writeln!(json, "  \"host\": {},", bench::host_capabilities_json());
    let _ = writeln!(json, "  \"queries\": {n},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"estimator\": \"{}\", \"ms_per_query\": {:.6}, \"plans_per_sec\": {:.1} }}{comma}",
            r.label, r.ms_per_query, r.plans_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{{speedups}\n  }}");
    json.push_str("}\n");

    let out_dir = std::env::var("E2E_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = format!("{out_dir}/BENCH_table12.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");

    // Check mode (CI smoke): fail loudly when the recorded regression
    // floors are violated, so the scale cap can never silently return.
    if matches!(std::env::var("E2E_CHECK").as_deref(), Ok(v) if !v.is_empty() && v != "0") {
        for (label, vs_per_node, vs_reference) in &floor_checks {
            assert!(*vs_per_node >= 5.0, "{label}: batch_vs_per_node {vs_per_node:.2}x below the 5x regression floor");
            assert!(
                *vs_reference >= 2.0,
                "{label}: batch_vs_reference {vs_reference:.2}x below the 2x regression floor"
            );
        }
        for (label, q8_vs_batch, qerr_shift) in &q8_checks {
            // Recalibrated from 2x when the f32 batch denominator gained
            // the explicit AVX2+FMA GEMM tier (the int8 rows kept their
            // absolute throughput; their *relative* edge over f32 shrank
            // because f32 got ~4-5x faster).  The int8 tier must still
            // never lose to the f32 batch it escalates from.
            assert!(*q8_vs_batch >= 1.0, "{label}: q8_vs_batch {q8_vs_batch:.2}x below the 1x regression floor");
            assert!(
                *qerr_shift <= 0.10,
                "{label}: int8 tier degrades mean q-error by {:.1}% (> 10% budget)",
                qerr_shift * 100.0
            );
        }
        println!(
            "check mode: speed-up floors hold (batch_vs_per_node >= 5x, batch_vs_reference >= 2x, \
             q8_vs_batch >= 1x, q-error shift <= 10%)"
        );
    }
}
