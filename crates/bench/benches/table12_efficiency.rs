//! Table 12 — estimation efficiency (milliseconds per query) on the JOB
//! workload: the traditional estimator, MSCN, and the tree models with and
//! without level-wise batched inference.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use mscn::{MscnConfig, MscnFeaturizer, MscnModel, MscnTrainer};
use pgest::TraditionalEstimator;
use std::time::Instant;
use strembed::StringEncoding;
use workloads::WorkloadKind;

fn report(label: &str, total_ms: f64, queries: usize) {
    println!("{label:<14} {:>10.3} ms/query   ({queries} queries)", total_ms / queries as f64);
}

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let n = suite.test.len();
    println!("== Table 12 — estimation efficiency ==");

    // PostgreSQL-style estimator.
    let pg = TraditionalEstimator::analyze(&pipeline.db);
    let start = Instant::now();
    for s in &suite.test {
        let mut plan = s.plan.clone();
        pg.estimate_plan(&mut plan);
    }
    report("PostgreSQL", start.elapsed().as_secs_f64() * 1e3, n);

    // MSCN (one by one vs whole-set timing; MSCN has no tree to batch, so the
    // "batch" variant just amortizes featurization).
    let fx = MscnFeaturizer::new(pipeline.db.clone(), pipeline.enc_config.clone());
    let train: Vec<_> = suite.train.iter().map(|s| fx.featurize(&s.plan)).collect();
    let test: Vec<_> = suite.test.iter().map(|s| fx.featurize(&s.plan)).collect();
    let model = MscnModel::new(
        fx.table_dim(),
        fx.join_dim(),
        fx.predicate_dim(),
        MscnConfig { epochs: 2, ..Default::default() },
    );
    let mut mscn = MscnTrainer::new(model, &train);
    mscn.train(&train);
    let start = Instant::now();
    for s in &suite.test {
        let sets = fx.featurize(&s.plan);
        mscn.estimate(&sets);
    }
    report("MSCN", start.elapsed().as_secs_f64() * 1e3, n);
    let start = Instant::now();
    for s in &test {
        mscn.estimate(s);
    }
    report("MSCNBatch", start.elapsed().as_secs_f64() * 1e3, n);

    // Tree models: TLSTM and TPool, one-by-one vs level-batched.
    for (label, predicate) in
        [("TLSTM", PredicateModelKind::TreeLstm), ("TPool", PredicateModelKind::MinMaxPool)]
    {
        let (est, test_encoded) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Lstm,
            predicate,
            TaskMode::Multitask,
            Some(StringEncoding::EmbedRule),
            true,
        );
        let start = Instant::now();
        for plan in &test_encoded {
            est.estimate_encoded(plan);
        }
        report(label, start.elapsed().as_secs_f64() * 1e3, n);
        let start = Instant::now();
        est.estimate_encoded_batch(&test_encoded);
        report(&format!("{label}Batch"), start.elapsed().as_secs_f64() * 1e3, n);
    }
}
