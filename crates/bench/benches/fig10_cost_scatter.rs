//! Figure 10 — estimated vs real cost, bucketed by the quartile of the real
//! cost, for PGCost, the no-rule embedding model and the rule+pooling model.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use pgest::TraditionalEstimator;
use strembed::StringEncoding;
use workloads::WorkloadKind;

fn print_scatter(label: &str, pairs: &[(f64, f64)]) {
    // Bucket the queries by quartile of the real cost and report the mean
    // estimated cost per bucket (the "series" of the paper's scatter plot).
    let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("{label}:");
    let q = (sorted.len() / 4).max(1);
    for (i, chunk) in sorted.chunks(q).take(4).enumerate() {
        let real_mean = chunk.iter().map(|p| p.0).sum::<f64>() / chunk.len() as f64;
        let est_mean = chunk.iter().map(|p| p.1).sum::<f64>() / chunk.len() as f64;
        println!("  quartile {i}: real≈{real_mean:>12.1}  estimated≈{est_mean:>12.1}");
    }
}

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobStrings);

    let pg = TraditionalEstimator::analyze(&pipeline.db);
    let pg_pairs: Vec<(f64, f64)> = suite
        .test
        .iter()
        .map(|s| {
            let mut plan = s.plan.clone();
            let (_, cost) = pg.estimate_plan(&mut plan);
            (s.true_cost(), cost)
        })
        .collect();
    print_scatter("PGCost", &pg_pairs);

    for (label, encoding, predicate) in [
        ("TLSTMEmbNRMCost", StringEncoding::EmbedNoRule, PredicateModelKind::TreeLstm),
        ("TPoolEmbRMCost", StringEncoding::EmbedRule, PredicateModelKind::MinMaxPool),
    ] {
        let (est, test) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Lstm,
            predicate,
            TaskMode::Multitask,
            Some(encoding),
            true,
        );
        let pairs: Vec<(f64, f64)> = test.iter().map(|p| (p.true_cost, est.estimate_encoded(p).0)).collect();
        print_scatter(label, &pairs);
    }
}
