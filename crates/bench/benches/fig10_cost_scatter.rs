//! Figure 10 — estimated vs real cost, bucketed by the quartile of the real
//! cost, for PGCost, the no-rule embedding model and the rule+pooling model.
//!
//! The (real, estimated) pairs come straight from the registry loop's trait
//! estimates aligned with the suite's ground truth.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use workloads::WorkloadKind;

fn print_scatter(label: &str, pairs: &[(f64, f64)]) {
    // Bucket the queries by quartile of the real cost and report the mean
    // estimated cost per bucket (the "series" of the paper's scatter plot).
    let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("{label}:");
    let q = (sorted.len() / 4).max(1);
    for (i, chunk) in sorted.chunks(q).take(4).enumerate() {
        let real_mean = chunk.iter().map(|p| p.0).sum::<f64>() / chunk.len() as f64;
        let est_mean = chunk.iter().map(|p| p.1).sum::<f64>() / chunk.len() as f64;
        println!("  quartile {i}: real≈{real_mean:>12.1}  estimated≈{est_mean:>12.1}");
    }
}

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    let suite = pipeline.suite(WorkloadKind::JobStrings);

    for (label, backend) in [("PGCost", "PG"), ("TLSTMEmbNRMCost", "TLSTMEmbNRM"), ("TPoolEmbRMCost", "TPoolEmbRM")] {
        let run = run_backend(&registry, backend, &pipeline, &suite);
        let pairs: Vec<(f64, f64)> = suite
            .test
            .iter()
            .zip(run.estimates.iter())
            .map(|(s, e)| (s.true_cost(), e.cost.expect("cost-capable backend")))
            .collect();
        print_scatter(label, &pairs);
    }
}
