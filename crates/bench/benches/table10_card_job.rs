//! Table 10 — cardinality q-errors on the JOB (string-predicate) workload:
//! PGCard, TLSTMHashCard, TLSTMEmbNRCard, TLSTMEmbRCard, TPoolEmbRCard.
//!
//! The learned rows are the multitask string-encoding backends of the
//! registry, reported on the cardinality head.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use metrics::ReportTable;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let mut table = ReportTable::new("Table 10 — cardinality q-errors on the JOB (strings) workload");
    for (label, backend) in [
        ("PGCard", "PG"),
        ("TLSTMHashCard", "TLSTMHashM"),
        ("TLSTMEmbNRCard", "TLSTMEmbNRM"),
        ("TLSTMEmbRCard", "TLSTMEmbRM"),
        ("TPoolEmbRCard", "TPoolEmbRM"),
    ] {
        let run = run_backend(&registry, backend, &pipeline, &suite);
        table.add_errors(label, &run.card_qerrors);
    }
    table.print();
}
