//! Table 10 — cardinality q-errors on the JOB (string-predicate) workload:
//! PGCard, TLSTMHashCard, TLSTMEmbNRCard, TLSTMEmbRCard, TPoolEmbRCard.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use metrics::ReportTable;
use strembed::StringEncoding;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobStrings);
    let mut table = ReportTable::new("Table 10 — cardinality q-errors on the JOB (strings) workload");
    let (pg_card, _) = pipeline.pg_errors(&suite);
    table.add_errors("PGCard", &pg_card);
    let variants: [(&str, StringEncoding, PredicateModelKind); 4] = [
        ("TLSTMHashCard", StringEncoding::Hash, PredicateModelKind::TreeLstm),
        ("TLSTMEmbNRCard", StringEncoding::EmbedNoRule, PredicateModelKind::TreeLstm),
        ("TLSTMEmbRCard", StringEncoding::EmbedRule, PredicateModelKind::TreeLstm),
        ("TPoolEmbRCard", StringEncoding::EmbedRule, PredicateModelKind::MinMaxPool),
    ];
    for (label, encoding, predicate) in variants {
        let (est, test) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Lstm,
            predicate,
            TaskMode::Multitask,
            Some(encoding),
            true,
        );
        table.add_errors(label, &pipeline.tree_errors(&est, &test).0);
    }
    table.print();
}
