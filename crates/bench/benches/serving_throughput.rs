//! Serving throughput under a DP plan enumerator — the workload the paper's
//! estimator actually faces inside an optimizer, which Table 12 does not
//! exercise: every query expands into many candidate join orders sharing
//! almost all of their subtrees, templates recur across optimization rounds,
//! and several estimator sessions run concurrently.
//!
//! Run with `cargo bench -p bench --bench serving_throughput`.  The harness
//! measures, over an enumeration stream of `E2E_SERVING_ROUNDS` rounds ×
//! `E2E_SERVING_QUERIES` queries × their candidate join orders:
//!
//! * **Memoization speedup** — the subtree-memoized serving path
//!   (`ServingEstimator`, cold cache at stream start) vs. the
//!   memoization-disabled level-batched path on the identical stream, single
//!   thread; plus the subtree-cache hit rate (node-level: fraction of
//!   submitted plan nodes served without a fresh embedding).
//! * **Encode pipeline** — fresh per-plan featurization (bitmap memo
//!   disabled: the pre-memo pipeline, bit-identical output) vs. the
//!   signature-memoized batch encode against the shared encode cache over
//!   the identical stream, plus the sample-bitmap memo hit rate over one
//!   fresh-style pass and the end-to-end raw-plans→estimates throughput of
//!   [`estimator_core::ServingEstimator::estimate_plans`].
//! * **Concurrent-session scaling** — 1/2/4/8 serving threads, each scoring
//!   its own full copy of the stream (staggered query offsets, like
//!   independent clients with recurring templates) against the shared
//!   sharded cache; aggregate plans/s per thread count.  On a multi-core
//!   host this compounds CPU scaling with cross-session cache sharing; on a
//!   single core (the `cpus` field says which) it isolates the sharing
//!   effect — aggregate throughput still rises because a subtree any
//!   session embedded is served to every other session from the cache.
//!
//! * **Worker runtime** — the enumeration stream routed through a
//!   [`serving::BatchAggregator`] attached to a pinned
//!   [`serving::WorkerPool`] of 1/2/4/8 workers, every oversized wave
//!   split across the pool's per-worker cache shards (with sibling work
//!   stealing).  Records aggregate plans/s per pool size, chunk/steal
//!   counters and scaling efficiency.  On a single-core host (the `cpus`
//!   field says which) the aggregate cannot rise with pool size — the
//!   floor there is **anti-collapse**: splitting must not destroy
//!   throughput against the 1-worker pool.
//!
//! * **Warm start** — time-to-first-estimate of a cold fit vs a
//!   `load_checkpoint` of the same model (the startup path of a serving
//!   process).  Set `E2E_SERVING_CHECKPOINT=<path>` to persist the trained
//!   model there and, on later runs, skip training entirely by loading it.
//!
//! Results go to `BENCH_serving.json` (into `E2E_BENCH_OUT` or the current
//! directory).  With `E2E_CHECK` set, regression floors are asserted:
//! memoization speedup ≥ 3x, node-level hit rate ≥ 0.85, memoized encode
//! ≥ 3x the fresh featurization with a bitmap-memo hit rate ≥ 0.8 and a
//! live end-to-end `estimate_plans` measurement, ≥ 1.5x aggregate
//! throughput at 4 threads, checkpoint warm start ≥ 5x faster than a
//! cold fit, the tiered int8 section's quant ≥ 0.3x / tiered ≥ 0.1x
//! of the memoized f32 stream, and every worker-pool row ≥ 0.4x of the
//! 1-worker aggregate with at least one wave actually split — the guards
//! CI's smoke job runs.

use bench::{time_reps, Pipeline};
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use featurize::EncodedPlan;
use query::PlanNode;
use serving::{BatchAggregator, WorkerPool};
use std::fmt::Write as _;
use std::sync::Arc;
use workloads::{generate_enumeration_workload, EnumerationConfig, WorkloadKind};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let queries = env_usize("E2E_SERVING_QUERIES", 12);
    let rounds = env_usize("E2E_SERVING_ROUNDS", 5);
    let max_candidates = env_usize("E2E_SERVING_CANDIDATES", 120);
    let reps = env_usize("E2E_BENCH_REPS", 3).max(1);
    if std::env::var("E2E_EPOCHS").is_err() {
        // Serving throughput does not depend on model quality; keep the
        // training phase short unless the caller asks otherwise.
        std::env::set_var("E2E_EPOCHS", "2");
    }
    let cpus = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);

    let pipeline = Pipeline::new();
    let suite = pipeline.suite(WorkloadKind::JobLight);
    let mk_estimator = || {
        pipeline.tree_estimator(
            &suite.train,
            RepresentationCellKind::Lstm,
            PredicateModelKind::MinMaxPool,
            TaskMode::Multitask,
            None,
            true,
        )
    };
    let train_plans: Vec<PlanNode> = suite.train.iter().map(|s| s.plan.clone()).collect();

    // Fit cold — or warm-start from a persisted checkpoint when
    // E2E_SERVING_CHECKPOINT names an existing file.
    let persist = std::env::var("E2E_SERVING_CHECKPOINT").ok();
    let mut est = mk_estimator();
    let mut cold_fit_secs = None;
    match persist.as_deref().filter(|p| std::path::Path::new(p).exists()) {
        Some(path) => {
            let started = std::time::Instant::now();
            est.load_checkpoint(path).unwrap_or_else(|e| panic!("cannot warm-start from {path}: {e}"));
            println!("warm start: loaded {path} in {:.1} ms (no training)", started.elapsed().as_secs_f64() * 1e3);
        }
        None => {
            let started = std::time::Instant::now();
            est.fit(&train_plans);
            cold_fit_secs = Some(started.elapsed().as_secs_f64());
            if let Some(path) = &persist {
                est.save_checkpoint(path).unwrap_or_else(|e| panic!("cannot persist checkpoint to {path}: {e}"));
                println!("persisted checkpoint to {path}");
            }
        }
    }
    // Publish posture: derive the int8 tier (a no-op when the checkpoint
    // already carried it).  The f32 paths below are untouched by this.
    est.ensure_quantized();
    let est = est;

    // The enumeration stream: per query, all connected left-deep candidate
    // join orders (capped), encoded once up front — serving scores encoded
    // plans, exactly as the Table-12 harness does.
    let workload = generate_enumeration_workload(
        &pipeline.db,
        EnumerationConfig {
            num_queries: queries,
            min_joins: 3,
            max_joins: 4,
            max_candidates_per_query: max_candidates,
            seed: 31,
        },
    );
    let encoded: Vec<Vec<EncodedPlan>> =
        workload.iter().map(|s| s.candidates.iter().map(|c| est.encode(c)).collect()).collect();
    let plans_per_round: usize = encoded.iter().map(|q| q.len()).sum();
    let plans_per_session = plans_per_round * rounds;
    let nodes_per_round: usize = workload.iter().map(|s| s.total_nodes()).sum();
    let distinct_subtrees: usize = {
        let mut seen = std::collections::HashSet::new();
        for s in &workload {
            for c in &s.candidates {
                for n in c.nodes_preorder() {
                    seen.insert(n.signature_hash());
                }
            }
        }
        seen.len()
    };
    println!(
        "== serving throughput — DP enumeration ({} queries x {rounds} rounds, {plans_per_round} candidates/round, \
         {nodes_per_round} nodes/round, {distinct_subtrees} distinct subtrees, {cpus} cpu(s)) ==",
        workload.len()
    );

    // --- Memoization speedup, single thread, identical stream. ---
    let serving = est.serving();
    let run_stream_nonmemo = || {
        for _ in 0..rounds {
            for q in &encoded {
                // Chunked exactly like the memoized path (sequential, one
                // tape per group): `estimate_encoded_batch` on the whole
                // candidate set would fan out over rayon on multicore
                // hosts, and the speedup must isolate memoization, not
                // compare against a parallel baseline.
                for chunk in q.chunks(estimator_core::batch::GROUP_SIZE) {
                    est.estimate_encoded_batch(chunk);
                }
            }
        }
    };
    let run_stream_memo = |offset: usize| {
        for _ in 0..rounds {
            for i in 0..encoded.len() {
                let q = &encoded[(i + offset) % encoded.len()];
                let refs: Vec<&EncodedPlan> = q.iter().collect();
                serving.estimate_encoded_batch(&refs);
            }
        }
    };

    let secs_nonmemo = time_reps(reps, || (), run_stream_nonmemo);
    let secs_memo = time_reps(reps, || serving.cache().clear(), || run_stream_memo(0));
    let node_hit_rate = serving.cache().node_hit_rate();
    let (lookup_hits, lookup_misses) = serving.cache().stats();
    let memo_speedup = secs_nonmemo / secs_memo;
    println!(
        "memoization: {:.1} plans/s -> {:.1} plans/s ({memo_speedup:.1}x), node hit rate {:.1}%, \
         {} cached subtrees",
        plans_per_session as f64 / secs_nonmemo,
        plans_per_session as f64 / secs_memo,
        node_hit_rate * 100.0,
        serving.cache().len(),
    );

    // Memoized results must be exactly the memoization-free results.
    {
        serving.cache().clear();
        let q = &encoded[0];
        let refs: Vec<&EncodedPlan> = q.iter().collect();
        assert_eq!(serving.estimate_encoded_batch(&refs), est.estimate_encoded_batch(q), "memoized estimates diverged");
    }

    // --- Encode pipeline: fresh vs signature-memoized featurization. ---
    // "Fresh" is the pre-memo pipeline: per-plan recursive encode with the
    // bitmap memo disabled on an extractor clone (bit-identical features,
    // no reuse of any kind).  "Memoized" batches each query's candidates
    // through the shared encode cache, cold at stream start — the first
    // round pays the distinct-subtree encodes, later rounds are almost
    // entirely signature lookups, exactly like the estimation memo above.
    let mut fresh_fx = est.extractor().clone();
    fresh_fx.use_bitmap_memo = false;
    let secs_encode_fresh = time_reps(
        reps,
        || (),
        || {
            for _ in 0..rounds {
                for s in &workload {
                    for c in &s.candidates {
                        std::hint::black_box(fresh_fx.encode_plan(c));
                    }
                }
            }
        },
    );
    let secs_encode_memo = time_reps(
        reps,
        || serving.encode_cache().clear(),
        || {
            for _ in 0..rounds {
                for s in &workload {
                    std::hint::black_box(serving.encode_plans(&s.candidates));
                }
            }
        },
    );
    let encode_speedup = secs_encode_fresh / secs_encode_memo;
    let encode_cache_hit_rate = serving.encode_cache().hit_rate();
    let encode_cache_entries = serving.encode_cache().len();
    // Bitmap-memo hit rate over one fresh-style pass (memo enabled, cleared
    // first): across an enumeration stream almost every scan repeats a
    // (table, predicate) pair some other candidate already swept.
    est.extractor().clear_bitmap_memo();
    for s in &workload {
        for c in &s.candidates {
            std::hint::black_box(est.extractor().encode_plan(c));
        }
    }
    let bitmap_hit_rate = est.extractor().bitmap_memo_hit_rate();
    // End-to-end front door: raw PlanNodes in, (cost, cardinality) out,
    // through one memoized encode+embed pipeline.
    let secs_end_to_end = time_reps(
        reps,
        || {
            serving.encode_cache().clear();
            serving.cache().clear();
        },
        || {
            for _ in 0..rounds {
                for s in &workload {
                    std::hint::black_box(serving.estimate_plans(&s.candidates));
                }
            }
        },
    );
    let end_to_end_plans_per_sec = plans_per_session as f64 / secs_end_to_end;
    println!(
        "encode: fresh {:.1} plans/s -> memoized {:.1} plans/s ({encode_speedup:.1}x), \
         encode-cache hit rate {:.1}% ({encode_cache_entries} entries), bitmap memo hit rate {:.1}%, \
         end-to-end {end_to_end_plans_per_sec:.1} plans/s",
        plans_per_session as f64 / secs_encode_fresh,
        plans_per_session as f64 / secs_encode_memo,
        encode_cache_hit_rate * 100.0,
        bitmap_hit_rate * 100.0,
    );
    // Memoized featurization must be bit-identical to the fresh pipeline.
    {
        let fresh: Vec<EncodedPlan> = workload[0].candidates.iter().map(|c| fresh_fx.encode_plan(c)).collect();
        let memoized = serving.encode_plans(&workload[0].candidates);
        assert!(
            memoized.iter().zip(&fresh).all(|(m, f)| m.as_ref() == f),
            "memoized encode diverged from fresh featurization"
        );
    }

    // --- Tiered int8 serving: quantized pass + top-k f32 escalation. ---
    // The quantized pass scores every candidate through the int8 tier
    // (its own memo cache); the tiered path additionally re-scores the
    // `top_k` cheapest-looking candidates per batch at full precision —
    // the optimizer keeps exact costs exactly where the plan choice is
    // made.  Both streams are compared against the all-f32 memoized
    // stream above (identical stream shape, cold caches at start).
    let top_k = env_usize("E2E_SERVING_TOPK", 8);
    assert!(serving.has_quantized_weights(), "quantized tier must be available for the tiered bench");
    let run_stream_quant = || {
        for _ in 0..rounds {
            for q in &encoded {
                let refs: Vec<&EncodedPlan> = q.iter().collect();
                serving.estimate_encoded_batch_quant(&refs);
            }
        }
    };
    let run_stream_tiered = || {
        for _ in 0..rounds {
            for q in &encoded {
                let refs: Vec<&EncodedPlan> = q.iter().collect();
                serving.estimate_encoded_batch_tiered(&refs, top_k);
            }
        }
    };
    let secs_quant = time_reps(reps, || serving.quant_cache().clear(), run_stream_quant);
    let secs_tiered = time_reps(
        reps,
        || {
            serving.cache().clear();
            serving.quant_cache().clear();
        },
        run_stream_tiered,
    );
    let quant_speedup = secs_memo / secs_quant;
    let tiered_speedup = secs_memo / secs_tiered;
    let escalated_per_round: usize = encoded.iter().map(|q| top_k.min(q.len())).sum();
    let escalation_fraction = escalated_per_round as f64 / plans_per_round as f64;
    println!(
        "tiered: quant pass {:.1} plans/s ({quant_speedup:.2}x f32 memo), tiered top-{top_k} {:.1} plans/s \
         ({tiered_speedup:.2}x f32 memo, {:.1}% escalated)",
        plans_per_session as f64 / secs_quant,
        plans_per_session as f64 / secs_tiered,
        escalation_fraction * 100.0
    );
    // The escalated candidates must carry f32-tier bits.
    {
        serving.cache().clear();
        serving.quant_cache().clear();
        let refs: Vec<&EncodedPlan> = encoded[0].iter().collect();
        let tiered = serving.estimate_encoded_batch_tiered(&refs, top_k);
        let full = est.estimate_encoded_batch(&encoded[0]);
        let exact = tiered.iter().zip(&full).filter(|(t, f)| t == f).count();
        assert!(exact >= top_k.min(refs.len()), "tiered wave escalated only {exact} candidates to full precision");
    }

    // --- Concurrent sessions: 1/2/4/8 threads over the shared cache. ---
    struct ThreadRow {
        threads: usize,
        aggregate_plans_per_sec: f64,
        speedup_vs_1: f64,
    }
    let mut thread_rows: Vec<ThreadRow> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let secs = time_reps(
            reps,
            || serving.cache().clear(),
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let offset = t * encoded.len() / threads;
                        scope.spawn(move || run_stream_memo(offset));
                    }
                });
            },
        );
        let aggregate = (threads * plans_per_session) as f64 / secs;
        let speedup = thread_rows.first().map(|base| aggregate / base.aggregate_plans_per_sec).unwrap_or(1.0);
        println!(
            "{threads} session(s): {aggregate:>12.1} plans/s aggregate   ({speedup:.2}x vs 1 session, \
             efficiency {:.2})",
            speedup / threads as f64
        );
        thread_rows.push(ThreadRow { threads, aggregate_plans_per_sec: aggregate, speedup_vs_1: speedup });
    }

    // --- Worker runtime: waves split across a pinned pool. ---
    // The same enumeration stream, but each query's candidate set goes
    // through a BatchAggregator attached to a WorkerPool: waves larger
    // than the split threshold are chunked across the pool (leader chunk
    // inline, the rest on per-worker cache shards, idle workers stealing).
    struct WorkerRow {
        workers: usize,
        pinned: usize,
        aggregate_plans_per_sec: f64,
        speedup_vs_1: f64,
        chunks_executed: u64,
        chunks_stolen: u64,
        waves: u64,
        waves_split: u64,
    }
    let largest_wave = encoded.iter().map(|q| q.len()).max().unwrap_or(0);
    let split_threshold = env_usize("E2E_SERVING_SPLIT", 16.min(largest_wave.saturating_sub(1)).max(1));
    let mut worker_rows: Vec<WorkerRow> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let pool = Arc::new(WorkerPool::new(workers));
        let agg = BatchAggregator::new(est.serving()).with_workers(Arc::clone(&pool), split_threshold);
        // Split waves must serve the bits of the unsplit path.
        {
            let direct = est.estimate_encoded_batch(&encoded[0]);
            assert_eq!(agg.estimate(&encoded[0]), direct, "split wave diverged from the unsplit serving path");
        }
        let secs = time_reps(
            reps,
            || {
                agg.serving().cache().clear();
                pool.clear_caches();
            },
            || {
                for _ in 0..rounds {
                    for q in &encoded {
                        agg.estimate(q);
                    }
                }
            },
        );
        let aggregate = plans_per_session as f64 / secs;
        let speedup = worker_rows.first().map(|base| aggregate / base.aggregate_plans_per_sec).unwrap_or(1.0);
        let pool_stats = pool.stats();
        let waves = agg.wave_stats();
        println!(
            "worker pool x{workers} ({} pinned): {aggregate:>12.1} plans/s   ({speedup:.2}x vs 1 worker)   \
             {} chunks ({} stolen), {}/{} waves split",
            pool_stats.pinned, pool_stats.executed, pool_stats.stolen, waves.waves_split, waves.waves
        );
        worker_rows.push(WorkerRow {
            workers,
            pinned: pool_stats.pinned,
            aggregate_plans_per_sec: aggregate,
            speedup_vs_1: speedup,
            chunks_executed: pool_stats.executed,
            chunks_stolen: pool_stats.stolen,
            waves: waves.waves,
            waves_split: waves.waves_split,
        });
    }

    // --- Warm start: cold fit vs checkpoint load to first estimate. ---
    // "Cold" is exactly the training wall time measured above (single
    // measurement; its first estimate would add microseconds to seconds of
    // fitting, so it is not re-run here); "warm" builds a fresh estimator,
    // loads the checkpoint and serves the first estimate — the whole
    // startup path of a fresh serving process (best of `reps`).  The warm
    // side thus measures slightly MORE work per start, making the reported
    // speedup conservative.
    let ckpt = std::env::temp_dir().join(format!("e2e-serving-warmstart-{}.ckpt", std::process::id()));
    est.save_checkpoint(&ckpt).expect("save warm-start checkpoint");
    let first_plan = std::slice::from_ref(&encoded[0][0]);
    let expected_first = est.estimate_encoded_batch(first_plan);
    let warm_load_secs = time_reps(
        reps,
        || (),
        || {
            let mut warm = mk_estimator();
            warm.load_checkpoint(&ckpt).expect("load warm-start checkpoint");
            assert_eq!(warm.estimate_encoded_batch(first_plan), expected_first, "warm-start estimates diverged");
        },
    );
    let _ = std::fs::remove_file(&ckpt);
    let warm_speedup = cold_fit_secs.map(|cold| cold / warm_load_secs);
    match (cold_fit_secs, warm_speedup) {
        (Some(cold), Some(speedup)) => println!(
            "warm start: cold fit {:.2} s -> checkpoint load {:.1} ms to first estimate ({speedup:.0}x)",
            cold,
            warm_load_secs * 1e3
        ),
        _ => println!(
            "warm start: checkpoint load {:.1} ms to first estimate (cold fit skipped this run)",
            warm_load_secs * 1e3
        ),
    }

    // --- Machine-readable trajectory record. ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serving_throughput\",");
    let _ = writeln!(json, "  \"host\": {},", bench::host_capabilities_json());
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"queries\": {},", workload.len());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"candidates_per_round\": {plans_per_round},");
    let _ = writeln!(json, "  \"plans_per_session\": {plans_per_session},");
    let _ = writeln!(json, "  \"nodes_per_round\": {nodes_per_round},");
    let _ = writeln!(json, "  \"distinct_subtrees\": {distinct_subtrees},");
    let _ = writeln!(json, "  \"memoization\": {{");
    let _ = writeln!(json, "    \"ms_per_plan_nonmemo\": {:.6},", secs_nonmemo * 1e3 / plans_per_session as f64);
    let _ = writeln!(json, "    \"ms_per_plan_memo\": {:.6},", secs_memo * 1e3 / plans_per_session as f64);
    let _ = writeln!(json, "    \"speedup\": {memo_speedup:.3},");
    let _ = writeln!(json, "    \"subtree_cache_hit_rate\": {node_hit_rate:.4},");
    let _ = writeln!(json, "    \"lookup_hits\": {lookup_hits},");
    let _ = writeln!(json, "    \"lookup_misses\": {lookup_misses}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"encode\": {{");
    let _ = writeln!(json, "    \"fresh_plans_per_sec\": {:.1},", plans_per_session as f64 / secs_encode_fresh);
    let _ = writeln!(json, "    \"memoized_plans_per_sec\": {:.1},", plans_per_session as f64 / secs_encode_memo);
    let _ = writeln!(json, "    \"speedup\": {encode_speedup:.3},");
    let _ = writeln!(json, "    \"encode_cache_hit_rate\": {encode_cache_hit_rate:.4},");
    let _ = writeln!(json, "    \"encode_cache_entries\": {encode_cache_entries},");
    let _ = writeln!(json, "    \"bitmap_memo_hit_rate\": {bitmap_hit_rate:.4},");
    let _ = writeln!(json, "    \"end_to_end_plans_per_sec\": {end_to_end_plans_per_sec:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"tiered\": {{");
    let _ = writeln!(json, "    \"top_k\": {top_k},");
    let _ = writeln!(json, "    \"escalation_fraction\": {escalation_fraction:.4},");
    let _ = writeln!(json, "    \"quant_plans_per_sec\": {:.1},", plans_per_session as f64 / secs_quant);
    let _ = writeln!(json, "    \"quant_speedup_vs_f32\": {quant_speedup:.3},");
    let _ = writeln!(json, "    \"tiered_plans_per_sec\": {:.1},", plans_per_session as f64 / secs_tiered);
    let _ = writeln!(json, "    \"tiered_speedup_vs_f32\": {tiered_speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"warm_start\": {{");
    let _ = match cold_fit_secs {
        Some(cold) => writeln!(json, "    \"cold_fit_secs\": {cold:.6},"),
        None => writeln!(json, "    \"cold_fit_secs\": null,"),
    };
    let _ = writeln!(json, "    \"checkpoint_load_secs\": {warm_load_secs:.6},");
    let _ = match warm_speedup {
        Some(speedup) => writeln!(json, "    \"speedup\": {speedup:.1}"),
        None => writeln!(json, "    \"speedup\": null"),
    };
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"threads\": [");
    for (i, r) in thread_rows.iter().enumerate() {
        let comma = if i + 1 < thread_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"threads\": {}, \"aggregate_plans_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}, \
             \"scaling_efficiency\": {:.3} }}{comma}",
            r.threads,
            r.aggregate_plans_per_sec,
            r.speedup_vs_1,
            r.speedup_vs_1 / r.threads as f64
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"worker_runtime\": {{");
    let _ = writeln!(json, "    \"split_threshold\": {split_threshold},");
    let _ = writeln!(json, "    \"largest_wave\": {largest_wave},");
    let _ = writeln!(json, "    \"pools\": [");
    for (i, r) in worker_rows.iter().enumerate() {
        let comma = if i + 1 < worker_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"workers\": {}, \"pinned\": {}, \"aggregate_plans_per_sec\": {:.1}, \
             \"speedup_vs_1\": {:.3}, \"scaling_efficiency\": {:.3}, \"chunks_executed\": {}, \
             \"chunks_stolen\": {}, \"waves\": {}, \"waves_split\": {} }}{comma}",
            r.workers,
            r.pinned,
            r.aggregate_plans_per_sec,
            r.speedup_vs_1,
            r.speedup_vs_1 / r.workers as f64,
            r.chunks_executed,
            r.chunks_stolen,
            r.waves,
            r.waves_split
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let out_dir = std::env::var("E2E_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = format!("{out_dir}/BENCH_serving.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");

    // Check mode (CI smoke): fail loudly when the serving floors regress.
    if matches!(std::env::var("E2E_CHECK").as_deref(), Ok(v) if !v.is_empty() && v != "0") {
        assert!(memo_speedup >= 3.0, "memoization speedup {memo_speedup:.2}x below the 3x regression floor");
        assert!(node_hit_rate >= 0.85, "subtree-cache hit rate {node_hit_rate:.3} below the 0.85 floor");
        let four = thread_rows.iter().find(|r| r.threads == 4).expect("4-thread row");
        assert!(
            four.speedup_vs_1 >= 1.5,
            "4-session aggregate speedup {:.2}x below the 1.5x regression floor",
            four.speedup_vs_1
        );
        if let Some(speedup) = warm_speedup {
            assert!(speedup >= 5.0, "checkpoint warm start only {speedup:.1}x faster than a cold fit (floor 5x)");
        }
        // Encode-pipeline floors: the signature memo must beat the fresh
        // pipeline by 3x over the stream (first round cold, later rounds
        // served from the cache), the bitmap memo must serve at least 80%
        // of sweeps on a fresh-style pass, and the end-to-end front door
        // must actually move plans.
        assert!(encode_speedup >= 3.0, "memoized encode speedup {encode_speedup:.2}x below the 3x regression floor");
        assert!(bitmap_hit_rate >= 0.8, "bitmap memo hit rate {bitmap_hit_rate:.3} below the 0.8 floor");
        assert!(end_to_end_plans_per_sec > 0.0, "end-to-end estimate_plans produced no throughput measurement");
        // The f32 baseline here is the *memoized* stream (92%+ subtree hit
        // rate), so the int8 tier competes against cache lookups rather
        // than raw inference; the floors guard against the quant tier or
        // the escalation merge becoming pathologically slow, not against
        // it beating memoized f32.  Typical ratios on the 1-cpu dev VM are
        // ~3.5-4x (quant) and ~0.9x (tiered), but both dip several-fold
        // under host contention, so the floors keep a wide margin.
        assert!(quant_speedup >= 0.3, "quant pass {quant_speedup:.2}x of memoized f32 below the 0.3x regression floor");
        assert!(
            tiered_speedup >= 0.1,
            "tiered top-{top_k} pass {tiered_speedup:.2}x of memoized f32 below the 0.1x regression floor"
        );
        // Worker-runtime floors.  True scaling demands multiple cores, so
        // the portable floor is anti-collapse: chunking waves across any
        // pool size must keep at least 0.4x of the 1-worker aggregate
        // (a lost wakeup, a serializing lock or a stealing livelock lands
        // far below that).  Splitting itself must actually engage whenever
        // the stream has a splittable wave.
        for r in &worker_rows {
            assert!(
                r.speedup_vs_1 >= 0.4,
                "{}-worker pool aggregate collapsed to {:.2}x of the 1-worker pool (floor 0.4x)",
                r.workers,
                r.speedup_vs_1
            );
            if largest_wave > split_threshold {
                assert!(
                    r.waves_split >= 1,
                    "no wave split despite a {largest_wave}-plan wave (threshold {split_threshold})"
                );
            }
        }
        println!(
            "check mode: serving floors hold (memo >= 3x, hit rate >= 0.85, encode memo >= 3x, bitmap memo >= 0.8, \
             4-session >= 1.5x, warm start >= 5x, quant >= 0.3x memo, tiered >= 0.1x memo, worker pools >= 0.4x \
             anti-collapse with waves splitting)"
        );
    }
}
