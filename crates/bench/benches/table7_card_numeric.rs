//! Table 7 — cardinality q-errors on the numeric workloads (JOB-light,
//! Synthetic, Scale) for PGCard, MSCNCard, TNNCard and TLSTMCard.
use bench::Pipeline;
use estimator_core::{PredicateModelKind, RepresentationCellKind, TaskMode};
use metrics::ReportTable;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    for (name, kind) in
        [("JOB-light", WorkloadKind::JobLight), ("Synthetic", WorkloadKind::Synthetic), ("Scale", WorkloadKind::Scale)]
    {
        let suite = pipeline.suite(kind);
        let mut table = ReportTable::new(format!("Table 7 — cardinality q-errors, {name} workload"));
        let (pg_card, _) = pipeline.pg_errors(&suite);
        table.add_errors("PGCard", &pg_card);
        table.add_errors("MSCNCard", &pipeline.mscn_errors(&suite, false, true));
        let (tnn, tnn_test) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Nn,
            PredicateModelKind::TreeLstm,
            TaskMode::CardinalityOnly,
            None,
            true,
        );
        table.add_errors("TNNCard", &pipeline.tree_errors(&tnn, &tnn_test).0);
        let (tlstm, tlstm_test) = pipeline.train_tree_model(
            &suite,
            RepresentationCellKind::Lstm,
            PredicateModelKind::TreeLstm,
            TaskMode::CardinalityOnly,
            None,
            true,
        );
        table.add_errors("TLSTMCard", &pipeline.tree_errors(&tlstm, &tlstm_test).0);
        table.print();
    }
}
