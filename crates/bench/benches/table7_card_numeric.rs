//! Table 7 — cardinality q-errors on the numeric workloads (JOB-light,
//! Synthetic, Scale) for PGCard, MSCNCard, TNNCard and TLSTMCard.
//!
//! All backends run through the registry's shared
//! train-once/checkpoint/eval loop; each row label maps onto its canonical
//! backend name.
use bench::{run_backend, EstimatorRegistry, Pipeline};
use metrics::ReportTable;
use workloads::WorkloadKind;

fn main() {
    let pipeline = Pipeline::new();
    let registry = EstimatorRegistry::standard();
    for (name, kind) in
        [("JOB-light", WorkloadKind::JobLight), ("Synthetic", WorkloadKind::Synthetic), ("Scale", WorkloadKind::Scale)]
    {
        let suite = pipeline.suite(kind);
        let mut table = ReportTable::new(format!("Table 7 — cardinality q-errors, {name} workload"));
        for (label, backend) in
            [("PGCard", "PG"), ("MSCNCard", "MSCNCard"), ("TNNCard", "TNNCard"), ("TLSTMCard", "TLSTMCard")]
        {
            let run = run_backend(&registry, backend, &pipeline, &suite);
            table.add_errors(label, &run.card_qerrors);
        }
        table.print();
    }
}
