//! Shared experiment pipeline for the reproduction benchmarks.
//!
//! Every bench binary (one per table/figure of the paper) drives the same
//! pipeline: generate the synthetic IMDB database, build a workload suite,
//! train the competing estimators and print the paper's rows.  Scale is
//! controlled by the `E2E_SCALE` (database size multiplier), `E2E_QUERIES`
//! (training queries) and `E2E_EPOCHS` environment variables so the same
//! harness can run as a quick smoke test or a longer, closer-to-paper run.
//! Ground-truth labeling uses the counting executor (no join-tuple
//! materialization), so the default `E2E_SCALE=1` is safe even for the
//! skewed 4-way star joins of the JOB-style workloads.

use engine::CostModel;
use estimator_core::{CostEstimator, ModelConfig, PredicateModelKind, RepresentationCellKind, TaskMode, TrainConfig};
use featurize::{EncodedPlan, EncodingConfig, FeatureExtractor};
use imdb::{generate_imdb, Database, GeneratorConfig};
use std::sync::Arc;
use strembed::{build_string_encoder, EmbedderConfig, HashBitmapEncoder, StringEncoding};
use workloads::{workload_strings, QuerySample, SuiteConfig, WorkloadKind, WorkloadSuite};

pub mod registry;

pub use registry::{run_backend, BackendRun, EstimatorRegistry};

/// Best-of-`reps` wall time of `f`: one untimed warmup call first (page
/// cache, tape buffer pools), then the fastest of `reps` timed repetitions —
/// the standard anti-noise estimator on a shared machine.  `before` runs
/// ahead of every call, outside the timed region, to reset shared state
/// (pass `|| ()` when there is none).
pub fn time_reps(reps: usize, mut before: impl FnMut(), mut f: impl FnMut()) -> f64 {
    before();
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        before();
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Host capability metadata as a single-line JSON object — logical cpus,
/// the raw runtime-detected SIMD feature set, and the **active dispatch
/// tier per kernel family**: `"simd_dispatch"` names what `nn::simd`
/// actually selected for this process (`"avx2+fma"` for the f32 GEMM/gate
/// kernels, `"avx2"` for the int8 kernels, `"scalar"` for both under
/// `E2E_FORCE_SCALAR`), which is what governs the recorded numbers —
/// `target_features` may list capabilities (e.g. `avx512f`) that no kernel
/// here dispatches on.  Every bench harness embeds this in its
/// `BENCH_*.json` so recorded numbers carry the hardware they came from.
pub fn host_capabilities_json() -> String {
    let cpus = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    #[allow(unused_mut)]
    let mut features: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
    }
    let features = features.iter().map(|f| format!("\"{f}\"")).collect::<Vec<_>>().join(", ");
    format!(
        "{{ \"cpus\": {cpus}, \"arch\": \"{}\", \"target_features\": [{features}], \
         \"simd_dispatch\": {{ \"f32\": \"{}\", \"int8\": \"{}\" }} }}",
        std::env::consts::ARCH,
        nn::simd::f32_path_name(),
        nn::simd::i8_path_name()
    )
}

/// Experiment scale knobs (read from the environment with small defaults).
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    pub n_titles: usize,
    pub train_queries: usize,
    pub test_queries: usize,
    pub epochs: usize,
}

impl BenchScale {
    /// Read the scale from `E2E_SCALE` / `E2E_QUERIES` / `E2E_TEST_QUERIES`
    /// / `E2E_EPOCHS`.
    pub fn from_env() -> Self {
        let scale: f64 = std::env::var("E2E_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        let train_queries =
            std::env::var("E2E_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or((120.0 * scale) as usize);
        let test_queries = std::env::var("E2E_TEST_QUERIES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or((train_queries / 4).clamp(20, 200));
        let epochs = std::env::var("E2E_EPOCHS").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
        BenchScale { n_titles: (2000.0 * scale) as usize, train_queries: train_queries.max(40), test_queries, epochs }
    }
}

/// One experiment environment: database, feature configuration, workloads.
pub struct Pipeline {
    pub db: Arc<Database>,
    pub scale: BenchScale,
    pub enc_config: EncodingConfig,
}

impl Pipeline {
    /// Build the database and encoding configuration at the current scale.
    pub fn new() -> Self {
        let scale = BenchScale::from_env();
        let db = Arc::new(generate_imdb(GeneratorConfig { n_titles: scale.n_titles, sample_size: 128, seed: 42 }));
        let enc_config = EncodingConfig::from_database(&db, 16, 128);
        Pipeline { db, scale, enc_config }
    }

    /// Build a workload suite of the given kind.
    pub fn suite(&self, kind: WorkloadKind) -> WorkloadSuite {
        WorkloadSuite::build(
            &self.db,
            kind,
            SuiteConfig { train_queries: self.scale.train_queries, test_queries: self.scale.test_queries, seed: 1000 },
        )
    }

    /// Construct a feature extractor with the requested string encoding.
    pub fn extractor(
        &self,
        encoding: Option<StringEncoding>,
        workload: &[QuerySample],
        use_samples: bool,
    ) -> FeatureExtractor {
        let string_encoder: Arc<dyn strembed::StringEncoder> = match encoding {
            None => Arc::new(HashBitmapEncoder::new(16)),
            Some(kind) => {
                let strings = workload_strings(workload);
                build_string_encoder(
                    &self.db,
                    &strings,
                    kind,
                    EmbedderConfig { dim: 16, max_rows_per_table: 300, epochs: 2, ..Default::default() },
                )
            }
        };
        let mut fx = FeatureExtractor::new(self.db.clone(), self.enc_config.clone(), string_encoder);
        fx.use_sample_bitmap = use_samples;
        fx
    }

    /// Build an **unfitted** tree-model estimator variant at the standard
    /// bench hyper-parameters (the registry's tree builders and the serving
    /// bench both start here).
    pub fn tree_estimator(
        &self,
        workload: &[QuerySample],
        cell: RepresentationCellKind,
        predicate: PredicateModelKind,
        task: TaskMode,
        encoding: Option<StringEncoding>,
        use_samples: bool,
    ) -> CostEstimator {
        let fx = self.extractor(encoding, workload, use_samples);
        let model_config = ModelConfig {
            cell,
            predicate,
            task,
            feature_embed_dim: 16,
            hidden_dim: 32,
            estimation_hidden_dim: 16,
            ..Default::default()
        };
        let train_config = TrainConfig {
            epochs: self.scale.epochs,
            batch_size: 16,
            learning_rate: 0.003,
            validation_fraction: 0.1,
            early_stop_patience: None,
            seed: 7,
        };
        CostEstimator::new(fx, model_config, train_config)
    }

    /// Train a tree model variant and return its fitted estimator plus the
    /// encoded test plans.
    pub fn train_tree_model(
        &self,
        suite: &WorkloadSuite,
        cell: RepresentationCellKind,
        predicate: PredicateModelKind,
        task: TaskMode,
        encoding: Option<StringEncoding>,
        use_samples: bool,
    ) -> (CostEstimator, Vec<EncodedPlan>) {
        let mut estimator = self.tree_estimator(&suite.train, cell, predicate, task, encoding, use_samples);
        let train_plans: Vec<_> = suite.train.iter().map(|s| s.plan.clone()).collect();
        estimator.fit(&train_plans);
        let test_encoded: Vec<EncodedPlan> = suite.test.iter().map(|s| estimator.encode(&s.plan)).collect();
        (estimator, test_encoded)
    }

    /// The cost model used for ground truth (exposed for efficiency benches).
    pub fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_capabilities_json_names_the_dispatch_path_per_kernel_family() {
        let json = host_capabilities_json();
        assert!(json.contains("\"cpus\":"), "missing cpus: {json}");
        assert!(json.contains("\"target_features\":"), "missing features: {json}");
        assert!(
            json.contains("\"f32\": \"avx2+fma\"") || json.contains("\"f32\": \"scalar\""),
            "missing f32 dispatch tier: {json}"
        );
        assert!(
            json.contains("\"int8\": \"avx2\"") || json.contains("\"int8\": \"scalar\""),
            "missing int8 dispatch tier: {json}"
        );
        // The two families move together: forcing scalar forces both.
        let scalar = json.contains("\"f32\": \"scalar\"");
        assert_eq!(scalar, json.contains("\"int8\": \"scalar\""), "kernel families disagree on forced-scalar: {json}");
    }

    #[test]
    fn scale_env_defaults_are_sane() {
        let s = BenchScale::from_env();
        assert!(s.n_titles >= 500);
        assert!(s.train_queries >= 40);
        assert!(s.test_queries >= 20);
        assert!(s.epochs >= 1);
    }
}
