//! Named estimator backends and the generic train-once/checkpoint/eval loop.
//!
//! Every table/figure bench used to carry its own copy of the per-model
//! setup (build extractor, pick model variant, fit, encode the test set,
//! compute q-errors) — once per backend family, with three incompatible
//! shapes.  [`EstimatorRegistry`] replaces that with a name → builder map
//! over `Box<dyn TrainableEstimator>`, and [`run_backend`] is the one loop
//! every bench drives:
//!
//! 1. build the named backend for a pipeline + workload suite,
//! 2. fit it once on the suite's training plans,
//! 3. if the backend checkpoints: save, reload into a **freshly built**
//!    instance and assert the reload serves identical estimates (the
//!    warm-start guarantee, exercised on every bench run),
//! 4. evaluate the test plans through the trait and return q-errors per
//!    target the backend actually models.
//!
//! Backend names follow the paper's row labels (`PG`, `MSCNCard`,
//! `TLSTMCard`, `TPoolEmbRM`, ...); tables reporting a single target of a
//! multitask backend map their row label onto the canonical backend name.

use crate::Pipeline;
use estimator_core::{
    EpochStats, PlanEstimate, PredicateModelKind, RepresentationCellKind, TaskMode, TrainableEstimator,
};
use metrics::q_error;
use mscn::{MscnConfig, MscnEstimator};
use pgest::TraditionalEstimator;
use query::PlanNode;
use std::collections::BTreeMap;
use strembed::StringEncoding;
use workloads::WorkloadSuite;

/// Builds one backend instance for a pipeline + suite.
///
/// Instances are `Send + Sync` so a built (and fitted or
/// checkpoint-loaded) backend can go straight into a multi-tenant
/// `serving::ModelCatalog` slot as well as through the bench loop.
pub type BackendBuilder =
    Box<dyn Fn(&Pipeline, &WorkloadSuite) -> Box<dyn TrainableEstimator + Send + Sync> + Send + Sync>;

/// Name-keyed backend builders.
pub struct EstimatorRegistry {
    builders: BTreeMap<&'static str, BackendBuilder>,
}

impl EstimatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EstimatorRegistry { builders: BTreeMap::new() }
    }

    /// Register (or replace) a backend builder under a name.
    pub fn register(&mut self, name: &'static str, builder: BackendBuilder) {
        self.builders.insert(name, builder);
    }

    /// All registered backend names.
    pub fn names(&self) -> Vec<&'static str> {
        self.builders.keys().copied().collect()
    }

    /// Instantiate a backend by name (unfitted).
    ///
    /// # Panics
    /// Panics on an unknown name, listing the registered ones.
    pub fn build(
        &self,
        name: &str,
        pipeline: &Pipeline,
        suite: &WorkloadSuite,
    ) -> Box<dyn TrainableEstimator + Send + Sync> {
        let builder = self
            .builders
            .get(name)
            .unwrap_or_else(|| panic!("unknown estimator backend {name:?}; registered: {:?}", self.names()));
        builder(pipeline, suite)
    }

    /// The standard paper backends: the traditional estimator, MSCN for
    /// each target, and the tree-model variants of Tables 7/8/10/11 and
    /// Figures 7–10.
    pub fn standard() -> Self {
        let mut reg = EstimatorRegistry::new();
        reg.register("PG", Box::new(|p, _| Box::new(TraditionalEstimator::analyze(&p.db))));
        for (name, predict_cost) in [("MSCNCard", false), ("MSCNCost", true)] {
            reg.register(
                name,
                Box::new(move |p, _| {
                    let config = MscnConfig {
                        epochs: p.scale.epochs,
                        hidden_dim: 32,
                        predict_cost,
                        learning_rate: 0.003,
                        ..Default::default()
                    };
                    Box::new(MscnEstimator::new(p.db.clone(), p.enc_config.clone(), config))
                }),
            );
        }

        use PredicateModelKind::{MinMaxPool, TreeLstm};
        use RepresentationCellKind::{Lstm, Nn};
        use TaskMode::{CardinalityOnly, CostOnly, Multitask};
        type Variant =
            (&'static str, RepresentationCellKind, PredicateModelKind, TaskMode, Option<StringEncoding>, bool);
        const TREE_VARIANTS: &[Variant] = &[
            // Numeric-workload variants (hash-bitmap string encoder).
            ("TNNCard", Nn, TreeLstm, CardinalityOnly, None, true),
            ("TLSTMCard", Lstm, TreeLstm, CardinalityOnly, None, true),
            ("TLSTMNSCard", Lstm, TreeLstm, CardinalityOnly, None, false),
            ("TLSTMCost", Lstm, TreeLstm, CostOnly, None, true),
            ("TNNM", Nn, TreeLstm, Multitask, None, true),
            ("TLSTMM", Lstm, TreeLstm, Multitask, None, true),
            ("TPoolM", Lstm, MinMaxPool, Multitask, None, true),
            // String-workload variants (workload-built string encoders).
            ("TLSTMHashM", Lstm, TreeLstm, Multitask, Some(StringEncoding::Hash), true),
            ("TLSTMEmbNRM", Lstm, TreeLstm, Multitask, Some(StringEncoding::EmbedNoRule), true),
            ("TLSTMEmbRM", Lstm, TreeLstm, Multitask, Some(StringEncoding::EmbedRule), true),
            ("TPoolEmbRM", Lstm, MinMaxPool, Multitask, Some(StringEncoding::EmbedRule), true),
        ];
        for &(name, cell, predicate, task, encoding, use_samples) in TREE_VARIANTS {
            reg.register(
                name,
                Box::new(move |p: &Pipeline, s: &WorkloadSuite| {
                    Box::new(p.tree_estimator(&s.train, cell, predicate, task, encoding, use_samples))
                        as Box<dyn TrainableEstimator + Send + Sync>
                }),
            );
        }
        reg
    }
}

impl Default for EstimatorRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

/// Everything one backend produced on one suite.
pub struct BackendRun {
    pub backend: String,
    /// Per-epoch training statistics (empty for non-iterative backends).
    pub epochs: Vec<EpochStats>,
    /// Trait estimates for `suite.test`, in order.
    pub estimates: Vec<PlanEstimate>,
    /// q-errors per target, over the test plans the backend models
    /// (empty when the capability is absent).
    pub card_qerrors: Vec<f64>,
    pub cost_qerrors: Vec<f64>,
}

/// The shared train-once/checkpoint/eval loop (see the module docs).
pub fn run_backend(registry: &EstimatorRegistry, name: &str, pipeline: &Pipeline, suite: &WorkloadSuite) -> BackendRun {
    let mut est = registry.build(name, pipeline, suite);
    let train_plans: Vec<PlanNode> = suite.train.iter().map(|s| s.plan.clone()).collect();
    let epochs = est.fit_plans(&train_plans);
    assert!(est.is_fitted(), "{name}: backend did not become fitted");

    let test_plans: Vec<PlanNode> = suite.test.iter().map(|s| s.plan.clone()).collect();
    let mut estimates = est.estimate_many(&test_plans);

    if est.capabilities().checkpointable {
        // Round-trip through a checkpoint on every bench run: the reloaded
        // model must reproduce the fitted model's estimates exactly, and the
        // evaluation below serves from the reload (the warm-start posture).
        let path = std::env::temp_dir().join(format!("e2e-registry-{}-{name}.ckpt", std::process::id()));
        est.save_checkpoint_to(&path).unwrap_or_else(|e| panic!("{name}: checkpoint save failed: {e}"));
        let mut warm = registry.build(name, pipeline, suite);
        warm.load_checkpoint_from(&path).unwrap_or_else(|e| panic!("{name}: checkpoint load failed: {e}"));
        let _ = std::fs::remove_file(&path);
        let warm_estimates = warm.estimate_many(&test_plans);
        assert_eq!(warm_estimates, estimates, "{name}: reloaded checkpoint diverged from the fitted model");
        estimates = warm_estimates;
    }

    let mut card_qerrors = Vec::new();
    let mut cost_qerrors = Vec::new();
    for (sample, estimate) in suite.test.iter().zip(estimates.iter()) {
        if let Some(card) = estimate.cardinality {
            card_qerrors.push(q_error(card, sample.true_cardinality().max(1.0)));
        }
        if let Some(cost) = estimate.cost {
            cost_qerrors.push(q_error(cost, sample.true_cost().max(1.0)));
        }
    }
    BackendRun { backend: name.to_string(), epochs, estimates, card_qerrors, cost_qerrors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_all_three_families() {
        let reg = EstimatorRegistry::standard();
        let names = reg.names();
        for expected in ["PG", "MSCNCard", "MSCNCost", "TNNCard", "TLSTMCard", "TLSTMM", "TPoolEmbRM", "TLSTMHashM"] {
            assert!(names.contains(&expected), "missing standard backend {expected}; have {names:?}");
        }
    }
}
