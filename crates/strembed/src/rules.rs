//! The pattern-rule DSL of Section 5.2.
//!
//! A rule is `⟨F, P, L⟩`: a string function `F ∈ {Prefix, Suffix}`, a pattern
//! `P` (a sequence of character-class tokens `PC`, `Pl`, `Pn`, `Ps` and exact
//! tokens `Pt(T)`), and a length `L`.  Applied to a tuple value the rule
//! finds the first region matching `P` and extracts the first (`Prefix`) or
//! last (`Suffix`) `L` characters of that region.  Rules generalize the
//! query substrings of the workload so the dictionary also covers strings
//! future queries will ask for.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One token of a pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatToken {
    /// `PC` — one or more capital letters.
    Capital,
    /// `Pl` — one or more lowercase letters.
    Lower,
    /// `Pn` — one or more digits.
    Digit,
    /// `Ps` — one or more whitespace characters.
    Space,
    /// `Pt(T)` — the exact string `T`.
    Token(String),
}

impl PatToken {
    fn class_of(c: char) -> Option<PatToken> {
        if c.is_ascii_uppercase() {
            Some(PatToken::Capital)
        } else if c.is_ascii_lowercase() {
            Some(PatToken::Lower)
        } else if c.is_ascii_digit() {
            Some(PatToken::Digit)
        } else if c.is_whitespace() {
            Some(PatToken::Space)
        } else {
            None
        }
    }

    fn matches_char(&self, c: char) -> bool {
        match self {
            PatToken::Capital => c.is_ascii_uppercase(),
            PatToken::Lower => c.is_ascii_lowercase(),
            PatToken::Digit => c.is_ascii_digit(),
            PatToken::Space => c.is_whitespace(),
            PatToken::Token(_) => false,
        }
    }
}

impl fmt::Display for PatToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatToken::Capital => write!(f, "PC"),
            PatToken::Lower => write!(f, "Pl"),
            PatToken::Digit => write!(f, "Pn"),
            PatToken::Space => write!(f, "Ps"),
            PatToken::Token(t) => write!(f, "Pt(\"{t}\")"),
        }
    }
}

/// A pattern: a sequence of tokens matched greedily and contiguously.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern(pub Vec<PatToken>);

impl Pattern {
    /// Segment a string into its character-class runs (e.g. `"Din05"` →
    /// `[PC, Pl, Pn]`).  Characters outside the four classes become exact
    /// tokens.
    pub fn segment(s: &str) -> Pattern {
        let mut tokens: Vec<PatToken> = Vec::new();
        for c in s.chars() {
            match PatToken::class_of(c) {
                Some(class) => {
                    if tokens.last() != Some(&class) {
                        tokens.push(class);
                    }
                }
                None => match tokens.last_mut() {
                    Some(PatToken::Token(t)) => t.push(c),
                    _ => tokens.push(PatToken::Token(c.to_string())),
                },
            }
        }
        Pattern(tokens)
    }

    /// Try to match the pattern starting exactly at byte-char position
    /// `start` of `chars`; returns the end position (exclusive) on success.
    fn match_at(&self, chars: &[char], start: usize) -> Option<usize> {
        let mut pos = start;
        for tok in &self.0 {
            match tok {
                PatToken::Token(t) => {
                    let t_chars: Vec<char> = t.chars().collect();
                    if pos + t_chars.len() > chars.len() || chars[pos..pos + t_chars.len()] != t_chars[..] {
                        return None;
                    }
                    pos += t_chars.len();
                }
                class => {
                    let mut n = 0;
                    while pos + n < chars.len() && class.matches_char(chars[pos + n]) {
                        n += 1;
                    }
                    if n == 0 {
                        return None;
                    }
                    pos += n;
                }
            }
        }
        Some(pos)
    }

    /// Find the first region of `value` that the pattern matches, returning
    /// `(start, end)` character positions.
    pub fn find(&self, value: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = value.chars().collect();
        for start in 0..=chars.len() {
            if let Some(end) = self.match_at(&chars, start) {
                if end > start {
                    return Some((start, end));
                }
            }
        }
        None
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.0 {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// The string function of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StringFunc {
    Prefix,
    Suffix,
}

/// A substring-extraction rule `⟨F, P, L⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    pub func: StringFunc,
    pub pattern: Pattern,
    pub len: usize,
}

impl Rule {
    /// Apply the rule to a tuple value, extracting a substring when the
    /// pattern matches a region at least `len` characters long.
    pub fn extract(&self, value: &str) -> Option<String> {
        let (start, end) = self.pattern.find(value)?;
        let chars: Vec<char> = value.chars().collect();
        if end - start < self.len {
            return None;
        }
        let slice = match self.func {
            StringFunc::Prefix => &chars[start..start + self.len],
            StringFunc::Suffix => &chars[end - self.len..end],
        };
        Some(slice.iter().collect())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fname = match self.func {
            StringFunc::Prefix => "Prefix",
            StringFunc::Suffix => "Suffix",
        };
        write!(f, "⟨{fname}, {}, {}⟩", self.pattern, self.len)
    }
}

/// Generate candidate rules mapping a workload query substring `query` to a
/// dataset value `value` that contains it (Tables 4 and 5 of the paper).
///
/// For every occurrence of `query` in `value` we emit:
/// * an exact-token prefix rule `⟨Prefix, Pt(query), |query|⟩`,
/// * class-generalized prefix rules over the region starting at the match,
/// * class-generalized suffix rules over the region ending at the match.
pub fn candidate_rules(query: &str, value: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    if query.is_empty() || !value.contains(query) {
        return rules;
    }
    let len = query.chars().count();
    rules.push(Rule { func: StringFunc::Prefix, pattern: Pattern(vec![PatToken::Token(query.to_string())]), len });

    let start_byte = value.find(query).expect("contains checked");
    let start = value[..start_byte].chars().count();
    let end = start + len;
    let chars: Vec<char> = value.chars().collect();

    // Prefix rules: pattern of the region from the match start to several end
    // points (end of match, end of value).
    for region_end in [end, chars.len()] {
        if region_end > start {
            let region: String = chars[start..region_end].iter().collect();
            rules.push(Rule { func: StringFunc::Prefix, pattern: Pattern::segment(&region), len });
        }
    }
    // Suffix rules: region from several start points (match start, value
    // start) to the match end.
    for region_start in [start, 0] {
        if end > region_start {
            let region: String = chars[region_start..end].iter().collect();
            rules.push(Rule { func: StringFunc::Suffix, pattern: Pattern::segment(&region), len });
        }
    }
    // Keep only rules that actually map this value back to the query string;
    // greedy class matching can otherwise shift the extracted region.
    rules.retain(|r| r.extract(value).as_deref() == Some(query));
    rules.sort_by_key(|r| format!("{r}"));
    rules.dedup();
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_splits_class_runs() {
        let p = Pattern::segment("Dinos in Kas");
        assert_eq!(
            p.0,
            vec![
                PatToken::Capital,
                PatToken::Lower,
                PatToken::Space,
                PatToken::Lower,
                PatToken::Space,
                PatToken::Capital,
                PatToken::Lower,
            ]
        );
        let p = Pattern::segment("(2002-06-29)");
        assert_eq!(p.0[0], PatToken::Token("(".into()));
        assert!(p.0.contains(&PatToken::Digit));
    }

    #[test]
    fn pattern_find_matches_region() {
        let p = Pattern(vec![PatToken::Digit, PatToken::Token("-".into()), PatToken::Digit]);
        let m = p.find("(2002-06-29)").expect("matches");
        assert_eq!(m, (1, 8)); // "2002-06"
        assert!(p.find("no digits here").is_none());
    }

    #[test]
    fn prefix_rule_extracts_din() {
        // "Dinos in Kas" → "Din" with ⟨Prefix, PC Pl, 3⟩
        let rule =
            Rule { func: StringFunc::Prefix, pattern: Pattern(vec![PatToken::Capital, PatToken::Lower]), len: 3 };
        assert_eq!(rule.extract("Dinos in Kas"), Some("Din".to_string()));
        assert_eq!(rule.extract("Schla in Tra"), Some("Sch".to_string()));
        // Region shorter than len: no extraction.
        assert_eq!(rule.extract("Ab cd"), None);
    }

    #[test]
    fn suffix_rule_extracts_date_component() {
        // "(2002-06-29)" → "06" with ⟨Suffix, Pn Pt("-") Pn, 2⟩ matching "2002-06".
        let rule = Rule {
            func: StringFunc::Suffix,
            pattern: Pattern(vec![PatToken::Digit, PatToken::Token("-".into()), PatToken::Digit]),
            len: 2,
        };
        assert_eq!(rule.extract("(2002-06-29)"), Some("06".to_string()));
        assert_eq!(rule.extract("(2014-08-26)"), Some("08".to_string()));
    }

    #[test]
    fn exact_token_rule_only_matches_that_token() {
        let rule = Rule { func: StringFunc::Prefix, pattern: Pattern(vec![PatToken::Token("Din".into())]), len: 3 };
        assert_eq!(rule.extract("Dinos in Kas"), Some("Din".to_string()));
        assert_eq!(rule.extract("Schla"), None);
    }

    #[test]
    fn candidate_rules_cover_the_query() {
        let cands = candidate_rules("Din", "Dinos in Kas");
        assert!(!cands.is_empty());
        // Every candidate must re-extract the query from the value it came from.
        for r in &cands {
            assert_eq!(r.extract("Dinos in Kas"), Some("Din".to_string()), "rule {r} failed");
        }
        // At least one candidate generalizes (contains a class token).
        assert!(cands.iter().any(|r| r.pattern.0.iter().any(|t| !matches!(t, PatToken::Token(_)))));
    }

    #[test]
    fn candidate_rules_for_infix_query() {
        let cands = candidate_rules("06", "(2002-06-29)");
        for r in &cands {
            assert_eq!(r.extract("(2002-06-29)"), Some("06".to_string()), "rule {r} failed");
        }
        // A generalized candidate should also extract from an unseen date.
        let generalizes = cands.iter().any(|r| r.extract("(2014-08-26)") == Some("08".to_string()));
        assert!(generalizes, "no candidate generalized to a new date");
    }

    #[test]
    fn no_candidates_when_query_absent() {
        assert!(candidate_rules("xyz", "Dinos in Kas").is_empty());
        assert!(candidate_rules("", "Dinos").is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn candidates_always_reextract_query(value in "[A-Za-z0-9 ()-]{1,20}", start in 0usize..10, len in 1usize..5) {
            let chars: Vec<char> = value.chars().collect();
            if start < chars.len() {
                let end = (start + len).min(chars.len());
                let query: String = chars[start..end].iter().collect();
                if !query.is_empty() {
                    for rule in candidate_rules(&query, &value) {
                        // Extraction from the originating value must reproduce
                        // a string of the query's length; the exact-token rule
                        // must reproduce the query itself.
                        if let Some(extracted) = rule.extract(&value) {
                            prop_assert_eq!(extracted.chars().count(), query.chars().count());
                        }
                    }
                }
            }
        }

        #[test]
        fn segment_pattern_matches_its_source(s in "[A-Za-z0-9 ]{1,15}") {
            let p = Pattern::segment(&s);
            prop_assert!(p.find(&s).is_some());
        }
    }
}
