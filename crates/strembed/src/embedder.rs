//! End-to-end construction of a string encoder from a database and a
//! workload: rule generation → rule selection → dictionary extraction →
//! skip-gram pre-training → trie indexing.

use crate::encoders::{EmbeddingEncoder, HashBitmapEncoder, StringEncoder};
use crate::rules::candidate_rules;
use crate::selection::select_rules;
use crate::skipgram::{SkipGramConfig, SkipGramModel};
use imdb::Database;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which string encoding to build (the `String` column of Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringEncoding {
    /// Per-character hash bitmap.
    Hash,
    /// Skip-gram embedding over whole column values only (no rules).
    EmbedNoRule,
    /// Skip-gram embedding over the rule-extracted substring dictionary.
    EmbedRule,
}

/// Configuration of the embedding pipeline.
#[derive(Debug, Clone, Copy)]
pub struct EmbedderConfig {
    /// Output vector width (hash bitmap width / embedding dimension).
    pub dim: usize,
    /// Maximum number of rows sampled per table when building sentences.
    pub max_rows_per_table: usize,
    /// Dictionary size bound `B` for rule selection.
    pub dictionary_bound: usize,
    /// Skip-gram training epochs.
    pub epochs: usize,
    /// RNG seed for skip-gram initialization.
    pub seed: u64,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig { dim: 16, max_rows_per_table: 500, dictionary_bound: 4000, epochs: 3, seed: 17 }
    }
}

/// Collect a sample of string values per (table, column).
fn sample_string_values(db: &Database, max_rows: usize) -> Vec<(String, String, Vec<String>)> {
    let mut out = Vec::new();
    for def in &db.schema().tables {
        let Some(table) = db.table(&def.name) else { continue };
        for col in &def.columns {
            if col.ty != imdb::ColumnType::Str {
                continue;
            }
            let step = (table.n_rows() / max_rows.max(1)).max(1);
            let values: Vec<String> = (0..table.n_rows())
                .step_by(step)
                .filter_map(|r| table.str(&col.name, r).map(|s| s.to_string()))
                .collect();
            out.push((def.name.clone(), col.name.clone(), values));
        }
    }
    out
}

/// Strip LIKE wildcards from workload query strings to get their literal core.
fn literal(s: &str) -> String {
    s.chars().filter(|&c| c != '%' && c != '_').collect()
}

/// Build a string encoder of the requested kind.
///
/// `workload_strings` are the string operands appearing in the (training)
/// workload — LIKE patterns keep their wildcards here; the literal core is
/// used for rule generation.
pub fn build_string_encoder(
    db: &Database,
    workload_strings: &[String],
    encoding: StringEncoding,
    config: EmbedderConfig,
) -> Arc<dyn StringEncoder> {
    match encoding {
        StringEncoding::Hash => Arc::new(HashBitmapEncoder::new(config.dim.max(32))),
        StringEncoding::EmbedNoRule | StringEncoding::EmbedRule => {
            let samples = sample_string_values(db, config.max_rows_per_table);
            let queries: Vec<String> = workload_strings.iter().map(|s| literal(s)).filter(|s| !s.is_empty()).collect();

            // The dictionary: either rule-extracted substrings (plus the raw
            // query strings) or whole column values only.
            let dictionary: BTreeSet<String> = match encoding {
                StringEncoding::EmbedRule => {
                    let mut candidates = Vec::new();
                    for q in &queries {
                        let mut found = 0;
                        for (_, _, values) in &samples {
                            for v in values {
                                if v.contains(q.as_str()) {
                                    candidates.extend(candidate_rules(q, v));
                                    found += 1;
                                    if found >= 3 {
                                        break;
                                    }
                                }
                            }
                            if found >= 3 {
                                break;
                            }
                        }
                    }
                    let dataset_values: Vec<String> = samples.iter().flat_map(|(_, _, v)| v.iter().cloned()).collect();
                    let selected = select_rules(&candidates, &dataset_values, &queries, config.dictionary_bound);
                    let mut dict = selected.dictionary;
                    dict.extend(queries.iter().cloned());
                    dict
                }
                _ => {
                    let mut dict: BTreeSet<String> = samples.iter().flat_map(|(_, _, v)| v.iter().cloned()).collect();
                    dict.extend(queries.iter().cloned());
                    dict
                }
            };

            // Sentences: for each sampled tuple value, the dictionary tokens
            // it contains (substring containment = co-occurrence in the tuple).
            let mut sentences: Vec<Vec<String>> = Vec::new();
            for (_, _, values) in &samples {
                for v in values {
                    let toks: Vec<String> =
                        dictionary.iter().filter(|d| d.len() >= 2 && v.contains(d.as_str())).take(8).cloned().collect();
                    if toks.len() >= 2 {
                        sentences.push(toks);
                    }
                }
            }

            let model = SkipGramModel::train(
                &sentences,
                SkipGramConfig { dim: config.dim, epochs: config.epochs, seed: config.seed, ..Default::default() },
            );
            // Every dictionary token gets a vector; tokens unseen in any
            // sentence get a small deterministic fallback so tries still
            // resolve them distinctly from "unknown".
            let entries: Vec<(String, Vec<f32>)> = dictionary
                .iter()
                .map(|tok| {
                    let v = model.vector(tok).map(|v| v.to_vec()).unwrap_or_else(|| {
                        let mut h = 0xcbf29ce484222325u64;
                        for b in tok.bytes() {
                            h ^= b as u64;
                            h = h.wrapping_mul(0x100000001b3);
                        }
                        (0..config.dim).map(|i| (((h >> (i % 48)) & 0xff) as f32 / 255.0 - 0.5) * 0.1).collect()
                    });
                    (tok.clone(), v)
                })
                .collect();
            Arc::new(EmbeddingEncoder::new(entries, config.dim))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdb::{generate_imdb, GeneratorConfig};
    use query::CompareOp;

    fn db() -> Database {
        generate_imdb(GeneratorConfig::tiny())
    }

    fn workload_strings() -> Vec<String> {
        vec![
            "%(co-production)%".to_string(),
            "%(presents)%".to_string(),
            "production companies".to_string(),
            "top 250 rank".to_string(),
        ]
    }

    #[test]
    fn hash_encoder_builds() {
        let enc = build_string_encoder(&db(), &workload_strings(), StringEncoding::Hash, EmbedderConfig::default());
        assert!(enc.dim() >= 32);
        assert!(enc.encode("(presents)", CompareOp::Like).iter().any(|&x| x > 0.0));
    }

    #[test]
    fn rule_embedding_encoder_covers_workload_strings() {
        let cfg = EmbedderConfig { max_rows_per_table: 120, epochs: 1, ..Default::default() };
        let enc = build_string_encoder(&db(), &workload_strings(), StringEncoding::EmbedRule, cfg);
        assert_eq!(enc.dim(), cfg.dim);
        // Workload strings must produce non-zero representations.
        let v = enc.encode("%(co-production)%", CompareOp::Like);
        assert!(v.iter().any(|&x| x != 0.0), "workload pattern got a zero representation");
        let v = enc.encode("production companies", CompareOp::Eq);
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn rule_embedding_generalizes_to_unseen_but_similar_strings() {
        let cfg = EmbedderConfig { max_rows_per_table: 120, epochs: 1, ..Default::default() };
        let enc = build_string_encoder(&db(), &workload_strings(), StringEncoding::EmbedRule, cfg);
        // "top 250 rank list" is not in the workload but the trained string
        // "top 250 rank" is a prefix of it; the trie's longest-prefix lookup
        // should give it a non-zero representation.
        let v = enc.encode("top 250 rank list", CompareOp::Eq);
        assert!(v.iter().any(|&x| x != 0.0), "unseen string did not generalize");
    }

    #[test]
    fn no_rule_embedding_builds_from_raw_values() {
        let cfg = EmbedderConfig { max_rows_per_table: 60, epochs: 1, ..Default::default() };
        let enc = build_string_encoder(&db(), &workload_strings(), StringEncoding::EmbedNoRule, cfg);
        let v = enc.encode("%(presents)%", CompareOp::Like);
        assert_eq!(v.len(), cfg.dim);
    }
}
