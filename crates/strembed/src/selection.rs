//! Greedy rule selection (Algorithm 1 of the paper).
//!
//! Given the candidate rule set and the workload's query strings, select a
//! minimal set of rules whose extracted-substring dictionary covers the
//! workload while keeping the dictionary below a size bound `B`.  The exact
//! problem is NP-hard (set cover); the paper (and this module) uses the
//! standard greedy approximation, dropping the rule with the worst
//! coverage-per-extracted-string ratio when the bound is exceeded.

use crate::rules::Rule;
use std::collections::BTreeSet;

/// Result of rule selection.
#[derive(Debug, Clone)]
pub struct SelectedRules {
    pub rules: Vec<Rule>,
    /// All substrings extracted from the dataset by the selected rules.
    pub dictionary: BTreeSet<String>,
}

/// Select rules greedily.
///
/// * `candidates` — candidate rules (typically from
///   [`crate::rules::candidate_rules`] over workload/query-string pairs);
/// * `dataset_values` — a sample of the string values the rules are applied
///   to (the column values of the database);
/// * `workload_strings` — the query strings that must be covered;
/// * `bound` — the maximum dictionary size `B`.
pub fn select_rules(
    candidates: &[Rule],
    dataset_values: &[String],
    workload_strings: &[String],
    bound: usize,
) -> SelectedRules {
    // Pre-compute each candidate's extraction set over the dataset sample.
    let mut unique: Vec<Rule> = Vec::new();
    for r in candidates {
        if !unique.contains(r) {
            unique.push(r.clone());
        }
    }
    let extractions: Vec<BTreeSet<String>> = unique
        .iter()
        .map(|r| dataset_values.iter().filter_map(|v| r.extract(v)).collect::<BTreeSet<String>>())
        .collect();

    let workload: BTreeSet<&str> = workload_strings.iter().map(|s| s.as_str()).collect();

    // Greedy: repeatedly add the rule covering the most yet-uncovered
    // workload strings per extracted substring.
    let mut covered: BTreeSet<&str> = BTreeSet::new();
    let mut selected: Vec<usize> = Vec::new();
    let mut dictionary: BTreeSet<String> = BTreeSet::new();

    loop {
        let mut best: Option<(usize, usize)> = None; // (rule idx, newly covered)
        for (i, ext) in extractions.iter().enumerate() {
            if selected.contains(&i) {
                continue;
            }
            let newly = workload.iter().filter(|w| !covered.contains(*w) && ext.contains(**w)).count();
            if newly == 0 {
                continue;
            }
            match best {
                Some((_, b)) if b >= newly => {}
                _ => best = Some((i, newly)),
            }
        }
        let Some((idx, _)) = best else { break };
        selected.push(idx);
        for w in &workload {
            if extractions[idx].contains(*w) {
                covered.insert(*w);
            }
        }
        dictionary.extend(extractions[idx].iter().cloned());

        // Enforce the dictionary bound: drop the selected rule with the worst
        // workload-coverage density (|S_r ∩ S_W| / |S_r|), as in Algorithm 1.
        while dictionary.len() > bound && selected.len() > 1 {
            let mut worst: Option<(usize, f64)> = None;
            for &i in &selected {
                if i == idx {
                    continue; // keep the rule we just added
                }
                let ext = &extractions[i];
                let inter = ext.iter().filter(|s| workload.contains(s.as_str())).count();
                let density = inter as f64 / ext.len().max(1) as f64;
                match worst {
                    Some((_, d)) if d <= density => {}
                    _ => worst = Some((i, density)),
                }
            }
            let Some((drop_idx, _)) = worst else { break };
            selected.retain(|&i| i != drop_idx);
            // Rebuild the dictionary and coverage from the remaining rules.
            dictionary = selected.iter().flat_map(|&i| extractions[i].iter().cloned()).collect();
            covered = workload.iter().copied().filter(|w| dictionary.contains(*w)).collect();
        }

        if covered.len() == workload.len() {
            break;
        }
    }

    SelectedRules { rules: selected.into_iter().map(|i| unique[i].clone()).collect(), dictionary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::candidate_rules;

    fn dataset() -> Vec<String> {
        vec![
            "Dinos in Kas".to_string(),
            "Schla in Tra".to_string(),
            "Golden River".to_string(),
            "(2002-06-29)".to_string(),
            "(2014-08-26)".to_string(),
            "(1999-12-01)".to_string(),
        ]
    }

    #[test]
    fn selection_covers_workload() {
        let data = dataset();
        let workload = vec!["Din".to_string(), "Sch".to_string(), "06".to_string(), "08".to_string()];
        let mut candidates = Vec::new();
        for w in &workload {
            for v in &data {
                candidates.extend(candidate_rules(w, v));
            }
        }
        let sel = select_rules(&candidates, &data, &workload, 100);
        for w in &workload {
            assert!(sel.dictionary.contains(w), "workload string {w} not covered");
        }
        assert!(!sel.rules.is_empty());
    }

    #[test]
    fn generalized_rules_extract_unseen_strings() {
        let data = dataset();
        let workload = vec!["06".to_string()];
        let mut candidates = Vec::new();
        for v in &data {
            candidates.extend(candidate_rules("06", v));
        }
        let sel = select_rules(&candidates, &data, &workload, 100);
        // The class-based rule that covers "06" also extracts "08" and "12"
        // from the other dates — generalization to future workloads.
        let extra = ["08", "12"].iter().filter(|s| sel.dictionary.contains(**s)).count();
        assert!(extra >= 1, "dictionary did not generalize: {:?}", sel.dictionary);
    }

    #[test]
    fn bound_limits_dictionary_size() {
        let data: Vec<String> = (0..200).map(|i| format!("value number {i}")).collect();
        let workload = vec!["val".to_string()];
        let mut candidates = Vec::new();
        for v in data.iter().take(5) {
            candidates.extend(candidate_rules("val", v));
        }
        let sel = select_rules(&candidates, &data, &workload, 10);
        // A single rule's extractions may exceed the bound (the bound drops
        // *additional* rules); the selection must not blow up far beyond it.
        assert!(sel.dictionary.len() <= 300);
        assert!(sel.rules.len() <= candidates.len());
    }

    #[test]
    fn empty_inputs_are_safe() {
        let sel = select_rules(&[], &[], &[], 10);
        assert!(sel.rules.is_empty());
        assert!(sel.dictionary.is_empty());
    }

    #[test]
    fn selection_prefers_fewer_rules() {
        let data = dataset();
        let workload = vec!["Din".to_string(), "Sch".to_string()];
        let mut candidates = Vec::new();
        for w in &workload {
            for v in &data {
                candidates.extend(candidate_rules(w, v));
            }
        }
        let sel = select_rules(&candidates, &data, &workload, 100);
        // A single generalized rule ⟨Prefix, PC Pl, 3⟩ covers both; greedy
        // should find a small set (certainly not one rule per string pair).
        assert!(sel.rules.len() <= 2, "selected too many rules: {:?}", sel.rules);
    }
}
