//! String-operand encoders (the `String` column of Table 9).
//!
//! The feature extractor needs a fixed-width vector for the operand of a
//! string predicate.  The paper compares several encodings; this module
//! implements the ones evaluated:
//!
//! * [`HashBitmapEncoder`] — per-character hash bitmap (`TLSTMHash*`),
//! * [`OneHotEncoder`] — one bit per known string (no generalization),
//! * [`EmbeddingEncoder`] — skip-gram vectors behind prefix/suffix tries
//!   (`TLSTMEmbNR*` without rules, `TLSTMEmbR*` / `TPoolEmbR*` with rules).

use crate::trie::StringTrie;
use query::CompareOp;
use std::collections::HashMap;

/// A fixed-width encoder of string operands.
pub trait StringEncoder: Send + Sync {
    /// Width of the produced vector.
    fn dim(&self) -> usize;
    /// Encode a query string used with the given operator.
    fn encode(&self, s: &str, op: CompareOp) -> Vec<f32>;

    /// Write the encoding into the first `min(dim, out.len())` slots of a
    /// **zeroed** `out`, producing exactly the bits of
    /// [`StringEncoder::encode`] truncated to `out.len()`.  The default
    /// delegates to `encode`; allocation-free encoders override it so hot
    /// featurization paths skip the per-call `Vec`.
    fn encode_into(&self, s: &str, op: CompareOp, out: &mut [f32]) {
        for (slot, x) in out.iter_mut().zip(self.encode(s, op)) {
            *slot = x;
        }
    }
}

/// Hash-bitmap encoding: set bit `hash(c) % dim` for every character of the
/// string.  Captures character overlap but not co-occurrence.
#[derive(Debug, Clone)]
pub struct HashBitmapEncoder {
    dim: usize,
}

impl HashBitmapEncoder {
    /// Create an encoder with the given bitmap width.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "hash bitmap width must be positive");
        HashBitmapEncoder { dim }
    }
}

impl StringEncoder for HashBitmapEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, s: &str, op: CompareOp) -> Vec<f32> {
        let mut bits = vec![0.0; self.dim];
        self.encode_into(s, op, &mut bits);
        bits
    }

    fn encode_into(&self, s: &str, _op: CompareOp, out: &mut [f32]) {
        for c in s.chars() {
            // FNV-1a style per-character hash; stable across runs.
            let mut h = 0xcbf29ce484222325u64;
            h ^= c as u64;
            h = h.wrapping_mul(0x100000001b3);
            let slot = (h % self.dim as u64) as usize;
            if let Some(bit) = out.get_mut(slot) {
                *bit = 1.0;
            }
        }
    }
}

/// One-hot encoding over a fixed dictionary of strings; unseen strings map to
/// the all-zero vector (the generalization failure the paper points out).
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    positions: HashMap<String, usize>,
    dim: usize,
}

impl OneHotEncoder {
    /// Build from a dictionary of known strings.
    pub fn new(strings: impl IntoIterator<Item = String>) -> Self {
        let mut positions = HashMap::new();
        for s in strings {
            let next = positions.len();
            positions.entry(s).or_insert(next);
        }
        let dim = positions.len().max(1);
        OneHotEncoder { positions, dim }
    }
}

impl StringEncoder for OneHotEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, s: &str, _op: CompareOp) -> Vec<f32> {
        let mut v = vec![0.0; self.dim];
        if let Some(&i) = self.positions.get(s) {
            v[i] = 1.0;
        }
        v
    }
}

/// Skip-gram embedding encoder backed by prefix and suffix tries.
///
/// Online lookup follows Section 5.3: prefix searches (`LIKE 's%'`) use the
/// longest stored prefix, suffix searches the longest stored suffix, and
/// equality/containment searches take whichever of the two is longer.
#[derive(Debug, Clone)]
pub struct EmbeddingEncoder {
    prefix: StringTrie,
    suffix: StringTrie,
    dim: usize,
}

impl EmbeddingEncoder {
    /// Build from `(token, vector)` pairs.
    pub fn new(entries: impl IntoIterator<Item = (String, Vec<f32>)>, dim: usize) -> Self {
        let mut prefix = StringTrie::new_prefix();
        let mut suffix = StringTrie::new_suffix();
        for (tok, vec) in entries {
            assert_eq!(vec.len(), dim, "embedding width mismatch for token {tok}");
            prefix.insert(&tok, vec.clone());
            suffix.insert(&tok, vec);
        }
        EmbeddingEncoder { prefix, suffix, dim }
    }

    /// Number of stored tokens.
    pub fn vocab_size(&self) -> usize {
        self.prefix.len()
    }

    /// Strip LIKE wildcards, keeping the literal core of the pattern.
    fn literal_core(s: &str) -> (String, bool, bool) {
        let starts_any = s.starts_with('%');
        let ends_any = s.ends_with('%');
        let core: String = s.chars().filter(|&c| c != '%' && c != '_').collect();
        (core, starts_any, ends_any)
    }
}

impl StringEncoder for EmbeddingEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, s: &str, op: CompareOp) -> Vec<f32> {
        let (core, starts_any, ends_any) = Self::literal_core(s);
        if core.is_empty() {
            return vec![0.0; self.dim];
        }
        let is_pattern = matches!(op, CompareOp::Like | CompareOp::NotLike);
        let choice = if is_pattern && !starts_any && ends_any {
            // Prefix search: LIKE 's%'.
            self.prefix.longest_match(&core).map(|(_, v)| v)
        } else if is_pattern && starts_any && !ends_any {
            // Suffix search: LIKE '%s'.
            self.suffix.longest_match(&core).map(|(_, v)| v)
        } else {
            // Equality / containment: the longer of prefix and suffix matches.
            match (self.prefix.longest_match(&core), self.suffix.longest_match(&core)) {
                (Some((lp, vp)), Some((ls, vs))) => Some(if lp >= ls { vp } else { vs }),
                (Some((_, v)), None) | (None, Some((_, v))) => Some(v),
                (None, None) => None,
            }
        };
        choice.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_bitmap_is_deterministic_and_bounded() {
        let enc = HashBitmapEncoder::new(64);
        let a = enc.encode("(co-production)", CompareOp::Like);
        let b = enc.encode("(co-production)", CompareOp::Like);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&x| x == 0.0 || x == 1.0));
        assert!(a.contains(&1.0));
    }

    #[test]
    fn hash_bitmap_shares_bits_for_shared_characters() {
        let enc = HashBitmapEncoder::new(128);
        let a = enc.encode("production", CompareOp::Eq);
        let b = enc.encode("co-production", CompareOp::Eq);
        // Every bit of "production" is also set for "co-production".
        for (x, y) in a.iter().zip(b.iter()) {
            if *x == 1.0 {
                assert_eq!(*y, 1.0);
            }
        }
    }

    #[test]
    fn one_hot_known_and_unknown() {
        let enc = OneHotEncoder::new(["top 250 rank".to_string(), "production companies".to_string()]);
        assert_eq!(enc.dim(), 2);
        let known = enc.encode("top 250 rank", CompareOp::Eq);
        assert_eq!(known.iter().sum::<f32>(), 1.0);
        let unknown = enc.encode("top 251 rank", CompareOp::Eq);
        assert_eq!(unknown.iter().sum::<f32>(), 0.0);
    }

    fn embedding_encoder() -> EmbeddingEncoder {
        EmbeddingEncoder::new(
            [
                ("Din".to_string(), vec![1.0, 0.0]),
                ("Sch".to_string(), vec![0.0, 1.0]),
                ("06".to_string(), vec![0.5, 0.5]),
            ],
            2,
        )
    }

    #[test]
    fn embedding_prefix_search_uses_longest_prefix() {
        let enc = embedding_encoder();
        // LIKE 'Dino%' → representation of 'Din'.
        assert_eq!(enc.encode("Dino%", CompareOp::Like), vec![1.0, 0.0]);
        assert_eq!(enc.encode("Schl%", CompareOp::Like), vec![0.0, 1.0]);
    }

    #[test]
    fn embedding_containment_uses_prefix_or_suffix() {
        let enc = embedding_encoder();
        assert_eq!(enc.encode("%06%", CompareOp::Like), vec![0.5, 0.5]);
        // Equality on a known token.
        assert_eq!(enc.encode("Din", CompareOp::Eq), vec![1.0, 0.0]);
    }

    #[test]
    fn embedding_unknown_string_is_zero_vector() {
        let enc = embedding_encoder();
        assert_eq!(enc.encode("%zzz%", CompareOp::Like), vec![0.0, 0.0]);
        assert_eq!(enc.encode("%", CompareOp::Like), vec![0.0, 0.0]);
        assert_eq!(enc.vocab_size(), 3);
    }
}
