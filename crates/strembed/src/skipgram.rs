//! Skip-gram (word2vec) embedding of dictionary substrings.
//!
//! Section 5.1: "We take a collection of (sub)strings with the key values in
//! one tuple as a sentence and use the skip-gram model to train the string
//! embedding."  Strings that co-occur in the same tuple end up with similar
//! vectors, so the embedding carries co-occurrence information that a hash
//! bitmap cannot.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of skip-gram training.
#[derive(Debug, Clone, Copy)]
pub struct SkipGramConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over all sentences.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig { dim: 16, negatives: 3, epochs: 5, learning_rate: 0.05, seed: 13 }
    }
}

/// Trained skip-gram embeddings: a vocabulary and one vector per token.
#[derive(Debug, Clone)]
pub struct SkipGramModel {
    vocab: HashMap<String, usize>,
    vectors: Vec<Vec<f32>>,
    dim: usize,
}

impl SkipGramModel {
    /// Train embeddings over `sentences` (each sentence is the multiset of
    /// strings extracted from one tuple).
    pub fn train(sentences: &[Vec<String>], config: SkipGramConfig) -> Self {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        for sent in sentences {
            for tok in sent {
                let next = vocab.len();
                vocab.entry(tok.clone()).or_insert(next);
            }
        }
        let v = vocab.len();
        let dim = config.dim;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut input: Vec<Vec<f32>> =
            (0..v).map(|_| (0..dim).map(|_| rng.gen_range(-0.5f32..0.5) / dim as f32).collect()).collect();
        let mut output: Vec<Vec<f32>> = (0..v).map(|_| vec![0.0; dim]).collect();

        let id_sentences: Vec<Vec<usize>> = sentences.iter().map(|s| s.iter().map(|t| vocab[t]).collect()).collect();

        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
        for _ in 0..config.epochs {
            for sent in &id_sentences {
                for (i, &center) in sent.iter().enumerate() {
                    for (j, &context) in sent.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        // Positive pair plus `negatives` random negatives.
                        let mut targets = vec![(context, 1.0f32)];
                        for _ in 0..config.negatives {
                            targets.push((rng.gen_range(0..v), 0.0));
                        }
                        let mut grad_center = vec![0.0f32; dim];
                        for (tgt, label) in targets {
                            let dot: f32 = input[center].iter().zip(output[tgt].iter()).map(|(a, b)| a * b).sum();
                            let err = sigmoid(dot) - label;
                            for d in 0..dim {
                                grad_center[d] += err * output[tgt][d];
                                output[tgt][d] -= config.learning_rate * err * input[center][d];
                            }
                        }
                        for d in 0..dim {
                            input[center][d] -= config.learning_rate * grad_center[d];
                        }
                    }
                }
            }
        }
        SkipGramModel { vocab, vectors: input, dim }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The embedding of a token, if it is in the vocabulary.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        self.vocab.get(token).map(|&i| self.vectors[i].as_slice())
    }

    /// All `(token, vector)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[f32])> {
        self.vocab.iter().map(move |(t, &i)| (t.as_str(), self.vectors[i].as_slice()))
    }

    /// Cosine similarity between two tokens (None when either is unknown).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return Some(0.0);
        }
        Some(dot / (na * nb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sentences() -> Vec<Vec<String>> {
        // Two co-occurrence clusters sharing a common context token each:
        // {alpha, beta, ctx1} and {gamma, delta, ctx2}.  alpha/beta share the
        // context ctx1 (and each other), so their input vectors align.
        let mut sents = Vec::new();
        for _ in 0..60 {
            sents.push(vec!["alpha".to_string(), "beta".to_string(), "ctx1".to_string()]);
            sents.push(vec!["gamma".to_string(), "delta".to_string(), "ctx2".to_string()]);
        }
        sents
    }

    #[test]
    fn vocabulary_and_dimensions() {
        let model = SkipGramModel::train(&toy_sentences(), SkipGramConfig { epochs: 1, ..Default::default() });
        assert_eq!(model.vocab_size(), 6);
        assert_eq!(model.dim(), 16);
        assert_eq!(model.vector("alpha").expect("in vocab").len(), 16);
        assert!(model.vector("unknown").is_none());
        assert_eq!(model.entries().count(), 6);
    }

    #[test]
    fn cooccurring_tokens_are_more_similar() {
        let model = SkipGramModel::train(
            &toy_sentences(),
            SkipGramConfig { epochs: 30, dim: 8, learning_rate: 0.08, ..Default::default() },
        );
        let within = model.similarity("alpha", "beta").expect("known");
        let across = model.similarity("alpha", "delta").expect("known");
        assert!(within > across, "co-occurring pair not more similar: within={within:.3} across={across:.3}");
    }

    #[test]
    fn training_is_deterministic_for_seed() {
        let a = SkipGramModel::train(&toy_sentences(), SkipGramConfig { epochs: 2, ..Default::default() });
        let b = SkipGramModel::train(&toy_sentences(), SkipGramConfig { epochs: 2, ..Default::default() });
        assert_eq!(a.vector("alpha"), b.vector("alpha"));
    }

    #[test]
    fn empty_input_is_safe() {
        let model = SkipGramModel::train(&[], SkipGramConfig::default());
        assert_eq!(model.vocab_size(), 0);
        assert!(model.vector("x").is_none());
    }
}
