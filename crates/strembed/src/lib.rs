//! String-value embedding (Section 5 of the paper).
//!
//! Predicates over string columns ("note NOT LIKE '%(as Metro-Goldwyn-Mayer
//! Pictures)%'") are the hard case for learned estimators: string values are
//! sparse and discrete.  The paper's solution, reproduced here:
//!
//! 1. [`rules`] — a pattern DSL (`PC`, `Pl`, `Pn`, `Ps`, `Pt(T)` with
//!    Prefix/Suffix string functions) that generalizes the query substrings
//!    of the workload, plus candidate-rule generation from (query, value)
//!    pairs (Tables 4 and 5).
//! 2. [`selection`] — greedy set-cover selection of a minimal rule set under
//!    a dictionary-size bound (Algorithm 1).
//! 3. [`skipgram`] — skip-gram (word2vec) pre-training of the dictionary
//!    substrings, using the substrings co-occurring in one tuple as a
//!    sentence, so embeddings carry co-occurrence information.
//! 4. [`trie`] — prefix and suffix tries storing the dictionary with its
//!    vectors, supporting online longest-prefix / longest-suffix lookup.
//! 5. [`encoders`] / [`embedder`] — the encoders compared in the paper
//!    (hash bitmap, one-hot, embedding with and without rules) and the
//!    end-to-end builder that assembles them from a database + workload.

pub mod embedder;
pub mod encoders;
pub mod rules;
pub mod selection;
pub mod skipgram;
pub mod trie;

pub use embedder::{build_string_encoder, EmbedderConfig, StringEncoding};
pub use encoders::{EmbeddingEncoder, HashBitmapEncoder, OneHotEncoder, StringEncoder};
pub use rules::{candidate_rules, PatToken, Pattern, Rule, StringFunc};
pub use selection::{select_rules, SelectedRules};
pub use skipgram::{SkipGramConfig, SkipGramModel};
pub use trie::StringTrie;
