//! Prefix and suffix tries over the substring dictionary (Section 5.3).
//!
//! The dictionary can be large; storing every substring with its vector in a
//! flat map would duplicate shared prefixes.  A trie stores the mapping
//! compactly and supports the online lookups the encoder needs: the *longest
//! known prefix* (for `LIKE 's%'`), the *longest known suffix* (for
//! `LIKE '%s'`), and the longer of the two for containment/equality searches.

use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: HashMap<char, TrieNode>,
    /// Embedding vector of the string ending at this node, if it is in the
    /// dictionary.
    vector: Option<Vec<f32>>,
}

/// A trie mapping strings to embedding vectors.
///
/// For suffix lookups construct it with [`StringTrie::new_suffix`]; it then
/// stores reversed keys and reverses queries transparently.
#[derive(Debug, Clone)]
pub struct StringTrie {
    root: TrieNode,
    reversed: bool,
    len: usize,
}

impl StringTrie {
    /// An empty prefix trie.
    pub fn new_prefix() -> Self {
        StringTrie { root: TrieNode::default(), reversed: false, len: 0 }
    }

    /// An empty suffix trie.
    pub fn new_suffix() -> Self {
        StringTrie { root: TrieNode::default(), reversed: true, len: 0 }
    }

    fn key_chars(&self, s: &str) -> Vec<char> {
        let mut chars: Vec<char> = s.chars().collect();
        if self.reversed {
            chars.reverse();
        }
        chars
    }

    /// Insert a string with its embedding vector.
    pub fn insert(&mut self, s: &str, vector: Vec<f32>) {
        let chars = self.key_chars(s);
        let mut node = &mut self.root;
        for c in chars {
            node = node.children.entry(c).or_default();
        }
        if node.vector.is_none() {
            self.len += 1;
        }
        node.vector = Some(vector);
    }

    /// Number of stored strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the trie stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact lookup.
    pub fn get(&self, s: &str) -> Option<&[f32]> {
        let mut node = &self.root;
        for c in self.key_chars(s) {
            node = node.children.get(&c)?;
        }
        node.vector.as_deref()
    }

    /// The vector of the longest stored prefix (or suffix, for a suffix trie)
    /// of `s`, together with its length in characters.
    pub fn longest_match(&self, s: &str) -> Option<(usize, &[f32])> {
        let mut node = &self.root;
        let mut best: Option<(usize, &[f32])> = node.vector.as_deref().map(|v| (0, v));
        for (i, c) in self.key_chars(s).into_iter().enumerate() {
            match node.children.get(&c) {
                Some(next) => {
                    node = next;
                    if let Some(v) = node.vector.as_deref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(x: f32) -> Vec<f32> {
        vec![x, x, x]
    }

    #[test]
    fn exact_and_prefix_lookup() {
        let mut trie = StringTrie::new_prefix();
        trie.insert("Din", vec_of(1.0));
        trie.insert("Dino", vec_of(2.0));
        trie.insert("Sch", vec_of(3.0));
        assert_eq!(trie.len(), 3);
        assert_eq!(trie.get("Din"), Some(vec_of(1.0).as_slice()));
        assert_eq!(trie.get("Di"), None);
        // Longest prefix of "Dinosaur" is "Dino".
        let (len, v) = trie.longest_match("Dinosaur").expect("match");
        assert_eq!(len, 4);
        assert_eq!(v, vec_of(2.0).as_slice());
        // "Schl…" falls back to "Sch".
        let (len, _) = trie.longest_match("Schlacht").expect("match");
        assert_eq!(len, 3);
        assert!(trie.longest_match("Xyz").is_none());
    }

    #[test]
    fn suffix_trie_matches_string_ends() {
        let mut trie = StringTrie::new_suffix();
        trie.insert("06", vec_of(1.0));
        trie.insert("2-06", vec_of(2.0));
        let (len, v) = trie.longest_match("2002-06").expect("match");
        assert_eq!(len, 4);
        assert_eq!(v, vec_of(2.0).as_slice());
        let (len, _) = trie.longest_match("xx06").expect("match");
        assert_eq!(len, 2);
        assert!(trie.longest_match("2002-07").is_none());
    }

    #[test]
    fn reinsert_overwrites_without_growing() {
        let mut trie = StringTrie::new_prefix();
        trie.insert("abc", vec_of(1.0));
        trie.insert("abc", vec_of(9.0));
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get("abc"), Some(vec_of(9.0).as_slice()));
    }

    #[test]
    fn empty_trie_behaves() {
        let trie = StringTrie::new_prefix();
        assert!(trie.is_empty());
        assert!(trie.get("a").is_none());
        assert!(trie.longest_match("a").is_none());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn inserted_strings_are_found(keys in proptest::collection::btree_set("[a-z]{1,8}", 1..20)) {
            let mut trie = StringTrie::new_prefix();
            for (i, k) in keys.iter().enumerate() {
                trie.insert(k, vec![i as f32]);
            }
            prop_assert_eq!(trie.len(), keys.len());
            for (i, k) in keys.iter().enumerate() {
                let expected = vec![i as f32];
                prop_assert_eq!(trie.get(k), Some(expected.as_slice()));
            }
        }

        #[test]
        fn longest_match_is_a_prefix_of_query(keys in proptest::collection::btree_set("[a-z]{1,6}", 1..15), query in "[a-z]{1,10}") {
            let mut trie = StringTrie::new_prefix();
            for k in &keys {
                trie.insert(k, vec![1.0]);
            }
            if let Some((len, _)) = trie.longest_match(&query) {
                let prefix: String = query.chars().take(len).collect();
                prop_assert!(keys.contains(&prefix));
            }
        }
    }
}
