//! Integration test for the acceptance criterion: one process serves two
//! named checkpointed models concurrently, a live hot-swap of one tenant is
//! observed by its own sessions at a call boundary, and an **in-flight
//! session on the other model** keeps serving bit-identical estimates
//! throughout — never blocked, never corrupted.

use engine::{execute_plan, CostModel};
use estimator_core::{CostEstimator, Estimator, ModelConfig, PlanEstimate, TrainConfig};
use featurize::{EncodingConfig, FeatureExtractor};
use imdb::{generate_imdb, GeneratorConfig};
use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, PlanNode, Predicate};
use serving::{ModelCatalog, TenantBackend};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use strembed::HashBitmapEncoder;

fn make_estimator(db: &Arc<imdb::Database>, seed: u64) -> CostEstimator {
    let cfg = EncodingConfig::from_database(db, 8, 32);
    let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
    CostEstimator::new(
        fx,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, seed, ..Default::default() },
        TrainConfig { epochs: 2, batch_size: 8, seed, ..Default::default() },
    )
}

fn executed_plans(db: &Arc<imdb::Database>, n: usize) -> Vec<PlanNode> {
    let cost = CostModel::default();
    (0..n)
        .map(|i| {
            let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                table: "title".into(),
                predicate: Some(Predicate::atom(
                    "title",
                    "production_year",
                    CompareOp::Gt,
                    Operand::Num((1936 + i * 2) as f64),
                )),
            });
            let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
            let mut join = PlanNode::inner(
                PhysicalOp::HashJoin { condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id") },
                vec![scan_t, scan_mc],
            );
            execute_plan(db, &mut join, &cost);
            join
        })
        .collect()
}

fn card_bits(estimates: &[PlanEstimate]) -> Vec<u64> {
    estimates.iter().map(|e| e.cardinality.expect("card").to_bits()).collect()
}

#[test]
fn live_hot_swap_does_not_disturb_in_flight_sessions_on_other_tenants() {
    let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
    let plans = executed_plans(&db, 16);

    let mut model_a = make_estimator(&db, 1);
    model_a.fit(&plans);
    let mut model_b1 = make_estimator(&db, 2);
    model_b1.fit(&plans);
    let mut model_b2 = make_estimator(&db, 4242);
    model_b2.fit(&plans);

    let want_a = card_bits(&model_a.estimate_many(&plans));
    let want_b1 = card_bits(&model_b1.estimate_many(&plans));
    let want_b2 = card_bits(&model_b2.estimate_many(&plans));
    assert_ne!(want_b1, want_b2, "b's two versions must be distinguishable");

    // b2 arrives as a checkpoint, the way a retrained model rolls out.
    let ckpt = std::env::temp_dir().join(format!("serving-hotswap-{}.ckpt", std::process::id()));
    model_b2.save_checkpoint(&ckpt).expect("save b2");

    let catalog = Arc::new(ModelCatalog::new());
    catalog.publish("model_a", TenantBackend::tree(model_a));
    catalog.publish("model_b", TenantBackend::tree(model_b1));
    let factory_db = db.clone();
    catalog.register_factory("model_b", Box::new(move || TenantBackend::tree(make_estimator(&factory_db, 4242))));

    let a_iterations = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let b_transitions = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // The in-flight session on the OTHER model: hammers tenant a the
        // whole time, asserting every batch is bit-identical to a's
        // reference — before, during and after b's swap.
        {
            let catalog = Arc::clone(&catalog);
            let (plans, want_a) = (&plans, &want_a);
            let (a_iterations, stop) = (Arc::clone(&a_iterations), Arc::clone(&stop));
            scope.spawn(move || {
                let session = catalog.session("model_a").expect("tenant a");
                while !stop.load(Ordering::Relaxed) {
                    let got = card_bits(&session.estimate_plans(plans).expect("a serves"));
                    assert_eq!(&got, want_a, "a hot-swap of tenant b disturbed tenant a's estimates");
                    assert_eq!(session.generation(), Some(1), "tenant a must never see a generation bump");
                    a_iterations.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // A session on the swapped tenant: every batch must match exactly
        // one of b's two versions (never a mixture), transitioning v1 -> v2.
        {
            let catalog = Arc::clone(&catalog);
            let (plans, want_b1, want_b2) = (&plans, &want_b1, &want_b2);
            let (b_transitions, stop) = (Arc::clone(&b_transitions), Arc::clone(&stop));
            scope.spawn(move || {
                let session = catalog.session("model_b").expect("tenant b");
                let mut seen_v2 = false;
                while !stop.load(Ordering::Relaxed) {
                    let got = card_bits(&session.estimate_plans(plans).expect("b serves"));
                    if &got == want_b1 {
                        assert!(!seen_v2, "tenant b served v1 estimates after the swap was observed");
                    } else {
                        assert_eq!(&got, want_b2, "tenant b served a mixture of model versions");
                        if !seen_v2 {
                            seen_v2 = true;
                            b_transitions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                assert!(seen_v2, "tenant b's session never observed the hot-swap");
            });
        }

        // Main thread: wait until session a is demonstrably in flight, then
        // hot-swap tenant b live.
        while a_iterations.load(Ordering::Relaxed) < 3 {
            std::thread::yield_now();
        }
        let generation = catalog.install_checkpoint("model_b", &ckpt).expect("hot-swap b");
        assert_eq!(generation, 2);
        // Let both sessions run against the post-swap catalog for a while.
        let after_swap = a_iterations.load(Ordering::Relaxed);
        while a_iterations.load(Ordering::Relaxed) < after_swap + 3 || b_transitions.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(b_transitions.load(Ordering::Relaxed), 1, "exactly one v1 -> v2 transition");
    assert!(a_iterations.load(Ordering::Relaxed) >= 6);
    let _ = std::fs::remove_file(&ckpt);
}
