//! End-to-end online learning loop: capture → sample → detect → adapt.
//!
//! Drives the whole PR-7 pipeline against a drifting-zipf workload: a model
//! trained on phase 0 serves phase-0 traffic (healthy baseline), the
//! workload migrates its hot keys (later phase), the no-loop tenant
//! degrades and stays degraded, while the tenant with a
//! [`serving::RefreshController`] detects the drift, fine-tunes off the
//! serving path and republishes through the catalog — recovering accuracy
//! with zero downtime and a checkpoint-v3 round-trippable model.

use estimator_core::{CostEstimator, ModelConfig, TrainConfig};
use featurize::{EncodedPlan, EncodingConfig, FeatureExtractor};
use imdb::{generate_imdb, GeneratorConfig};
use metrics::q_error;
use serving::{FeedbackConfig, ModelCatalog, RefreshConfig, RefreshController, RefreshOutcome, Session, TenantBackend};
use std::path::PathBuf;
use std::sync::Arc;
use strembed::HashBitmapEncoder;
use workloads::{DriftConfig, DriftGenerator, QuerySample};

fn make_estimator(db: &Arc<imdb::Database>, seed: u64) -> CostEstimator {
    let cfg = EncodingConfig::from_database(db, 8, 32);
    let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
    CostEstimator::new(
        fx,
        ModelConfig { feature_embed_dim: 8, hidden_dim: 16, estimation_hidden_dim: 8, seed, ..Default::default() },
        TrainConfig { epochs: 20, batch_size: 8, learning_rate: 0.005, seed, ..Default::default() },
    )
}

/// Serve one phase's plans through the session the way a client would:
/// encode each plan (which registers it for ground truth) and estimate the
/// whole batch.  Returns the mean cardinality q-error against the phase's
/// known truth.
fn serve_phase(session: &Session, samples: &[QuerySample]) -> f64 {
    let encoded: Vec<EncodedPlan> = samples.iter().map(|s| session.encode(&s.plan).expect("tree backend")).collect();
    let estimates = session.estimate_encoded(&encoded).expect("published model");
    let total: f64 = estimates.iter().zip(samples).map(|((_, card), s)| q_error(*card, s.true_cardinality())).sum();
    total / samples.len() as f64
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("online-learning-{}-{name}", std::process::id()))
}

#[test]
fn closed_loop_recovers_from_drift_while_frozen_baseline_degrades() {
    let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
    let drift_cfg = DriftConfig { phases: 3, queries_per_phase: 80, skew: 1.5, ..Default::default() };
    let generator = DriftGenerator::new(&db, drift_cfg);
    let phase0 = generator.phase(0);
    let drifted = generator.phase(2);

    // Train on phase 0 and roll out through the checkpoint-install path for
    // both tenants: "frozen" never learns, "loop" gets the controller.
    let train_plans: Vec<_> = phase0.samples.iter().map(|s| s.plan.clone()).collect();
    let mut trained = make_estimator(&db, 7);
    trained.fit(&train_plans);
    let initial_ckpt = temp_path("initial.ckpt");
    trained.save_checkpoint(&initial_ckpt).expect("save initial checkpoint");

    let catalog = Arc::new(ModelCatalog::new());
    for tenant in ["frozen", "loop"] {
        let factory_db = db.clone();
        catalog.register_factory(tenant, Box::new(move || TenantBackend::tree(make_estimator(&factory_db, 7))));
        assert_eq!(catalog.install_checkpoint(tenant, &initial_ckpt).expect("install"), 1);
    }
    let feedback = catalog.enable_feedback("loop", FeedbackConfig::default());

    // The controller's training replica resumes from the same checkpoint
    // the catalog serves, so fine-tuning starts from the served weights.
    let mut replica = make_estimator(&db, 7);
    replica.resume_from_checkpoint(&initial_ckpt).expect("resume replica");
    let refreshed_ckpt = temp_path("refreshed.ckpt");
    let refresh_cfg = RefreshConfig {
        sample_budget: 128,
        window: 12,
        drift_factor: 1.3,
        min_pairs: 12,
        fine_tune_epochs: 4,
        checkpoint_path: Some(refreshed_ckpt.clone()),
        ..Default::default()
    };
    let mut controller =
        RefreshController::new(Arc::clone(&catalog), "loop", feedback, db.clone(), replica, refresh_cfg);

    let frozen = catalog.session("frozen").expect("frozen");
    let looped = catalog.session("loop").expect("loop");

    // Phase 0: both tenants healthy; the first tick freezes the baseline.
    let frozen_healthy = serve_phase(&frozen, &phase0.samples);
    let loop_healthy = serve_phase(&looped, &phase0.samples);
    match controller.tick().expect("baseline tick") {
        RefreshOutcome::Observed { drifted, baseline, .. } => {
            assert!(!drifted, "healthy traffic must not register as drift");
            assert!(baseline.is_some(), "first full window must freeze the baseline");
        }
        other => panic!("expected Observed on healthy traffic, got {other:?}"),
    }

    // Hot keys migrate: the frozen tenant's accuracy must degrade.
    let frozen_drifted = serve_phase(&frozen, &drifted.samples);
    let loop_drifted = serve_phase(&looped, &drifted.samples);
    assert!(
        frozen_drifted > frozen_healthy * 1.3,
        "drift failed to degrade the frozen tenant: healthy {frozen_healthy:.2} vs drifted {frozen_drifted:.2}"
    );

    // The loop notices and republishes.  (One tick may only *observe* the
    // drift if the window still holds healthy samples; allow a couple.)
    let mut refreshed = None;
    for round in 0..3 {
        match controller.tick().expect("drift tick") {
            RefreshOutcome::Refreshed { generation, window_mean, baseline, .. } => {
                assert!(window_mean > baseline, "refresh must have been driven by degradation");
                refreshed = Some(generation);
                break;
            }
            outcome => {
                // Re-serve the drifted traffic so the log refills for the
                // next tick.
                let _ = serve_phase(&looped, &drifted.samples);
                assert!(round < 2, "controller never refreshed; last outcome {outcome:?}");
            }
        }
    }
    let generation = refreshed.expect("refresh must have happened");
    assert_eq!(generation, 2, "republish must be the tenant's second generation");
    assert_eq!(looped.generation(), Some(2), "session must observe the new generation at the next call");
    assert_eq!(frozen.generation(), Some(1), "the frozen tenant must be untouched");

    // Recovery: the fine-tuned model must claw back most of the drift-induced
    // degradation; the frozen tenant must not have moved.
    let loop_recovered = serve_phase(&looped, &drifted.samples);
    let frozen_still_bad = serve_phase(&frozen, &drifted.samples);
    assert!((frozen_still_bad - frozen_drifted).abs() < 1e-9, "frozen tenant's estimates changed without a publish");
    assert!(
        loop_recovered < loop_drifted,
        "closed loop failed to improve on drifted traffic: {loop_drifted:.2} -> {loop_recovered:.2}"
    );
    let recovery = (loop_drifted - loop_recovered) / (loop_drifted - loop_healthy).max(1e-9);
    assert!(
        recovery >= 0.5,
        "closed loop recovered only {:.0}% of the degradation ({loop_healthy:.2} healthy, \
         {loop_drifted:.2} drifted, {loop_recovered:.2} recovered)",
        recovery * 100.0
    );

    // Zero-downtime semantics: a model pinned before a publish keeps serving
    // its own weights (checked against the frozen twin, which shares them).
    // The republished model serves the quant/tiered path like any other.
    let published = catalog.current("loop").expect("published");
    assert!(published.tree().expect("tree").has_quantized_weights(), "republish must re-quantize");
    assert!(published.tiered_aggregator().is_some(), "republished model must offer the tiered path");

    // The fine-tuned checkpoint round-trips v3 with both tiers bit-identical
    // to what the catalog is serving.
    let mut reloaded = make_estimator(&db, 7);
    reloaded.load_checkpoint(&refreshed_ckpt).expect("reload fine-tuned checkpoint");
    assert!(reloaded.has_quantized_weights(), "v3 checkpoint must carry the int8 tier");
    let probe: Vec<EncodedPlan> = drifted.samples.iter().take(16).map(|s| reloaded.encode(&s.plan)).collect();
    let served_tree = published.tree().expect("tree");
    let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
    assert_eq!(
        bits(&reloaded.estimate_encoded_batch(&probe)),
        bits(&served_tree.estimate_encoded_batch(&probe)),
        "f32 tier diverged across the republish round-trip"
    );
    assert_eq!(
        bits(&reloaded.estimate_encoded_batch_quant(&probe)),
        bits(&served_tree.estimate_encoded_batch_quant(&probe)),
        "int8 tier diverged across the republish round-trip"
    );

    let _ = std::fs::remove_file(&initial_ckpt);
    let _ = std::fs::remove_file(&refreshed_ckpt);
}

#[test]
fn refresh_controller_falls_back_to_full_refit_without_resumable_state() {
    let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
    let drift_cfg = DriftConfig { phases: 3, queries_per_phase: 80, skew: 1.5, ..Default::default() };
    let generator = DriftGenerator::new(&db, drift_cfg);
    let phase0 = generator.phase(0);
    let drifted = generator.phase(2);

    let train_plans: Vec<_> = phase0.samples.iter().map(|s| s.plan.clone()).collect();
    let mut trained = make_estimator(&db, 7);
    trained.fit(&train_plans);
    // A serving-only deployment artifact: weights and quant tier, no
    // optimizer state to resume from.
    let ckpt = temp_path("fallback.ckpt");
    trained.save_checkpoint_model_only(&ckpt).expect("save");

    let catalog = Arc::new(ModelCatalog::new());
    let factory_db = db.clone();
    catalog.register_factory("t", Box::new(move || TenantBackend::tree(make_estimator(&factory_db, 7))));
    catalog.install_checkpoint("t", &ckpt).expect("install");
    let feedback = catalog.enable_feedback("t", FeedbackConfig::default());

    // Model-only load: the replica has the served weights but *no*
    // resumable training state — the exact situation whose `expect()` used
    // to abort the server before the fit_resumed Result conversion.
    let mut replica = make_estimator(&db, 7);
    replica.load_checkpoint(&ckpt).expect("model-only load");
    assert!(!replica.is_resumable());

    let refresh_ckpt = temp_path("fallback-refreshed.ckpt");
    let mut controller = RefreshController::new(
        Arc::clone(&catalog),
        "t",
        feedback,
        db.clone(),
        replica,
        RefreshConfig {
            sample_budget: 128,
            window: 8,
            drift_factor: 1.2,
            min_pairs: 8,
            fine_tune_epochs: 3,
            checkpoint_path: Some(refresh_ckpt.clone()),
            ..Default::default()
        },
    );
    let session = catalog.session("t").expect("t");
    serve_phase(&session, &phase0.samples);
    controller.tick().expect("baseline tick");
    let mut fell_back = false;
    let mut last = None;
    for _ in 0..3 {
        serve_phase(&session, &drifted.samples);
        match controller.tick().expect("tick") {
            RefreshOutcome::Refreshed { refit_fallback, generation, .. } => {
                assert!(refit_fallback, "a non-resumable replica must take the full-refit fallback");
                assert_eq!(generation, 2);
                fell_back = true;
                break;
            }
            outcome => last = Some(outcome),
        }
    }
    assert!(fell_back, "drift never triggered a refresh; last outcome {last:?}");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&refresh_ckpt);
}
