//! The hot-swappable model catalog and tenant-scoped sessions.

use crate::aggregate::BatchAggregator;
use crate::feedback::{FeedbackConfig, ServedTier, TenantFeedback};
use estimator_core::{CheckpointError, CostEstimator, Estimator, PlanEstimate};
use featurize::EncodedPlan;
use parking_lot::RwLock;
use query::PlanNode;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One catalog entry's backend: either the tree estimator (which brings the
/// encoded fast path, the owned serving handle and the cross-session batch
/// aggregator) or any other [`Estimator`] behind the generic trait.
pub enum TenantBackend {
    /// The paper's tree model — full serving feature set.  Boxed: the tree
    /// estimator is an order of magnitude larger than a trait-object
    /// pointer, and the backend is moved around during publish.
    Tree(Box<CostEstimator>),
    /// Any other backend (MSCN, the traditional estimator, ...), served
    /// through [`Estimator::estimate_many`].
    Dyn(Box<dyn Estimator + Send + Sync>),
}

impl TenantBackend {
    /// Wrap a tree estimator (convenience over boxing at every call site).
    pub fn tree(estimator: CostEstimator) -> Self {
        TenantBackend::Tree(Box::new(estimator))
    }

    fn as_estimator(&self) -> &(dyn Estimator + Send + Sync) {
        match self {
            TenantBackend::Tree(est) => est.as_ref(),
            TenantBackend::Dyn(b) => b.as_ref(),
        }
    }

    fn load_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        match self {
            TenantBackend::Tree(est) => est.load_checkpoint(path),
            TenantBackend::Dyn(b) => b.load_checkpoint_from(path),
        }
    }
}

/// Per-wave full-precision escalation budget of the tiered aggregator built
/// at publish time: each coalesced wave re-scores this many of its
/// cheapest-looking candidates at full precision.
pub const DEFAULT_TIERED_TOP_K: usize = 8;

/// One immutable published model: the backend, its generation number and —
/// for tree backends — the cross-session batch aggregators over owned
/// serving handles (the bit-exact full-precision one, plus the two-tier
/// int8-first one when the model carries quantized weights).  Sessions pin
/// an `Arc<TenantModel>` per call; a hot-swap replaces the tenant's slot
/// with a new `TenantModel` and never mutates this one, so an in-flight
/// batch completes on exactly the weights and caches it started with.
pub struct TenantModel {
    backend: TenantBackend,
    generation: u64,
    aggregator: Option<BatchAggregator>,
    tiered_aggregator: Option<BatchAggregator>,
}

impl TenantModel {
    fn new(mut backend: TenantBackend, generation: u64) -> Self {
        // Publish quantizes on install: a fitted tree backend derives its
        // per-channel int8 weights here (a no-op when a v3 checkpoint
        // already restored them), so every published tree model offers the
        // tiered path without touching the bit-exact f32 one.
        if let TenantBackend::Tree(est) = &mut backend {
            if est.is_fitted() {
                est.ensure_quantized();
            }
        }
        let (aggregator, tiered_aggregator) = match &backend {
            TenantBackend::Tree(est) if est.is_fitted() => {
                let tiered = est
                    .has_quantized_weights()
                    .then(|| BatchAggregator::new_tiered(est.serving(), DEFAULT_TIERED_TOP_K));
                (Some(BatchAggregator::new(est.serving())), tiered)
            }
            _ => (None, None),
        };
        TenantModel { backend, generation, aggregator, tiered_aggregator }
    }

    /// The generic estimator view of this model.
    pub fn estimator(&self) -> &(dyn Estimator + Send + Sync) {
        self.backend.as_estimator()
    }

    /// The tree backend, when this tenant serves one (the encoded fast
    /// path: `encode`, owned serving handles, per-model caches).
    pub fn tree(&self) -> Option<&CostEstimator> {
        match &self.backend {
            TenantBackend::Tree(est) => Some(est),
            TenantBackend::Dyn(_) => None,
        }
    }

    /// The cross-session batch aggregator (tree backends only).
    pub fn aggregator(&self) -> Option<&BatchAggregator> {
        self.aggregator.as_ref()
    }

    /// The two-tier batch aggregator (tree backends with quantized weights
    /// only): int8 first pass per wave, full-precision re-score of the
    /// [`DEFAULT_TIERED_TOP_K`] cheapest-looking candidates.
    pub fn tiered_aggregator(&self) -> Option<&BatchAggregator> {
        self.tiered_aggregator.as_ref()
    }

    /// Monotonic per-tenant generation of this model (bumped by every
    /// publish/hot-swap under the same name).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Builds a fresh, unfitted backend instance for a tenant — the vessel a
/// checkpoint is loaded into on [`ModelCatalog::install_checkpoint`].
pub type BackendFactory = Box<dyn Fn() -> TenantBackend + Send + Sync>;

/// Per-tenant state: the swappable model slot, the generation counter and
/// an optional backend factory for checkpoint installs.
struct Tenant {
    name: String,
    slot: RwLock<Option<Arc<TenantModel>>>,
    generations: AtomicU64,
    factory: RwLock<Option<BackendFactory>>,
    /// Online-learning capture state ([`ModelCatalog::enable_feedback`]).
    /// `None` (the default) keeps the hot path feedback-free: sessions pay
    /// one uncontended read lock per *batch* to find that out.  Deliberately
    /// outside [`TenantModel`]: the log and registry describe the tenant's
    /// traffic, so they survive hot-swaps of the model that serves it.
    feedback: RwLock<Option<Arc<TenantFeedback>>>,
}

impl Tenant {
    fn new(name: &str) -> Self {
        Tenant {
            name: name.to_string(),
            slot: RwLock::new(None),
            generations: AtomicU64::new(0),
            factory: RwLock::new(None),
            feedback: RwLock::new(None),
        }
    }

    fn publish(&self, backend: TenantBackend) -> u64 {
        // Generation allocation and the slot store happen under one write
        // lock: with them decoupled, two racing publishes could install
        // their models in the opposite order of their generation numbers
        // and leave the tenant permanently serving the older model.  The
        // lock is held only to wrap the backend and store one Arc.
        let mut slot = self.slot.write();
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        *slot = Some(Arc::new(TenantModel::new(backend, generation)));
        generation
    }
}

/// A named catalog of served models with atomic per-tenant hot-swap.
///
/// The top-level map is only write-locked to add or remove tenant *names*;
/// publishing a model (including a hot-swap) write-locks a single tenant's
/// slot for the duration of one `Arc` store.  Sessions on other tenants
/// never contend with a swap, and sessions on the swapped tenant keep the
/// model they pinned until their next call.
#[derive(Default)]
pub struct ModelCatalog {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
}

impl ModelCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().get(name).cloned()
    }

    fn tenant_or_create(&self, name: &str) -> Arc<Tenant> {
        if let Some(t) = self.tenant(name) {
            return t;
        }
        let mut map = self.tenants.write();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Tenant::new(name))))
    }

    /// Publish a (fitted or checkpoint-loaded) backend under a name,
    /// creating the tenant or atomically hot-swapping its current model.
    /// Returns the new model's generation.
    pub fn publish(&self, name: &str, backend: TenantBackend) -> u64 {
        self.tenant_or_create(name).publish(backend)
    }

    /// Register the factory that builds fresh backend instances for
    /// [`ModelCatalog::install_checkpoint`] under this name.
    pub fn register_factory(&self, name: &str, factory: BackendFactory) {
        *self.tenant_or_create(name).factory.write() = Some(factory);
    }

    /// Build a fresh backend via the tenant's registered factory, load the
    /// checkpoint into it and atomically publish it — the hot-swap path for
    /// rolling out a newly trained model version.  The previous model keeps
    /// serving until the moment of the swap (and beyond, for sessions that
    /// already pinned it); a load error leaves the tenant serving its
    /// current model.
    pub fn install_checkpoint(&self, name: &str, path: impl AsRef<Path>) -> Result<u64, CheckpointError> {
        let tenant = self
            .tenant(name)
            .ok_or(CheckpointError::Unsupported("no such tenant; register_factory/publish it first"))?;
        let mut backend = {
            // Hold the factory read lock only for the build itself — the
            // checkpoint load below can be long, and a concurrent
            // register_factory must not block behind it.
            let factory = tenant.factory.read();
            let build =
                factory.as_ref().ok_or(CheckpointError::Unsupported("tenant has no backend factory registered"))?;
            build()
        };
        backend.load_checkpoint(path.as_ref())?;
        Ok(tenant.publish(backend))
    }

    /// The tenant's current model, if any is published.
    pub fn current(&self, name: &str) -> Option<Arc<TenantModel>> {
        self.tenant(name).and_then(|t| t.slot.read().clone())
    }

    /// Open a session on a tenant (it need not have a model yet; calls
    /// return `None` until one is published).
    pub fn session(&self, name: &str) -> Option<Session> {
        self.tenant(name).map(|tenant| Session { tenant })
    }

    /// All tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a tenant entirely.  In-flight sessions holding the tenant or
    /// a pinned model finish undisturbed; new lookups no longer find it.
    pub fn remove(&self, name: &str) -> bool {
        self.tenants.write().remove(name).is_some()
    }

    /// Switch on serving-time feedback capture for a tenant (creating the
    /// tenant if needed): sessions start recording `(signature, estimate,
    /// tier)` into a bounded [`crate::FeedbackLog`] and registering encoded
    /// plans in a bounded [`crate::PlanRegistry`].  Returns the capture
    /// state, typically handed to a [`crate::RefreshController`].  Calling
    /// again replaces the state with a fresh (empty) one.
    pub fn enable_feedback(&self, name: &str, config: FeedbackConfig) -> Arc<TenantFeedback> {
        let tenant = self.tenant_or_create(name);
        let feedback = Arc::new(TenantFeedback::new(config));
        *tenant.feedback.write() = Some(Arc::clone(&feedback));
        feedback
    }

    /// The tenant's capture state, if feedback is enabled.
    pub fn feedback(&self, name: &str) -> Option<Arc<TenantFeedback>> {
        self.tenant(name).and_then(|t| t.feedback.read().clone())
    }

    /// Switch feedback capture off again.  Sessions observe it at their
    /// next call; a controller still holding the `Arc` can drain what was
    /// captured but sees nothing new.  Returns whether capture was on.
    pub fn disable_feedback(&self, name: &str) -> bool {
        self.tenant(name).is_some_and(|t| t.feedback.write().take().is_some())
    }
}

/// A client handle scoped to one tenant.  Cheap to clone and `Send + Sync`;
/// every estimate call pins the tenant's current model generation, so
/// hot-swaps are observed at call boundaries and never mid-batch.
#[derive(Clone)]
pub struct Session {
    tenant: Arc<Tenant>,
}

impl Session {
    /// The tenant this session is bound to.
    pub fn tenant_name(&self) -> &str {
        &self.tenant.name
    }

    /// Pin the tenant's current model (or `None` before the first publish /
    /// after a remove-and-recreate race).
    pub fn model(&self) -> Option<Arc<TenantModel>> {
        self.tenant.slot.read().clone()
    }

    /// The current model generation, for observing hot-swaps.
    pub fn generation(&self) -> Option<u64> {
        self.model().map(|m| m.generation())
    }

    /// Estimate physical plans through the pinned model's generic trait
    /// path.  `None` when the tenant has no published model.
    pub fn estimate_plans(&self, plans: &[PlanNode]) -> Option<Vec<PlanEstimate>> {
        self.model().map(|m| m.estimator().estimate_many(plans))
    }

    /// Tree-backend fast path: estimate already-encoded plans through the
    /// tenant's cross-session batch aggregator (coalescing with concurrent
    /// sessions of this tenant).  `None` when no model is published or the
    /// backend is not the tree estimator.
    ///
    /// Encoded plans are tied to the feature vocabulary they were encoded
    /// under; across a hot-swap of a model with the *same* vocabulary
    /// (the common retrain-and-roll-out case, enforced at checkpoint load)
    /// they remain valid.
    pub fn estimate_encoded(&self, plans: &[EncodedPlan]) -> Option<Vec<(f64, f64)>> {
        let model = self.model()?;
        let estimates = model.aggregator()?.estimate(plans);
        self.capture(plans, &estimates, ServedTier::Full);
        Some(estimates)
    }

    /// Two-tier fast path: like [`Session::estimate_encoded`], but waves run
    /// the quantized model over every candidate and escalate only the
    /// [`DEFAULT_TIERED_TOP_K`] cheapest-looking ones per wave to full
    /// precision.  Escalated plans get estimates bit-identical to the
    /// full-precision path; the rest keep their int8-tier approximations.
    /// Falls back to the full-precision aggregator when the published model
    /// carries no quantized weights; `None` when no model is published or
    /// the backend is not the tree estimator.
    pub fn estimate_encoded_tiered(&self, plans: &[EncodedPlan]) -> Option<Vec<(f64, f64)>> {
        let model = self.model()?;
        let (aggregator, tier) = match model.tiered_aggregator() {
            Some(agg) => (agg, ServedTier::Tiered),
            None => (model.aggregator()?, ServedTier::Full),
        };
        let estimates = aggregator.estimate(plans);
        self.capture(plans, &estimates, tier);
        Some(estimates)
    }

    /// Encode a plan with the pinned tree model's extractor.  With feedback
    /// capture enabled, the plan is also registered (annotations cleared)
    /// under its signature so the refresh loop can execute it for ground
    /// truth later.
    pub fn encode(&self, plan: &PlanNode) -> Option<EncodedPlan> {
        let model = self.model()?;
        let encoded = model.tree()?.encode(plan);
        if let Some(feedback) = self.tenant.feedback.read().as_ref() {
            feedback.registry().register(encoded.signature, plan);
        }
        Some(encoded)
    }

    /// Batch form of [`Session::encode`] through the pinned tree model's
    /// shared encoded-subtree cache: every distinct (subtree, annotations)
    /// across the batch — and across concurrent sessions of this tenant —
    /// is featurized at most once, with results bit-identical to
    /// [`Session::encode`] per plan.  Feedback registration is preserved:
    /// with capture enabled, each plan is registered under its signature
    /// exactly as the one-at-a-time path does.  `None` when no model is
    /// published or the backend is not the tree estimator.
    pub fn encode_batch(&self, plans: &[PlanNode]) -> Option<Vec<EncodedPlan>> {
        let model = self.model()?;
        let encoded = model.tree()?.encode_plans(plans);
        if let Some(feedback) = self.tenant.feedback.read().as_ref() {
            for (enc, plan) in encoded.iter().zip(plans) {
                feedback.registry().register(enc.signature, plan);
            }
        }
        Some(encoded.into_iter().map(|e| EncodedPlan::clone(&e)).collect())
    }

    /// Record a served batch into the tenant's feedback log, when capture is
    /// enabled.  One uncontended `RwLock` read per batch on the hot path;
    /// the log pushes themselves are sharded ring-buffer appends.
    fn capture(&self, plans: &[EncodedPlan], estimates: &[(f64, f64)], tier: ServedTier) {
        if let Some(feedback) = self.tenant.feedback.read().as_ref() {
            feedback.log().record_batch(plans.iter().map(|p| &p.signature).zip(estimates.iter()), tier);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{execute_plan, CostModel};
    use estimator_core::{ModelConfig, TrainConfig};
    use featurize::{EncodingConfig, FeatureExtractor};
    use imdb::{generate_imdb, GeneratorConfig};
    use query::{CompareOp, JoinPredicate, Operand, PhysicalOp, Predicate};
    use strembed::HashBitmapEncoder;

    fn make_estimator(db: &Arc<imdb::Database>, seed: u64) -> CostEstimator {
        let cfg = EncodingConfig::from_database(db, 8, 32);
        let fx = FeatureExtractor::new(db.clone(), cfg, Arc::new(HashBitmapEncoder::new(8)));
        CostEstimator::new(
            fx,
            ModelConfig { feature_embed_dim: 8, hidden_dim: 12, estimation_hidden_dim: 8, seed, ..Default::default() },
            TrainConfig { epochs: 2, batch_size: 8, seed, ..Default::default() },
        )
    }

    fn executed_plans(db: &Arc<imdb::Database>, n: usize) -> Vec<PlanNode> {
        let cost = CostModel::default();
        (0..n)
            .map(|i| {
                let scan_t = PlanNode::leaf(PhysicalOp::SeqScan {
                    table: "title".into(),
                    predicate: Some(Predicate::atom(
                        "title",
                        "production_year",
                        CompareOp::Gt,
                        Operand::Num((1938 + i * 3) as f64),
                    )),
                });
                let scan_mc = PlanNode::leaf(PhysicalOp::SeqScan { table: "movie_companies".into(), predicate: None });
                let mut join = PlanNode::inner(
                    PhysicalOp::HashJoin {
                        condition: JoinPredicate::new("movie_companies", "movie_id", "title", "id"),
                    },
                    vec![scan_t, scan_mc],
                );
                execute_plan(db, &mut join, &cost);
                join
            })
            .collect()
    }

    fn card_bits(estimates: &[PlanEstimate]) -> Vec<u64> {
        estimates.iter().map(|e| e.cardinality.expect("card").to_bits()).collect()
    }

    #[test]
    fn catalog_serves_multiple_named_models() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 16);
        let mut a = make_estimator(&db, 1);
        a.fit(&plans);
        let mut b = make_estimator(&db, 4242);
        b.fit(&plans);
        let want_a = a.estimate_many(&plans);
        let want_b = b.estimate_many(&plans);
        assert_ne!(card_bits(&want_a), card_bits(&want_b), "seeds must differ for the test to mean anything");

        let catalog = ModelCatalog::new();
        assert_eq!(catalog.publish("tenant_a", TenantBackend::tree(a)), 1);
        assert_eq!(catalog.publish("tenant_b", TenantBackend::tree(b)), 1);
        assert_eq!(catalog.names(), vec!["tenant_a".to_string(), "tenant_b".to_string()]);

        let sa = catalog.session("tenant_a").expect("tenant_a");
        let sb = catalog.session("tenant_b").expect("tenant_b");
        assert_eq!(card_bits(&sa.estimate_plans(&plans).expect("a")), card_bits(&want_a));
        assert_eq!(card_bits(&sb.estimate_plans(&plans).expect("b")), card_bits(&want_b));
        assert!(catalog.session("nope").is_none());
    }

    #[test]
    fn hot_swap_is_observed_at_call_boundaries_and_isolated_per_tenant() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 14);
        let mut a = make_estimator(&db, 1);
        a.fit(&plans);
        let mut b1 = make_estimator(&db, 2);
        b1.fit(&plans);
        let mut b2 = make_estimator(&db, 4242);
        b2.fit(&plans);
        let want_a = card_bits(&a.estimate_many(&plans));
        let want_b1 = card_bits(&b1.estimate_many(&plans));
        let want_b2 = card_bits(&b2.estimate_many(&plans));
        assert_ne!(want_b1, want_b2);

        let catalog = ModelCatalog::new();
        catalog.publish("a", TenantBackend::tree(a));
        catalog.publish("b", TenantBackend::tree(b1));

        let sa = catalog.session("a").expect("a");
        let sb = catalog.session("b").expect("b");
        assert_eq!(sb.generation(), Some(1));
        assert_eq!(card_bits(&sb.estimate_plans(&plans).expect("b")), want_b1);

        // A pinned model survives the swap it predates...
        let pinned_b1 = sb.model().expect("pinned");
        catalog.publish("b", TenantBackend::tree(b2));
        assert_eq!(card_bits(&pinned_b1.estimator().estimate_many(&plans)), want_b1);
        // ...while the session observes the swap at its next call.
        assert_eq!(sb.generation(), Some(2));
        assert_eq!(card_bits(&sb.estimate_plans(&plans).expect("b")), want_b2);
        // And tenant a never noticed.
        assert_eq!(sa.generation(), Some(1));
        assert_eq!(card_bits(&sa.estimate_plans(&plans).expect("a")), want_a);
    }

    #[test]
    fn tenants_have_isolated_caches() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 12);
        let mut a = make_estimator(&db, 1);
        a.fit(&plans);
        let mut b = make_estimator(&db, 2);
        b.fit(&plans);
        let catalog = ModelCatalog::new();
        catalog.publish("a", TenantBackend::tree(a));
        catalog.publish("b", TenantBackend::tree(b));

        let sa = catalog.session("a").expect("a");
        let sb = catalog.session("b").expect("b");
        // Warm b's subtree cache, then hammer a.
        sb.estimate_plans(&plans).expect("warm b");
        let b_len = catalog.current("b").expect("b").tree().expect("tree").subtree_cache().len();
        assert!(b_len > 0, "warm pass must populate b's cache");
        for _ in 0..5 {
            sa.estimate_plans(&plans).expect("hammer a");
        }
        // a's traffic cannot evict (or even touch) b's entries.
        let b_model = catalog.current("b").expect("b");
        let b_tree = b_model.tree().expect("tree");
        assert_eq!(b_tree.subtree_cache().len(), b_len);
        let (hits_before, misses_before) = b_tree.subtree_cache().stats();
        sb.estimate_plans(&plans).expect("b again");
        let (hits_after, misses_after) = b_tree.subtree_cache().stats();
        assert!(hits_after > hits_before, "b's warm entries must still hit");
        assert_eq!(misses_after, misses_before, "a's traffic must not have evicted b's entries");
    }

    #[test]
    fn encode_batch_matches_one_at_a_time_and_registers_feedback() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 10);
        let mut est = make_estimator(&db, 7);
        est.fit(&plans);
        let catalog = ModelCatalog::new();
        let feedback = catalog.enable_feedback("t", crate::FeedbackConfig::default());
        catalog.publish("t", TenantBackend::tree(est));
        let session = catalog.session("t").expect("t");

        let batch = session.encode_batch(&plans).expect("batch");
        assert_eq!(batch.len(), plans.len());
        // Bit-identical to the one-at-a-time path, plan for plan.
        for (plan, batched) in plans.iter().zip(&batch) {
            let one = session.encode(plan).expect("one");
            assert_eq!(one, *batched, "memoized batch encode must match Session::encode");
        }
        // Feedback registration preserved: every plan is executable again.
        for enc in &batch {
            assert!(feedback.registry().get(enc.signature).is_some(), "batch encode must register each plan");
        }
        // The shared encode cache was actually warmed by the batch.
        let model = catalog.current("t").expect("t");
        let tree = model.tree().expect("tree");
        assert!(!tree.encode_cache().is_empty(), "batch encode must populate the shared encode cache");
        let (hits, _misses) = tree.encode_cache().stats();
        assert!(hits > 0, "shared scans across the batch must hit the encode cache");
    }

    #[test]
    fn install_checkpoint_builds_loads_and_swaps() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 12);
        let mut trained = make_estimator(&db, 4242);
        trained.fit(&plans);
        let want = card_bits(&trained.estimate_many(&plans));
        let path = std::env::temp_dir().join(format!("serving-install-{}.ckpt", std::process::id()));
        trained.save_checkpoint(&path).expect("save");

        let catalog = ModelCatalog::new();
        // No tenant yet: typed refusal.
        assert!(matches!(catalog.install_checkpoint("m", &path), Err(CheckpointError::Unsupported(_))));
        let factory_db = db.clone();
        catalog.register_factory("m", Box::new(move || TenantBackend::tree(make_estimator(&factory_db, 4242))));
        let generation = catalog.install_checkpoint("m", &path).expect("install");
        assert_eq!(generation, 1);
        let s = catalog.session("m").expect("m");
        assert_eq!(card_bits(&s.estimate_plans(&plans).expect("est")), want);

        // Installing again is a hot-swap onto generation 2.
        assert_eq!(catalog.install_checkpoint("m", &path).expect("reinstall"), 2);
        assert_eq!(s.generation(), Some(2));
        // A failed install (missing file) leaves generation 2 serving.
        assert!(catalog.install_checkpoint("m", path.with_extension("missing")).is_err());
        assert_eq!(s.generation(), Some(2));
        assert_eq!(card_bits(&s.estimate_plans(&plans).expect("est")), want);
        let _ = std::fs::remove_file(&path);
    }

    /// Review regression: generation allocation and the slot store must be
    /// one atomic step — with them decoupled, racing publishes could
    /// install models in the opposite order of their generation numbers
    /// and leave the tenant serving an older model than `publish` reported.
    #[test]
    fn concurrent_publishes_never_regress_the_served_generation() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let catalog = ModelCatalog::new();
        catalog.publish("m", TenantBackend::Dyn(Box::new(pgest::TraditionalEstimator::analyze(&db))));
        const THREADS: usize = 8;
        const PER_THREAD: usize = 20;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let (catalog, db) = (&catalog, &db);
                scope.spawn(move || {
                    let mut last_seen = 0;
                    for _ in 0..PER_THREAD {
                        let mine = catalog
                            .publish("m", TenantBackend::Dyn(Box::new(pgest::TraditionalEstimator::analyze(db))));
                        // The served generation may already be past ours,
                        // but it must never move backwards.
                        let served = catalog.current("m").expect("published").generation();
                        assert!(served >= mine, "served generation {served} regressed below published {mine}");
                        assert!(served >= last_seen, "served generation moved backwards: {last_seen} -> {served}");
                        last_seen = served;
                    }
                });
            }
        });
        let final_generation = catalog.current("m").expect("published").generation();
        assert_eq!(final_generation as usize, 1 + THREADS * PER_THREAD, "every publish must claim its own generation");
    }

    #[test]
    fn publish_quantizes_on_install_and_sessions_opt_into_the_tiered_path() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 16);
        let mut a = make_estimator(&db, 1);
        a.fit(&plans);
        assert!(!a.has_quantized_weights(), "freshly fitted estimator must not be quantized yet");
        let encoded: Vec<EncodedPlan> = plans.iter().map(|p| a.encode(p)).collect();
        let want_full = a.estimate_encoded_batch_memo(&encoded);

        let catalog = ModelCatalog::new();
        catalog.publish("m", TenantBackend::tree(a));
        let model = catalog.current("m").expect("published");
        assert!(model.tree().expect("tree").has_quantized_weights(), "publish must quantize fitted tree backends");
        let tiered = model.tiered_aggregator().expect("quantized model must offer the tiered aggregator");
        assert_eq!(tiered.tiered_top_k(), Some(DEFAULT_TIERED_TOP_K));

        let s = catalog.session("m").expect("m");
        // The bit-exact path is untouched by publish-time quantization.
        let full = s.estimate_encoded(&encoded).expect("full");
        let bits = |v: &[(f64, f64)]| v.iter().map(|(c, k)| (c.to_bits(), k.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&full), bits(&want_full));
        // The tiered path escalates DEFAULT_TIERED_TOP_K candidates to
        // full-precision bits and keeps int8 estimates for the rest.
        let tiered_out = s.estimate_encoded_tiered(&encoded).expect("tiered");
        assert_eq!(tiered_out.len(), encoded.len());
        let n_exact = tiered_out
            .iter()
            .zip(&want_full)
            .filter(|(a, b)| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits())
            .count();
        assert!(n_exact >= DEFAULT_TIERED_TOP_K, "tiered wave escalated only {n_exact} candidates");
        assert!(n_exact < encoded.len(), "tiered wave returned full-precision bits everywhere");
        // Approximations stay close: the int8 tier tracks f32 in log space.
        for ((tc, tk), (fc, fk)) in tiered_out.iter().zip(&want_full) {
            assert!((tc.ln() - fc.ln()).abs() < 0.5, "tiered cost {tc} diverged from {fc}");
            assert!((tk.ln() - fk.ln()).abs() < 0.5, "tiered card {tk} diverged from {fk}");
        }
    }

    #[test]
    fn dyn_backends_serve_through_the_catalog() {
        let db = Arc::new(generate_imdb(GeneratorConfig::tiny()));
        let plans = executed_plans(&db, 8);
        let pg = pgest::TraditionalEstimator::analyze(&db);
        let want = pg.estimate_many(&plans);
        let catalog = ModelCatalog::new();
        catalog.publish("pg", TenantBackend::Dyn(Box::new(pg)));
        let s = catalog.session("pg").expect("pg");
        assert_eq!(s.estimate_plans(&plans).expect("pg"), want);
        // No tree fast path on a dyn backend.
        assert!(s.encode(&plans[0]).is_none());
        assert!(s.estimate_encoded(&[]).is_none());
        assert!(s.estimate_encoded_tiered(&[]).is_none());
        assert!(catalog.remove("pg"));
        assert!(catalog.session("pg").is_none());
    }
}
